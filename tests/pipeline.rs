//! End-to-end pipeline tests spanning every crate: workload generation →
//! placement algorithms → cost model → simulator cross-check.

use drp::baselines::{HillClimb, PrimaryOnly, RandomFill};
use drp::core::replay::replay_total_cost;
use drp::distributed::distributed_sra;
use drp::workload::TopologyKind;
use drp::{Gra, GraConfig, ReplicationAlgorithm, Sra, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_gra() -> Gra {
    Gra::with_config(GraConfig {
        population_size: 10,
        generations: 10,
        ..GraConfig::default()
    })
}

#[test]
fn full_pipeline_on_paper_workload() {
    let mut rng = StdRng::seed_from_u64(1);
    let problem = WorkloadSpec::paper(15, 25, 5.0, 15.0)
        .generate(&mut rng)
        .unwrap();

    let solvers: Vec<Box<dyn ReplicationAlgorithm>> = vec![
        Box::new(PrimaryOnly),
        Box::new(RandomFill::default()),
        Box::new(Sra::new()),
        Box::new(HillClimb::default()),
        Box::new(small_gra()),
    ];
    for solver in &solvers {
        let (scheme, report) = solver.solve_report(&problem, &mut rng).unwrap();
        scheme.validate(&problem).unwrap();
        assert_eq!(
            report.cost,
            problem.total_cost(&scheme),
            "{}",
            solver.name()
        );
        // The simulator measures exactly the analytic NTC.
        assert_eq!(
            replay_total_cost(&problem, &scheme).unwrap(),
            report.cost,
            "{} scheme disagrees with the simulator",
            solver.name()
        );
    }
}

#[test]
fn pipeline_works_on_every_topology() {
    for (idx, topology) in [
        TopologyKind::Complete,
        TopologyKind::Ring,
        TopologyKind::Tree { arity: 3 },
        TopologyKind::Grid,
        TopologyKind::ErdosRenyi { p: 0.25 },
        TopologyKind::Waxman {
            alpha: 0.8,
            beta: 0.4,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(100 + idx as u64);
        let mut spec = WorkloadSpec::paper(12, 16, 5.0, 20.0);
        spec.topology = topology;
        let problem = spec.generate(&mut rng).unwrap();

        let sra = Sra::new().solve(&problem, &mut rng).unwrap();
        let gra = small_gra().solve(&problem, &mut rng).unwrap();
        assert!(
            problem.total_cost(&gra) <= problem.d_prime(),
            "{topology:?}: GRA worse than no replication"
        );
        assert!(
            problem.total_cost(&sra) <= problem.d_prime(),
            "{topology:?}: SRA worse than no replication"
        );
        // Distributed SRA agrees with the centralized algorithm regardless
        // of topology.
        let run = distributed_sra(&problem).unwrap();
        assert_eq!(run.scheme, sra, "{topology:?}");
    }
}

#[test]
fn zipf_reads_make_replication_more_selective() {
    // With skewed popularity the same capacity should be spent on the hot
    // objects; verify hot objects get more replicas than cold ones.
    let mut rng = StdRng::seed_from_u64(7);
    let mut spec = WorkloadSpec::paper(12, 40, 2.0, 10.0);
    spec.zipf_skew = Some(1.3);
    let problem = spec.generate(&mut rng).unwrap();
    let scheme = Sra::new().solve(&problem, &mut rng).unwrap();

    let mut by_reads: Vec<(u64, usize)> = problem
        .objects()
        .map(|k| (problem.total_reads(k), scheme.replica_degree(k)))
        .collect();
    by_reads.sort_unstable_by_key(|&(reads, _)| std::cmp::Reverse(reads));
    let hot: usize = by_reads[..10].iter().map(|&(_, d)| d).sum();
    let cold: usize = by_reads[by_reads.len() - 10..]
        .iter()
        .map(|&(_, d)| d)
        .sum();
    assert!(
        hot > cold,
        "hot objects ({hot}) should out-replicate cold ones ({cold})"
    );
}

#[test]
fn reports_format_for_humans() {
    let mut rng = StdRng::seed_from_u64(3);
    let problem = WorkloadSpec::paper(8, 10, 5.0, 20.0)
        .generate(&mut rng)
        .unwrap();
    let (_, report) = Sra::new().solve_report(&problem, &mut rng).unwrap();
    let text = report.to_string();
    assert!(text.contains("SRA") && text.contains("savings="));
}
