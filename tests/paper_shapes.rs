//! Medium-scale statistical checks of the paper's headline findings.
//!
//! These run the real algorithm configurations on mid-sized instances, so
//! they take seconds-to-minutes each; they are `#[ignore]`d by default and
//! meant for `cargo test --release --test paper_shapes -- --ignored`.

use drp::{
    Agra, AgraConfig, Gra, GraConfig, PatternChange, ReplicationAlgorithm, Sra, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gra() -> Gra {
    Gra::with_config(GraConfig {
        population_size: 30,
        generations: 40,
        ..GraConfig::default()
    })
}

/// Figure 1(a)'s message: GRA's advantage over SRA grows with the update
/// ratio.
#[test]
#[ignore = "medium-scale statistical check; run with --ignored in release"]
fn gra_advantage_grows_with_update_ratio() {
    let mut gaps = Vec::new();
    for &u in &[2.0, 10.0] {
        let mut gap = 0.0;
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = WorkloadSpec::paper(40, 80, u, 15.0)
                .generate(&mut rng)
                .unwrap();
            let sra = Sra::new().solve(&p, &mut rng).unwrap();
            let g = gra().solve(&p, &mut rng).unwrap();
            gap += p.savings_percent(&g) - p.savings_percent(&sra);
        }
        gaps.push(gap / 4.0);
    }
    assert!(
        gaps[1] > gaps[0],
        "GRA−SRA gap should grow from U=2% ({:.2}) to U=10% ({:.2})",
        gaps[0],
        gaps[1]
    );
}

/// Figure 3(a)'s message: savings decay monotonically (≈ exponentially)
/// with the update ratio.
#[test]
#[ignore = "medium-scale statistical check; run with --ignored in release"]
fn savings_decay_with_update_ratio() {
    let mut previous = f64::INFINITY;
    for &u in &[1.0, 5.0, 20.0] {
        let mut total = 0.0;
        for seed in 10..14 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = WorkloadSpec::paper(30, 80, u, 15.0)
                .generate(&mut rng)
                .unwrap();
            let g = gra().solve(&p, &mut rng).unwrap();
            total += p.savings_percent(&g);
        }
        let mean = total / 4.0;
        assert!(
            mean <= previous + 1.0,
            "savings rose from U sweep: {mean:.2} > {previous:.2}"
        );
        previous = mean;
    }
}

/// Figure 2's message: GRA costs orders of magnitude more time than SRA.
#[test]
#[ignore = "medium-scale statistical check; run with --ignored in release"]
fn gra_is_orders_of_magnitude_slower_than_sra() {
    let mut rng = StdRng::seed_from_u64(42);
    let p = WorkloadSpec::paper(50, 100, 5.0, 15.0)
        .generate(&mut rng)
        .unwrap();
    let (_, sra_report) = Sra::new().solve_report(&p, &mut rng).unwrap();
    let (_, gra_report) = gra().solve_report(&p, &mut rng).unwrap();
    let ratio = gra_report.elapsed.as_secs_f64() / sra_report.elapsed.as_secs_f64().max(1e-9);
    assert!(
        ratio > 100.0,
        "expected ≥2 orders of magnitude, got {ratio:.0}×"
    );
}

/// Figure 4(b)'s message: under update surges the stale scheme collapses
/// and AGRA recovers most of a fresh GRA run at a fraction of its cost.
#[test]
#[ignore = "medium-scale statistical check; run with --ignored in release"]
fn agra_recovers_from_update_surges_cheaply() {
    let mut rng = StdRng::seed_from_u64(7);
    let p = WorkloadSpec::paper(30, 100, 5.0, 15.0)
        .generate(&mut rng)
        .unwrap();
    let base = gra().solve_detailed(&p, &mut rng).unwrap();
    let population: Vec<_> = base
        .outcome
        .final_population
        .iter()
        .map(|(c, _)| c.clone())
        .collect();

    let change = PatternChange {
        change_percent: 600.0,
        objects_percent: 30.0,
        read_share: 0.0,
    };
    let shift = change.apply(&p, &mut rng).unwrap();
    let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();

    let stale = shift.problem.savings_percent(&base.scheme);

    let clock = std::time::Instant::now();
    let adapted = Agra::with_config(AgraConfig {
        gra: gra().config().clone(),
        ..AgraConfig::default()
    })
    .adapt(
        &shift.problem,
        &base.scheme,
        &population,
        &changed,
        &mut rng,
    )
    .unwrap();
    let agra_time = clock.elapsed();

    let clock = std::time::Instant::now();
    let fresh = gra().solve_detailed(&shift.problem, &mut rng).unwrap();
    let fresh_time = clock.elapsed();

    let agra_savings = shift.problem.savings_percent(&adapted.scheme);
    let fresh_savings = shift.problem.savings_percent(&fresh.scheme);

    assert!(
        agra_savings >= stale,
        "AGRA ({agra_savings:.2}) lost to stale ({stale:.2})"
    );
    assert!(
        agra_savings >= fresh_savings - 10.0,
        "AGRA ({agra_savings:.2}) too far below fresh GRA ({fresh_savings:.2})"
    );
    assert!(
        agra_time.as_secs_f64() < fresh_time.as_secs_f64(),
        "AGRA ({agra_time:?}) should be cheaper than a fresh GRA run ({fresh_time:?})"
    );
}
