//! Integration tests of the adaptive (AGRA) machinery across crates.

use drp::algo::detect_changed_objects;
use drp::{Agra, AgraConfig, Gra, GraConfig, PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gra_config() -> GraConfig {
    GraConfig {
        population_size: 12,
        generations: 12,
        ..GraConfig::default()
    }
}

fn agra_config(mini: usize) -> AgraConfig {
    AgraConfig {
        mini_gra_generations: mini,
        gra: gra_config(),
        ..AgraConfig::default()
    }
}

struct Setup {
    problem: drp::Problem,
    scheme: drp::ReplicationScheme,
    population: Vec<drp::ga::BitString>,
}

fn setup(seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let problem = WorkloadSpec::paper(14, 30, 5.0, 15.0)
        .generate(&mut rng)
        .unwrap();
    let run = Gra::with_config(gra_config())
        .solve_detailed(&problem, &mut rng)
        .unwrap();
    Setup {
        problem,
        scheme: run.scheme,
        population: run
            .outcome
            .final_population
            .iter()
            .map(|(c, _)| c.clone())
            .collect(),
    }
}

#[test]
fn stale_scheme_collapses_under_update_surges_and_agra_recovers() {
    let s = setup(1);
    let mut rng = StdRng::seed_from_u64(2);
    let change = PatternChange {
        change_percent: 600.0,
        objects_percent: 40.0,
        read_share: 0.0,
    };
    let shift = change.apply(&s.problem, &mut rng).unwrap();
    let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();

    let stale = shift.problem.savings_percent(&s.scheme);
    let base = s.problem.savings_percent(&s.scheme);
    assert!(
        stale < base,
        "an update surge must erode the stale scheme's savings ({base:.2}% -> {stale:.2}%)"
    );

    let outcome = Agra::with_config(agra_config(5))
        .adapt(&shift.problem, &s.scheme, &s.population, &changed, &mut rng)
        .unwrap();
    let adapted = shift.problem.savings_percent(&outcome.scheme);
    assert!(adapted >= stale, "AGRA must not lose to the stale scheme");
    outcome.scheme.validate(&shift.problem).unwrap();
}

#[test]
fn mini_gra_never_hurts_agra() {
    let s = setup(3);
    let change = PatternChange {
        change_percent: 600.0,
        objects_percent: 30.0,
        read_share: 1.0,
    };
    // Use the same change and seed for both configurations so the
    // comparison isolates the mini-GRA phase.
    let shift = change
        .apply(&s.problem, &mut StdRng::seed_from_u64(4))
        .unwrap();
    let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();

    let standalone = Agra::with_config(agra_config(0))
        .adapt(
            &shift.problem,
            &s.scheme,
            &s.population,
            &changed,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
    let polished = Agra::with_config(agra_config(10))
        .adapt(
            &shift.problem,
            &s.scheme,
            &s.population,
            &changed,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
    // The mini-GRA pool contains the transcribed population (its parents),
    // so its best can only match or beat the stand-alone pick on average;
    // allow a small tolerance for the differing rng consumption.
    assert!(
        polished.fitness >= standalone.fitness - 0.02,
        "mini-GRA regressed: {} -> {}",
        standalone.fitness,
        polished.fitness
    );
    assert!(polished.mini_evaluations > 0);
}

#[test]
fn adaptation_chains_across_rounds() {
    let mut s = setup(6);
    let mut rng = StdRng::seed_from_u64(7);
    let agra = Agra::with_config(agra_config(5));
    for round in 0..3 {
        let change = PatternChange {
            change_percent: 300.0,
            objects_percent: 20.0,
            read_share: if round % 2 == 0 { 1.0 } else { 0.0 },
        };
        let shift = change.apply(&s.problem, &mut rng).unwrap();
        let changed = detect_changed_objects(&s.problem, &shift.problem, 50.0);
        let outcome = agra
            .adapt(&shift.problem, &s.scheme, &s.population, &changed, &mut rng)
            .unwrap();
        outcome.scheme.validate(&shift.problem).unwrap();
        assert!(
            shift.problem.savings_percent(&outcome.scheme)
                >= shift.problem.savings_percent(&s.scheme) - 1e-9,
            "round {round}: adaptation regressed"
        );
        s.problem = shift.problem;
        s.scheme = outcome.scheme;
        s.population = outcome.population;
    }
}

#[test]
fn detection_threshold_filters_noise() {
    let s = setup(8);
    let mut rng = StdRng::seed_from_u64(9);
    let change = PatternChange {
        change_percent: 600.0,
        objects_percent: 25.0,
        read_share: 1.0,
    };
    let shift = change.apply(&s.problem, &mut rng).unwrap();
    // A generous threshold finds exactly the surged objects; an absurd one
    // finds none.
    let hits = detect_changed_objects(&s.problem, &shift.problem, 100.0);
    assert_eq!(hits.len(), shift.changed.len());
    let none = detect_changed_objects(&s.problem, &shift.problem, 1_000_000.0);
    assert!(none.is_empty());
}

#[test]
fn agra_handles_no_changes_gracefully() {
    let s = setup(10);
    let mut rng = StdRng::seed_from_u64(11);
    let outcome = Agra::with_config(agra_config(0))
        .adapt(&s.problem, &s.scheme, &s.population, &[], &mut rng)
        .unwrap();
    // No changed objects: the result must be at least as good as current.
    assert!(
        s.problem.savings_percent(&outcome.scheme) >= s.problem.savings_percent(&s.scheme) - 1e-9
    );
    assert_eq!(outcome.micro_evaluations, 0);
}
