//! Property-based validation of the Eq. 4 cost model against both the
//! discrete-event simulator and brute-force recomputation.

use drp::core::replay::replay_total_cost;
use drp::{ObjectId, Problem, ReplicationScheme, SiteId, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random instance plus a random valid scheme, driven by proptest seeds.
fn instance_and_scheme(seed: u64, fill: usize) -> (Problem, ReplicationScheme) {
    let mut rng = StdRng::seed_from_u64(seed);
    let problem = WorkloadSpec::paper(6, 8, 10.0, 30.0)
        .generate(&mut rng)
        .unwrap();
    let mut scheme = ReplicationScheme::primary_only(&problem);
    use rand::Rng;
    for _ in 0..fill {
        let site = SiteId::new(rng.random_range(0..problem.num_sites()));
        let object = ObjectId::new(rng.random_range(0..problem.num_objects()));
        if !scheme.holds(site, object)
            && problem.object_size(object) <= scheme.free_capacity(&problem, site)
        {
            scheme.add_replica(&problem, site, object).unwrap();
        }
    }
    (problem, scheme)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_replay_equals_analytic_cost(seed in 0u64..10_000, fill in 0usize..30) {
        let (problem, scheme) = instance_and_scheme(seed, fill);
        prop_assert_eq!(replay_total_cost(&problem, &scheme).unwrap(),
                        problem.total_cost(&scheme));
    }

    #[test]
    fn object_costs_sum_to_total(seed in 0u64..10_000, fill in 0usize..30) {
        let (problem, scheme) = instance_and_scheme(seed, fill);
        let sum: u64 = problem.objects().map(|k| problem.object_cost(&scheme, k)).sum();
        prop_assert_eq!(sum, problem.total_cost(&scheme));
    }

    #[test]
    fn incremental_deltas_match_recomputation(seed in 0u64..10_000, fill in 0usize..20) {
        let (problem, scheme) = instance_and_scheme(seed, fill);
        let base = problem.total_cost(&scheme) as i64;
        for k in problem.objects() {
            for i in problem.sites() {
                if scheme.holds(i, k) {
                    if problem.primary(k) != i {
                        let predicted = problem.delta_remove_replica(&scheme, i, k);
                        let mut t = scheme.clone();
                        t.remove_replica(&problem, i, k).unwrap();
                        prop_assert_eq!(predicted, problem.total_cost(&t) as i64 - base);
                    }
                } else if problem.object_size(k) <= scheme.free_capacity(&problem, i) {
                    let predicted = problem.delta_add_replica(&scheme, i, k);
                    let mut t = scheme.clone();
                    t.add_replica(&problem, i, k).unwrap();
                    prop_assert_eq!(predicted, problem.total_cost(&t) as i64 - base);
                }
            }
        }
    }

    #[test]
    fn local_benefit_never_exceeds_global_saving(seed in 0u64..10_000) {
        let (problem, scheme) = instance_and_scheme(seed, 5);
        for k in problem.objects() {
            for i in problem.sites() {
                if scheme.holds(i, k) {
                    continue;
                }
                let local = problem.local_benefit(&scheme, i, k) as f64
                    * problem.object_size(k) as f64;
                let global = -problem.delta_add_replica(&scheme, i, k) as f64;
                // Other sites re-routing reads can only add to the saving.
                prop_assert!(local <= global + 1e-9);
            }
        }
    }

    #[test]
    fn savings_are_bounded_above_by_100(seed in 0u64..10_000, fill in 0usize..40) {
        let (problem, scheme) = instance_and_scheme(seed, fill);
        prop_assert!(problem.savings_percent(&scheme) <= 100.0);
    }

    #[test]
    fn scheme_mutations_preserve_invariants(seed in 0u64..10_000, ops in 0usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(6, 8, 10.0, 30.0).generate(&mut rng).unwrap();
        let mut scheme = ReplicationScheme::primary_only(&problem);
        use rand::Rng;
        for _ in 0..ops {
            let site = SiteId::new(rng.random_range(0..problem.num_sites()));
            let object = ObjectId::new(rng.random_range(0..problem.num_objects()));
            if rng.random_bool(0.5) {
                let _ = scheme.add_replica(&problem, site, object);
            } else {
                let _ = scheme.remove_replica(&problem, site, object);
            }
        }
        prop_assert!(scheme.validate(&problem).is_ok());
    }
}
