//! Cross-algorithm ordering and determinism properties.

use drp::baselines::HillClimb;
use drp::exact::BranchBound;
use drp::{Gra, GraConfig, ReplicationAlgorithm, Sra, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_gra() -> Gra {
    Gra::with_config(GraConfig {
        population_size: 10,
        generations: 12,
        ..GraConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimum ≤ every heuristic ≤ primary-only, across random instances.
    #[test]
    fn cost_ordering_holds(seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(5, 6, 8.0, 30.0).generate(&mut rng).unwrap();
        let optimal = BranchBound::default().solve(&problem, &mut rng).unwrap();
        let opt = problem.total_cost(&optimal);
        for solver in [
            Box::new(Sra::new()) as Box<dyn ReplicationAlgorithm>,
            Box::new(small_gra()),
            Box::new(HillClimb::default()),
        ] {
            let scheme = solver.solve(&problem, &mut rng).unwrap();
            let cost = problem.total_cost(&scheme);
            prop_assert!(opt <= cost, "{} beat the optimum", solver.name());
            prop_assert!(cost <= problem.d_prime(), "{} hurt the network", solver.name());
        }
    }

    /// SRA never consumes randomness in round-robin mode: identical output
    /// for any rng.
    #[test]
    fn round_robin_sra_is_deterministic(seed in 0u64..5_000, rng_seed in 0u64..100) {
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(8, 10, 5.0, 20.0).generate(&mut gen_rng).unwrap();
        let a = Sra::new().solve(&problem, &mut StdRng::seed_from_u64(rng_seed)).unwrap();
        let b = Sra::new().solve(&problem, &mut StdRng::seed_from_u64(rng_seed + 1)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// GRA is reproducible given the same rng seed.
    #[test]
    fn gra_is_seed_deterministic(seed in 0u64..2_000) {
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(7, 8, 5.0, 20.0).generate(&mut gen_rng).unwrap();
        let a = small_gra().solve(&problem, &mut StdRng::seed_from_u64(42)).unwrap();
        let b = small_gra().solve(&problem, &mut StdRng::seed_from_u64(42)).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn gra_quality_dominates_sra_on_update_heavy_workloads() {
    // The paper's key comparison: when updates matter and capacity binds,
    // GRA's global search beats SRA's local view. Checked on averages over
    // several instances (per-instance it can tie).
    let mut sra_total = 0.0;
    let mut gra_total = 0.0;
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(12, 20, 15.0, 12.0)
            .generate(&mut rng)
            .unwrap();
        let sra = Sra::new().solve(&problem, &mut rng).unwrap();
        let gra = small_gra().solve(&problem, &mut rng).unwrap();
        sra_total += problem.savings_percent(&sra);
        gra_total += problem.savings_percent(&gra);
    }
    assert!(
        gra_total >= sra_total,
        "GRA average ({gra_total:.2}) below SRA average ({sra_total:.2})"
    );
}

#[test]
fn gra_ablations_all_produce_valid_solutions() {
    use drp::algo::CrossoverOp;
    use drp::ga::{SamplingSpace, SelectionScheme};
    let mut rng = StdRng::seed_from_u64(5);
    let problem = WorkloadSpec::paper(8, 10, 5.0, 20.0)
        .generate(&mut rng)
        .unwrap();
    for crossover_op in [
        CrossoverOp::OnePoint,
        CrossoverOp::TwoPoint,
        CrossoverOp::Uniform,
    ] {
        for selection in [
            SelectionScheme::Roulette,
            SelectionScheme::StochasticRemainder,
            SelectionScheme::Tournament { size: 3 },
        ] {
            for sampling in [SamplingSpace::Regular, SamplingSpace::Enlarged] {
                let config = GraConfig {
                    population_size: 8,
                    generations: 6,
                    crossover_op,
                    selection,
                    sampling,
                    ..GraConfig::default()
                };
                let scheme = Gra::with_config(config).solve(&problem, &mut rng).unwrap();
                scheme.validate(&problem).unwrap();
                assert!(problem.total_cost(&scheme) <= problem.d_prime());
            }
        }
    }
}

#[test]
fn more_generations_do_not_hurt() {
    // Monotonicity of best-ever tracking: doubling the generation budget
    // (same seed) can only match or improve the result.
    let mut rng = StdRng::seed_from_u64(77);
    let problem = WorkloadSpec::paper(10, 14, 8.0, 15.0)
        .generate(&mut rng)
        .unwrap();
    let short = Gra::with_config(GraConfig {
        population_size: 10,
        generations: 5,
        ..GraConfig::default()
    })
    .solve_detailed(&problem, &mut StdRng::seed_from_u64(1))
    .unwrap();
    let long = Gra::with_config(GraConfig {
        population_size: 10,
        generations: 30,
        ..GraConfig::default()
    })
    .solve_detailed(&problem, &mut StdRng::seed_from_u64(1))
    .unwrap();
    assert!(long.fitness >= short.fitness);
}
