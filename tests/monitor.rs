//! Integration tests of the Section 5 monitor loop with migration planning
//! and availability accounting across crates.

use drp::algo::monitor::{MonitorAction, MonitorConfig, ReplicationMonitor};
use drp::core::{availability, migration};
use drp::{
    AgraConfig, GraConfig, PatternChange, ReplicationAlgorithm, ReplicationScheme, Sra,
    WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn config() -> MonitorConfig {
    let gra = GraConfig {
        population_size: 10,
        generations: 10,
        ..GraConfig::default()
    };
    MonitorConfig {
        agra: AgraConfig {
            gra: gra.clone(),
            ..AgraConfig::default()
        },
        gra,
        change_threshold_percent: 100.0,
    }
}

#[test]
fn monitor_lifecycle_with_migration_accounting() {
    let mut rng = StdRng::seed_from_u64(1);
    let problem = WorkloadSpec::paper(12, 24, 5.0, 18.0)
        .generate(&mut rng)
        .unwrap();
    let mut monitor = ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();
    let initial_availability =
        availability::demand_weighted_availability(&problem, monitor.scheme(), 0.05);
    assert!(initial_availability > 0.9);

    // Three daytime rounds of drift.
    let mut reference = problem;
    for round in 0..3 {
        let change = PatternChange {
            change_percent: 500.0,
            objects_percent: 25.0,
            read_share: if round == 1 { 0.0 } else { 1.0 },
        };
        let shifted = change.apply(&reference, &mut rng).unwrap().problem;
        let old_scheme = monitor.scheme().clone();
        let action = monitor
            .ingest_statistics(shifted.clone(), &mut rng)
            .unwrap();
        match action {
            MonitorAction::Adapted {
                changed_objects,
                migration_moves,
                migration_cost,
            } => {
                assert!(changed_objects > 0);
                // The reported plan matches an independently computed one.
                let plan =
                    migration::plan_migration(&shifted, &old_scheme, monitor.scheme()).unwrap();
                assert_eq!(plan.moves(), migration_moves);
                assert_eq!(plan.transfer_cost(), migration_cost);
                // The plan really transforms old into new.
                let rebuilt = plan.apply(&shifted, &old_scheme).unwrap();
                assert_eq!(&rebuilt, monitor.scheme());
            }
            MonitorAction::NoChange => panic!("round {round}: 500% surges must be detected"),
        }
        monitor.scheme().validate(&shifted).unwrap();
        reference = shifted;
    }

    // Nightly rebuild still leaves a valid, non-regressing scheme.
    let before = reference.savings_percent(monitor.scheme());
    monitor.nightly_rebuild(&mut rng).unwrap();
    monitor.scheme().validate(&reference).unwrap();
    let after = reference.savings_percent(monitor.scheme());
    assert!(after >= -1e-9, "rebuild produced a harmful scheme");
    // (The rebuild usually improves on the adapted scheme; tiny GA budgets
    // can make it land slightly below, which is fine.)
    let _ = before;
}

#[test]
fn migration_payback_is_reported_for_profitable_switches() {
    let mut rng = StdRng::seed_from_u64(2);
    let problem = WorkloadSpec::paper(10, 16, 2.0, 20.0)
        .generate(&mut rng)
        .unwrap();
    let old = ReplicationScheme::primary_only(&problem);
    let new = Sra::new().solve(&problem, &mut rng).unwrap();
    let plan = migration::plan_migration(&problem, &old, &new).unwrap();
    if new != old {
        assert!(plan.moves() > 0);
        let payback = plan.payback_periods(&problem, &old, &new).unwrap();
        assert!((0.0..10.0).contains(&payback), "payback {payback}");
    }
}
