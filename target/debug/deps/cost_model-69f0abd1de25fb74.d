/root/repo/target/debug/deps/cost_model-69f0abd1de25fb74.d: tests/cost_model.rs

/root/repo/target/debug/deps/cost_model-69f0abd1de25fb74: tests/cost_model.rs

tests/cost_model.rs:
