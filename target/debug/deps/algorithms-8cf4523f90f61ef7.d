/root/repo/target/debug/deps/algorithms-8cf4523f90f61ef7.d: tests/algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libalgorithms-8cf4523f90f61ef7.rmeta: tests/algorithms.rs Cargo.toml

tests/algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
