/root/repo/target/debug/deps/drp_ga-bd999d4bd77e4e94.d: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs

/root/repo/target/debug/deps/libdrp_ga-bd999d4bd77e4e94.rlib: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs

/root/repo/target/debug/deps/libdrp_ga-bd999d4bd77e4e94.rmeta: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs

crates/ga/src/lib.rs:
crates/ga/src/bitstring.rs:
crates/ga/src/config.rs:
crates/ga/src/engine.rs:
crates/ga/src/error.rs:
crates/ga/src/ops.rs:
crates/ga/src/selection.rs:
crates/ga/src/spec.rs:
crates/ga/src/stats.rs:
