/root/repo/target/debug/deps/drp_cli-767923d70655d94d.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libdrp_cli-767923d70655d94d.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
