/root/repo/target/debug/deps/drp_cli-fb7d1c26149066ea.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_cli-fb7d1c26149066ea.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
