/root/repo/target/debug/deps/paper_shapes-de3e844870254648.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-de3e844870254648: tests/paper_shapes.rs

tests/paper_shapes.rs:
