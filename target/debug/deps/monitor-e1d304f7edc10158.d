/root/repo/target/debug/deps/monitor-e1d304f7edc10158.d: tests/monitor.rs Cargo.toml

/root/repo/target/debug/deps/libmonitor-e1d304f7edc10158.rmeta: tests/monitor.rs Cargo.toml

tests/monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
