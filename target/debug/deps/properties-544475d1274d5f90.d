/root/repo/target/debug/deps/properties-544475d1274d5f90.d: crates/workload/tests/properties.rs

/root/repo/target/debug/deps/libproperties-544475d1274d5f90.rmeta: crates/workload/tests/properties.rs

crates/workload/tests/properties.rs:
