/root/repo/target/debug/deps/drp_experiments-6b66d7e9f1454edf.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

/root/repo/target/debug/deps/libdrp_experiments-6b66d7e9f1454edf.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/ablation.rs:
crates/experiments/src/figures/convergence.rs:
crates/experiments/src/figures/fig1.rs:
crates/experiments/src/figures/fig2.rs:
crates/experiments/src/figures/fig3.rs:
crates/experiments/src/figures/fig4.rs:
crates/experiments/src/figures/gap.rs:
crates/experiments/src/figures/trees.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/table.rs:
