/root/repo/target/debug/deps/adaptive-c65e9f3a4caf54cd.d: tests/adaptive.rs

/root/repo/target/debug/deps/adaptive-c65e9f3a4caf54cd: tests/adaptive.rs

tests/adaptive.rs:
