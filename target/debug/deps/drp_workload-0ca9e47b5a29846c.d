/root/repo/target/debug/deps/drp_workload-0ca9e47b5a29846c.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libdrp_workload-0ca9e47b5a29846c.rlib: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libdrp_workload-0ca9e47b5a29846c.rmeta: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
