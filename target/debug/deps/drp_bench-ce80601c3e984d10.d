/root/repo/target/debug/deps/drp_bench-ce80601c3e984d10.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdrp_bench-ce80601c3e984d10.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdrp_bench-ce80601c3e984d10.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
