/root/repo/target/debug/deps/properties-13f531dea8e43374.d: crates/net/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-13f531dea8e43374.rmeta: crates/net/tests/properties.rs Cargo.toml

crates/net/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
