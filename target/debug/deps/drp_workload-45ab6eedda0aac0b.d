/root/repo/target/debug/deps/drp_workload-45ab6eedda0aac0b.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/drp_workload-45ab6eedda0aac0b: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
