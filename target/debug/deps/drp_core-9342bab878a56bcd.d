/root/repo/target/debug/deps/drp_core-9342bab878a56bcd.d: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/availability.rs crates/core/src/benefit.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/evaluator.rs crates/core/src/format.rs crates/core/src/ids.rs crates/core/src/matrix.rs crates/core/src/metrics.rs crates/core/src/migration.rs crates/core/src/problem.rs crates/core/src/replay.rs crates/core/src/scheme.rs

/root/repo/target/debug/deps/libdrp_core-9342bab878a56bcd.rmeta: crates/core/src/lib.rs crates/core/src/algorithm.rs crates/core/src/availability.rs crates/core/src/benefit.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/evaluator.rs crates/core/src/format.rs crates/core/src/ids.rs crates/core/src/matrix.rs crates/core/src/metrics.rs crates/core/src/migration.rs crates/core/src/problem.rs crates/core/src/replay.rs crates/core/src/scheme.rs

crates/core/src/lib.rs:
crates/core/src/algorithm.rs:
crates/core/src/availability.rs:
crates/core/src/benefit.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/evaluator.rs:
crates/core/src/format.rs:
crates/core/src/ids.rs:
crates/core/src/matrix.rs:
crates/core/src/metrics.rs:
crates/core/src/migration.rs:
crates/core/src/problem.rs:
crates/core/src/replay.rs:
crates/core/src/scheme.rs:
