/root/repo/target/debug/deps/drp-2e6d16bdfbf4ea6b.d: src/lib.rs

/root/repo/target/debug/deps/libdrp-2e6d16bdfbf4ea6b.rmeta: src/lib.rs

src/lib.rs:
