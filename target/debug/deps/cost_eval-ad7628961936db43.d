/root/repo/target/debug/deps/cost_eval-ad7628961936db43.d: crates/bench/src/bin/cost_eval.rs Cargo.toml

/root/repo/target/debug/deps/libcost_eval-ad7628961936db43.rmeta: crates/bench/src/bin/cost_eval.rs Cargo.toml

crates/bench/src/bin/cost_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
