/root/repo/target/debug/deps/drp-c999ba8f03d09279.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/drp-c999ba8f03d09279: crates/cli/src/main.rs

crates/cli/src/main.rs:
