/root/repo/target/debug/deps/drp_cli-97967b8bf59dc9fa.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libdrp_cli-97967b8bf59dc9fa.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libdrp_cli-97967b8bf59dc9fa.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
