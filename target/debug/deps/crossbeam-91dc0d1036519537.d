/root/repo/target/debug/deps/crossbeam-91dc0d1036519537.d: /root/depstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-91dc0d1036519537.rlib: /root/depstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-91dc0d1036519537.rmeta: /root/depstubs/crossbeam/src/lib.rs

/root/depstubs/crossbeam/src/lib.rs:
