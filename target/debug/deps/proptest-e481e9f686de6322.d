/root/repo/target/debug/deps/proptest-e481e9f686de6322.d: /root/depstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e481e9f686de6322.rlib: /root/depstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e481e9f686de6322.rmeta: /root/depstubs/proptest/src/lib.rs

/root/depstubs/proptest/src/lib.rs:
