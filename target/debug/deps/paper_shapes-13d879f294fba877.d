/root/repo/target/debug/deps/paper_shapes-13d879f294fba877.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/libpaper_shapes-13d879f294fba877.rmeta: tests/paper_shapes.rs

tests/paper_shapes.rs:
