/root/repo/target/debug/deps/drp-c7b1856c5f1bd989.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdrp-c7b1856c5f1bd989.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
