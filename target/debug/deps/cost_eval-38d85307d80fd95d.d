/root/repo/target/debug/deps/cost_eval-38d85307d80fd95d.d: crates/bench/src/bin/cost_eval.rs

/root/repo/target/debug/deps/cost_eval-38d85307d80fd95d: crates/bench/src/bin/cost_eval.rs

crates/bench/src/bin/cost_eval.rs:
