/root/repo/target/debug/deps/monitor-db5b149180398607.d: tests/monitor.rs

/root/repo/target/debug/deps/libmonitor-db5b149180398607.rmeta: tests/monitor.rs

tests/monitor.rs:
