/root/repo/target/debug/deps/drp_bench-e8e2c82e2895fb8f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_bench-e8e2c82e2895fb8f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
