/root/repo/target/debug/deps/adaptive-832710d5c404640e.d: tests/adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive-832710d5c404640e.rmeta: tests/adaptive.rs Cargo.toml

tests/adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
