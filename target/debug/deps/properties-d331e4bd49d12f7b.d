/root/repo/target/debug/deps/properties-d331e4bd49d12f7b.d: crates/workload/tests/properties.rs

/root/repo/target/debug/deps/properties-d331e4bd49d12f7b: crates/workload/tests/properties.rs

crates/workload/tests/properties.rs:
