/root/repo/target/debug/deps/parking_lot-259accba3482b9e3.d: /root/depstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-259accba3482b9e3.rlib: /root/depstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-259accba3482b9e3.rmeta: /root/depstubs/parking_lot/src/lib.rs

/root/depstubs/parking_lot/src/lib.rs:
