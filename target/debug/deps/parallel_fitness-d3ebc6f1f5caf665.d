/root/repo/target/debug/deps/parallel_fitness-d3ebc6f1f5caf665.d: crates/algo/tests/parallel_fitness.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_fitness-d3ebc6f1f5caf665.rmeta: crates/algo/tests/parallel_fitness.rs Cargo.toml

crates/algo/tests/parallel_fitness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
