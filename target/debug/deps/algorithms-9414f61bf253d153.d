/root/repo/target/debug/deps/algorithms-9414f61bf253d153.d: tests/algorithms.rs

/root/repo/target/debug/deps/algorithms-9414f61bf253d153: tests/algorithms.rs

tests/algorithms.rs:
