/root/repo/target/debug/deps/serde-9eed6a592106c457.d: /root/depstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9eed6a592106c457.rmeta: /root/depstubs/serde/src/lib.rs

/root/depstubs/serde/src/lib.rs:
