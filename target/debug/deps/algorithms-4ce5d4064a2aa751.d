/root/repo/target/debug/deps/algorithms-4ce5d4064a2aa751.d: tests/algorithms.rs

/root/repo/target/debug/deps/libalgorithms-4ce5d4064a2aa751.rmeta: tests/algorithms.rs

tests/algorithms.rs:
