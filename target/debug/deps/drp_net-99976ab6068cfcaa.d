/root/repo/target/debug/deps/drp_net-99976ab6068cfcaa.d: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/routes.rs crates/net/src/shortest.rs crates/net/src/sim/mod.rs crates/net/src/sim/engine.rs crates/net/src/sim/error.rs crates/net/src/sim/event.rs crates/net/src/sim/fault.rs crates/net/src/sim/message.rs crates/net/src/sim/stats.rs crates/net/src/sim/traffic.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libdrp_net-99976ab6068cfcaa.rmeta: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/routes.rs crates/net/src/shortest.rs crates/net/src/sim/mod.rs crates/net/src/sim/engine.rs crates/net/src/sim/error.rs crates/net/src/sim/event.rs crates/net/src/sim/fault.rs crates/net/src/sim/message.rs crates/net/src/sim/stats.rs crates/net/src/sim/traffic.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/cost.rs:
crates/net/src/error.rs:
crates/net/src/graph.rs:
crates/net/src/routes.rs:
crates/net/src/shortest.rs:
crates/net/src/sim/mod.rs:
crates/net/src/sim/engine.rs:
crates/net/src/sim/error.rs:
crates/net/src/sim/event.rs:
crates/net/src/sim/fault.rs:
crates/net/src/sim/message.rs:
crates/net/src/sim/stats.rs:
crates/net/src/sim/traffic.rs:
crates/net/src/topology.rs:
