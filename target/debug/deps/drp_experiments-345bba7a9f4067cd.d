/root/repo/target/debug/deps/drp_experiments-345bba7a9f4067cd.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/faults.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

/root/repo/target/debug/deps/libdrp_experiments-345bba7a9f4067cd.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/faults.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

/root/repo/target/debug/deps/libdrp_experiments-345bba7a9f4067cd.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/faults.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/ablation.rs:
crates/experiments/src/figures/convergence.rs:
crates/experiments/src/figures/faults.rs:
crates/experiments/src/figures/fig1.rs:
crates/experiments/src/figures/fig2.rs:
crates/experiments/src/figures/fig3.rs:
crates/experiments/src/figures/fig4.rs:
crates/experiments/src/figures/gap.rs:
crates/experiments/src/figures/trees.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/table.rs:
