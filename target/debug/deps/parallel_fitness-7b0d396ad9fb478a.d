/root/repo/target/debug/deps/parallel_fitness-7b0d396ad9fb478a.d: crates/algo/tests/parallel_fitness.rs

/root/repo/target/debug/deps/libparallel_fitness-7b0d396ad9fb478a.rmeta: crates/algo/tests/parallel_fitness.rs

crates/algo/tests/parallel_fitness.rs:
