/root/repo/target/debug/deps/drp-2d70b59b39f0e4e5.d: src/lib.rs

/root/repo/target/debug/deps/drp-2d70b59b39f0e4e5: src/lib.rs

src/lib.rs:
