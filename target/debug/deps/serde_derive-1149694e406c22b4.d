/root/repo/target/debug/deps/serde_derive-1149694e406c22b4.d: /root/depstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-1149694e406c22b4.so: /root/depstubs/serde_derive/src/lib.rs

/root/depstubs/serde_derive/src/lib.rs:
