/root/repo/target/debug/deps/cost_eval-bc05b17f35aeb51f.d: crates/bench/src/bin/cost_eval.rs

/root/repo/target/debug/deps/libcost_eval-bc05b17f35aeb51f.rmeta: crates/bench/src/bin/cost_eval.rs

crates/bench/src/bin/cost_eval.rs:
