/root/repo/target/debug/deps/repair_props-212bf41b720cc4a6.d: crates/algo/tests/repair_props.rs Cargo.toml

/root/repo/target/debug/deps/librepair_props-212bf41b720cc4a6.rmeta: crates/algo/tests/repair_props.rs Cargo.toml

crates/algo/tests/repair_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
