/root/repo/target/debug/deps/drp_workload-f6768b980b475520.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libdrp_workload-f6768b980b475520.rmeta: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
