/root/repo/target/debug/deps/drp-5a552dfe94985430.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdrp-5a552dfe94985430.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
