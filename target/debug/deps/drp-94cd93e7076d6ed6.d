/root/repo/target/debug/deps/drp-94cd93e7076d6ed6.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libdrp-94cd93e7076d6ed6.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
