/root/repo/target/debug/deps/repro-70f5928c2d9d1a8c.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-70f5928c2d9d1a8c: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
