/root/repo/target/debug/deps/repro-ac3999c064c0828b.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-ac3999c064c0828b.rmeta: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
