/root/repo/target/debug/deps/paper_shapes-0d11e687810016da.d: tests/paper_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shapes-0d11e687810016da.rmeta: tests/paper_shapes.rs Cargo.toml

tests/paper_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
