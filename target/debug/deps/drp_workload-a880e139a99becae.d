/root/repo/target/debug/deps/drp_workload-a880e139a99becae.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_workload-a880e139a99becae.rmeta: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
