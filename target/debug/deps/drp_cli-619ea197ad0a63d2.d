/root/repo/target/debug/deps/drp_cli-619ea197ad0a63d2.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libdrp_cli-619ea197ad0a63d2.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
