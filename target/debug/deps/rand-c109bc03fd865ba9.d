/root/repo/target/debug/deps/rand-c109bc03fd865ba9.d: /root/depstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c109bc03fd865ba9.rmeta: /root/depstubs/rand/src/lib.rs

/root/depstubs/rand/src/lib.rs:
