/root/repo/target/debug/deps/drp_ga-d215d8305254161e.d: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_ga-d215d8305254161e.rmeta: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs Cargo.toml

crates/ga/src/lib.rs:
crates/ga/src/bitstring.rs:
crates/ga/src/config.rs:
crates/ga/src/engine.rs:
crates/ga/src/error.rs:
crates/ga/src/ops.rs:
crates/ga/src/selection.rs:
crates/ga/src/spec.rs:
crates/ga/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
