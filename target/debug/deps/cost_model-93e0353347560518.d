/root/repo/target/debug/deps/cost_model-93e0353347560518.d: tests/cost_model.rs Cargo.toml

/root/repo/target/debug/deps/libcost_model-93e0353347560518.rmeta: tests/cost_model.rs Cargo.toml

tests/cost_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
