/root/repo/target/debug/deps/repro-1d0d59df6fe2e817.d: crates/experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-1d0d59df6fe2e817.rmeta: crates/experiments/src/bin/repro.rs Cargo.toml

crates/experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
