/root/repo/target/debug/deps/drp-29a4dbc5951b80d9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdrp-29a4dbc5951b80d9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
