/root/repo/target/debug/deps/pipeline-054213ce55a877ce.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-054213ce55a877ce.rmeta: tests/pipeline.rs

tests/pipeline.rs:
