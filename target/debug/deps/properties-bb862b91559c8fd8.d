/root/repo/target/debug/deps/properties-bb862b91559c8fd8.d: crates/workload/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bb862b91559c8fd8.rmeta: crates/workload/tests/properties.rs Cargo.toml

crates/workload/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
