/root/repo/target/debug/deps/evaluator_props-99dd85cc87449013.d: crates/core/tests/evaluator_props.rs

/root/repo/target/debug/deps/libevaluator_props-99dd85cc87449013.rmeta: crates/core/tests/evaluator_props.rs

crates/core/tests/evaluator_props.rs:
