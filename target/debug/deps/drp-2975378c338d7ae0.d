/root/repo/target/debug/deps/drp-2975378c338d7ae0.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libdrp-2975378c338d7ae0.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
