/root/repo/target/debug/deps/monitor-0827f88c4539e2fa.d: tests/monitor.rs

/root/repo/target/debug/deps/monitor-0827f88c4539e2fa: tests/monitor.rs

tests/monitor.rs:
