/root/repo/target/debug/deps/drp_bench-747dd59bb816087c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdrp_bench-747dd59bb816087c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
