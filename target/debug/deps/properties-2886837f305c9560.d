/root/repo/target/debug/deps/properties-2886837f305c9560.d: crates/net/tests/properties.rs

/root/repo/target/debug/deps/properties-2886837f305c9560: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
