/root/repo/target/debug/deps/proptest-2cb528efb5053c9c.d: /root/depstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2cb528efb5053c9c.rmeta: /root/depstubs/proptest/src/lib.rs

/root/depstubs/proptest/src/lib.rs:
