/root/repo/target/debug/deps/properties-d44117c9c9fb6287.d: crates/net/tests/properties.rs

/root/repo/target/debug/deps/libproperties-d44117c9c9fb6287.rmeta: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
