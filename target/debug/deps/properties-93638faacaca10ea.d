/root/repo/target/debug/deps/properties-93638faacaca10ea.d: crates/ga/tests/properties.rs

/root/repo/target/debug/deps/libproperties-93638faacaca10ea.rmeta: crates/ga/tests/properties.rs

crates/ga/tests/properties.rs:
