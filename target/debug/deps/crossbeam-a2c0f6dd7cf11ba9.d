/root/repo/target/debug/deps/crossbeam-a2c0f6dd7cf11ba9.d: /root/depstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a2c0f6dd7cf11ba9.rmeta: /root/depstubs/crossbeam/src/lib.rs

/root/depstubs/crossbeam/src/lib.rs:
