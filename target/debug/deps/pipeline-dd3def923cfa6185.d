/root/repo/target/debug/deps/pipeline-dd3def923cfa6185.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-dd3def923cfa6185.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
