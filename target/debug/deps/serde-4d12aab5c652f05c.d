/root/repo/target/debug/deps/serde-4d12aab5c652f05c.d: /root/depstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4d12aab5c652f05c.rlib: /root/depstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-4d12aab5c652f05c.rmeta: /root/depstubs/serde/src/lib.rs

/root/depstubs/serde/src/lib.rs:
