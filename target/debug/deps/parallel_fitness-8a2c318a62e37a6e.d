/root/repo/target/debug/deps/parallel_fitness-8a2c318a62e37a6e.d: crates/algo/tests/parallel_fitness.rs

/root/repo/target/debug/deps/parallel_fitness-8a2c318a62e37a6e: crates/algo/tests/parallel_fitness.rs

crates/algo/tests/parallel_fitness.rs:
