/root/repo/target/debug/deps/criterion-53e5399c78ab4285.d: /root/depstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-53e5399c78ab4285.rmeta: /root/depstubs/criterion/src/lib.rs

/root/depstubs/criterion/src/lib.rs:
