/root/repo/target/debug/deps/drp_bench-f035fb0ce4e97363.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/drp_bench-f035fb0ce4e97363: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
