/root/repo/target/debug/deps/evaluator_props-d596f2ab624fed2a.d: crates/core/tests/evaluator_props.rs Cargo.toml

/root/repo/target/debug/deps/libevaluator_props-d596f2ab624fed2a.rmeta: crates/core/tests/evaluator_props.rs Cargo.toml

crates/core/tests/evaluator_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
