/root/repo/target/debug/deps/pipeline-2529eab7e4c121bc.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-2529eab7e4c121bc: tests/pipeline.rs

tests/pipeline.rs:
