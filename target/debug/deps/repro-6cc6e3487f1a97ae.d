/root/repo/target/debug/deps/repro-6cc6e3487f1a97ae.d: crates/experiments/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-6cc6e3487f1a97ae.rmeta: crates/experiments/src/bin/repro.rs Cargo.toml

crates/experiments/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
