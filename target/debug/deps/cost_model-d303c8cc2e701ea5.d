/root/repo/target/debug/deps/cost_model-d303c8cc2e701ea5.d: tests/cost_model.rs

/root/repo/target/debug/deps/libcost_model-d303c8cc2e701ea5.rmeta: tests/cost_model.rs

tests/cost_model.rs:
