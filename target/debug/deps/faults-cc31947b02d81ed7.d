/root/repo/target/debug/deps/faults-cc31947b02d81ed7.d: crates/bench/src/bin/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-cc31947b02d81ed7.rmeta: crates/bench/src/bin/faults.rs Cargo.toml

crates/bench/src/bin/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
