/root/repo/target/debug/deps/drp_bench-a332015a8dae1919.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdrp_bench-a332015a8dae1919.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
