/root/repo/target/debug/deps/properties-e2dde0c19777f40d.d: crates/ga/tests/properties.rs

/root/repo/target/debug/deps/properties-e2dde0c19777f40d: crates/ga/tests/properties.rs

crates/ga/tests/properties.rs:
