/root/repo/target/debug/deps/properties-a3393e65da89e9cf.d: crates/ga/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a3393e65da89e9cf.rmeta: crates/ga/tests/properties.rs Cargo.toml

crates/ga/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
