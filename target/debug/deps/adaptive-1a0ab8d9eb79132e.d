/root/repo/target/debug/deps/adaptive-1a0ab8d9eb79132e.d: crates/bench/benches/adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive-1a0ab8d9eb79132e.rmeta: crates/bench/benches/adaptive.rs Cargo.toml

crates/bench/benches/adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
