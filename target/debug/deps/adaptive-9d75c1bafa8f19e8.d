/root/repo/target/debug/deps/adaptive-9d75c1bafa8f19e8.d: tests/adaptive.rs

/root/repo/target/debug/deps/libadaptive-9d75c1bafa8f19e8.rmeta: tests/adaptive.rs

tests/adaptive.rs:
