/root/repo/target/debug/deps/faults-8e9b06c4cdb455de.d: crates/bench/src/bin/faults.rs

/root/repo/target/debug/deps/faults-8e9b06c4cdb455de: crates/bench/src/bin/faults.rs

crates/bench/src/bin/faults.rs:
