/root/repo/target/debug/deps/evaluator_props-bbdacfa09b2f4fbd.d: crates/core/tests/evaluator_props.rs

/root/repo/target/debug/deps/evaluator_props-bbdacfa09b2f4fbd: crates/core/tests/evaluator_props.rs

crates/core/tests/evaluator_props.rs:
