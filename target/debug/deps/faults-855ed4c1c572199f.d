/root/repo/target/debug/deps/faults-855ed4c1c572199f.d: crates/bench/src/bin/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-855ed4c1c572199f.rmeta: crates/bench/src/bin/faults.rs Cargo.toml

crates/bench/src/bin/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
