/root/repo/target/debug/deps/repair_props-e4c7ce23132f30cd.d: crates/algo/tests/repair_props.rs

/root/repo/target/debug/deps/repair_props-e4c7ce23132f30cd: crates/algo/tests/repair_props.rs

crates/algo/tests/repair_props.rs:
