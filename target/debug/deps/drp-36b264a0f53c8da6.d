/root/repo/target/debug/deps/drp-36b264a0f53c8da6.d: src/lib.rs

/root/repo/target/debug/deps/libdrp-36b264a0f53c8da6.rmeta: src/lib.rs

src/lib.rs:
