/root/repo/target/debug/deps/drp_cli-0ab964f6ef4c1360.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/drp_cli-0ab964f6ef4c1360: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
