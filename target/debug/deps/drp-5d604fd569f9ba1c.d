/root/repo/target/debug/deps/drp-5d604fd569f9ba1c.d: src/lib.rs

/root/repo/target/debug/deps/libdrp-5d604fd569f9ba1c.rlib: src/lib.rs

/root/repo/target/debug/deps/libdrp-5d604fd569f9ba1c.rmeta: src/lib.rs

src/lib.rs:
