/root/repo/target/debug/deps/rand-b4189ecd54739f82.d: /root/depstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b4189ecd54739f82.rlib: /root/depstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b4189ecd54739f82.rmeta: /root/depstubs/rand/src/lib.rs

/root/depstubs/rand/src/lib.rs:
