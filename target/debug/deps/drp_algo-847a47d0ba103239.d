/root/repo/target/debug/deps/drp_algo-847a47d0ba103239.d: crates/algo/src/lib.rs crates/algo/src/adr.rs crates/algo/src/agra.rs crates/algo/src/annealing.rs crates/algo/src/baselines.rs crates/algo/src/distributed.rs crates/algo/src/encoding.rs crates/algo/src/exact.rs crates/algo/src/fault_tolerance.rs crates/algo/src/gra.rs crates/algo/src/monitor.rs crates/algo/src/repair.rs crates/algo/src/sra.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_algo-847a47d0ba103239.rmeta: crates/algo/src/lib.rs crates/algo/src/adr.rs crates/algo/src/agra.rs crates/algo/src/annealing.rs crates/algo/src/baselines.rs crates/algo/src/distributed.rs crates/algo/src/encoding.rs crates/algo/src/exact.rs crates/algo/src/fault_tolerance.rs crates/algo/src/gra.rs crates/algo/src/monitor.rs crates/algo/src/repair.rs crates/algo/src/sra.rs Cargo.toml

crates/algo/src/lib.rs:
crates/algo/src/adr.rs:
crates/algo/src/agra.rs:
crates/algo/src/annealing.rs:
crates/algo/src/baselines.rs:
crates/algo/src/distributed.rs:
crates/algo/src/encoding.rs:
crates/algo/src/exact.rs:
crates/algo/src/fault_tolerance.rs:
crates/algo/src/gra.rs:
crates/algo/src/monitor.rs:
crates/algo/src/repair.rs:
crates/algo/src/sra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
