/root/repo/target/debug/deps/drp_cli-9fedbd84ac53e123.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_cli-9fedbd84ac53e123.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
