/root/repo/target/debug/deps/cost_eval-1a9d44264abdbab3.d: crates/bench/src/bin/cost_eval.rs Cargo.toml

/root/repo/target/debug/deps/libcost_eval-1a9d44264abdbab3.rmeta: crates/bench/src/bin/cost_eval.rs Cargo.toml

crates/bench/src/bin/cost_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
