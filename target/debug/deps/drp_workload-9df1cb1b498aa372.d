/root/repo/target/debug/deps/drp_workload-9df1cb1b498aa372.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/debug/deps/libdrp_workload-9df1cb1b498aa372.rmeta: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
