/root/repo/target/debug/deps/criterion-363e5bde5c69e2f6.d: /root/depstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-363e5bde5c69e2f6.rlib: /root/depstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-363e5bde5c69e2f6.rmeta: /root/depstubs/criterion/src/lib.rs

/root/depstubs/criterion/src/lib.rs:
