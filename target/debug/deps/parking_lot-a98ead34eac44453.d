/root/repo/target/debug/deps/parking_lot-a98ead34eac44453.d: /root/depstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-a98ead34eac44453.rmeta: /root/depstubs/parking_lot/src/lib.rs

/root/depstubs/parking_lot/src/lib.rs:
