/root/repo/target/debug/deps/drp_workload-bf4658ee12636200.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_workload-bf4658ee12636200.rmeta: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
