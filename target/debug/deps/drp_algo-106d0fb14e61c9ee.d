/root/repo/target/debug/deps/drp_algo-106d0fb14e61c9ee.d: crates/algo/src/lib.rs crates/algo/src/adr.rs crates/algo/src/agra.rs crates/algo/src/annealing.rs crates/algo/src/baselines.rs crates/algo/src/distributed.rs crates/algo/src/encoding.rs crates/algo/src/exact.rs crates/algo/src/fault_tolerance.rs crates/algo/src/gra.rs crates/algo/src/monitor.rs crates/algo/src/sra.rs

/root/repo/target/debug/deps/libdrp_algo-106d0fb14e61c9ee.rmeta: crates/algo/src/lib.rs crates/algo/src/adr.rs crates/algo/src/agra.rs crates/algo/src/annealing.rs crates/algo/src/baselines.rs crates/algo/src/distributed.rs crates/algo/src/encoding.rs crates/algo/src/exact.rs crates/algo/src/fault_tolerance.rs crates/algo/src/gra.rs crates/algo/src/monitor.rs crates/algo/src/sra.rs

crates/algo/src/lib.rs:
crates/algo/src/adr.rs:
crates/algo/src/agra.rs:
crates/algo/src/annealing.rs:
crates/algo/src/baselines.rs:
crates/algo/src/distributed.rs:
crates/algo/src/encoding.rs:
crates/algo/src/exact.rs:
crates/algo/src/fault_tolerance.rs:
crates/algo/src/gra.rs:
crates/algo/src/monitor.rs:
crates/algo/src/sra.rs:
