/root/repo/target/debug/deps/repair_props-e7836f370e6bb831.d: crates/algo/tests/repair_props.rs

/root/repo/target/debug/deps/repair_props-e7836f370e6bb831: crates/algo/tests/repair_props.rs

crates/algo/tests/repair_props.rs:
