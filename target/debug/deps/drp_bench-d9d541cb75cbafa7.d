/root/repo/target/debug/deps/drp_bench-d9d541cb75cbafa7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdrp_bench-d9d541cb75cbafa7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
