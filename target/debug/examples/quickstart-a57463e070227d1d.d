/root/repo/target/debug/examples/quickstart-a57463e070227d1d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a57463e070227d1d: examples/quickstart.rs

examples/quickstart.rs:
