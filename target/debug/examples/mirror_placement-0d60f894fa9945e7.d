/root/repo/target/debug/examples/mirror_placement-0d60f894fa9945e7.d: examples/mirror_placement.rs

/root/repo/target/debug/examples/mirror_placement-0d60f894fa9945e7: examples/mirror_placement.rs

examples/mirror_placement.rs:
