/root/repo/target/debug/examples/hot_links-dd56381ea942aa53.d: examples/hot_links.rs

/root/repo/target/debug/examples/hot_links-dd56381ea942aa53: examples/hot_links.rs

examples/hot_links.rs:
