/root/repo/target/debug/examples/adaptive_hotspots-2fd9123b27f529da.d: examples/adaptive_hotspots.rs

/root/repo/target/debug/examples/adaptive_hotspots-2fd9123b27f529da: examples/adaptive_hotspots.rs

examples/adaptive_hotspots.rs:
