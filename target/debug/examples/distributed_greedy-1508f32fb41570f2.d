/root/repo/target/debug/examples/distributed_greedy-1508f32fb41570f2.d: examples/distributed_greedy.rs

/root/repo/target/debug/examples/distributed_greedy-1508f32fb41570f2: examples/distributed_greedy.rs

examples/distributed_greedy.rs:
