/root/repo/target/release/deps/parking_lot-aecc5cceac160399.d: /root/depstubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-aecc5cceac160399.rlib: /root/depstubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-aecc5cceac160399.rmeta: /root/depstubs/parking_lot/src/lib.rs

/root/depstubs/parking_lot/src/lib.rs:
