/root/repo/target/release/deps/drp_experiments-fce7487b0ee86d79.d: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/faults.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

/root/repo/target/release/deps/libdrp_experiments-fce7487b0ee86d79.rlib: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/faults.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

/root/repo/target/release/deps/libdrp_experiments-fce7487b0ee86d79.rmeta: crates/experiments/src/lib.rs crates/experiments/src/figures/mod.rs crates/experiments/src/figures/ablation.rs crates/experiments/src/figures/convergence.rs crates/experiments/src/figures/faults.rs crates/experiments/src/figures/fig1.rs crates/experiments/src/figures/fig2.rs crates/experiments/src/figures/fig3.rs crates/experiments/src/figures/fig4.rs crates/experiments/src/figures/gap.rs crates/experiments/src/figures/trees.rs crates/experiments/src/runner.rs crates/experiments/src/scale.rs crates/experiments/src/table.rs

crates/experiments/src/lib.rs:
crates/experiments/src/figures/mod.rs:
crates/experiments/src/figures/ablation.rs:
crates/experiments/src/figures/convergence.rs:
crates/experiments/src/figures/faults.rs:
crates/experiments/src/figures/fig1.rs:
crates/experiments/src/figures/fig2.rs:
crates/experiments/src/figures/fig3.rs:
crates/experiments/src/figures/fig4.rs:
crates/experiments/src/figures/gap.rs:
crates/experiments/src/figures/trees.rs:
crates/experiments/src/runner.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/table.rs:
