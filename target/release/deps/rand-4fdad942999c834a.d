/root/repo/target/release/deps/rand-4fdad942999c834a.d: /root/depstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4fdad942999c834a.rlib: /root/depstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4fdad942999c834a.rmeta: /root/depstubs/rand/src/lib.rs

/root/depstubs/rand/src/lib.rs:
