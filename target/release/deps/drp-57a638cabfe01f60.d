/root/repo/target/release/deps/drp-57a638cabfe01f60.d: src/lib.rs

/root/repo/target/release/deps/libdrp-57a638cabfe01f60.rlib: src/lib.rs

/root/repo/target/release/deps/libdrp-57a638cabfe01f60.rmeta: src/lib.rs

src/lib.rs:
