/root/repo/target/release/deps/serde_derive-613a81d65e9741a1.d: /root/depstubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-613a81d65e9741a1.so: /root/depstubs/serde_derive/src/lib.rs

/root/depstubs/serde_derive/src/lib.rs:
