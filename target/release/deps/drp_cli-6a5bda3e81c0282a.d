/root/repo/target/release/deps/drp_cli-6a5bda3e81c0282a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libdrp_cli-6a5bda3e81c0282a.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libdrp_cli-6a5bda3e81c0282a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
