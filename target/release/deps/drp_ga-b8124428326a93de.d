/root/repo/target/release/deps/drp_ga-b8124428326a93de.d: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs

/root/repo/target/release/deps/libdrp_ga-b8124428326a93de.rlib: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs

/root/repo/target/release/deps/libdrp_ga-b8124428326a93de.rmeta: crates/ga/src/lib.rs crates/ga/src/bitstring.rs crates/ga/src/config.rs crates/ga/src/engine.rs crates/ga/src/error.rs crates/ga/src/ops.rs crates/ga/src/selection.rs crates/ga/src/spec.rs crates/ga/src/stats.rs

crates/ga/src/lib.rs:
crates/ga/src/bitstring.rs:
crates/ga/src/config.rs:
crates/ga/src/engine.rs:
crates/ga/src/error.rs:
crates/ga/src/ops.rs:
crates/ga/src/selection.rs:
crates/ga/src/spec.rs:
crates/ga/src/stats.rs:
