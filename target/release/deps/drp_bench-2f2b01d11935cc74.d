/root/repo/target/release/deps/drp_bench-2f2b01d11935cc74.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdrp_bench-2f2b01d11935cc74.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdrp_bench-2f2b01d11935cc74.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
