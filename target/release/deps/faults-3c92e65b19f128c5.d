/root/repo/target/release/deps/faults-3c92e65b19f128c5.d: crates/bench/src/bin/faults.rs

/root/repo/target/release/deps/faults-3c92e65b19f128c5: crates/bench/src/bin/faults.rs

crates/bench/src/bin/faults.rs:
