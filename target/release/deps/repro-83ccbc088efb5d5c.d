/root/repo/target/release/deps/repro-83ccbc088efb5d5c.d: crates/experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-83ccbc088efb5d5c: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
