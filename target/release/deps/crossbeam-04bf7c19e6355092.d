/root/repo/target/release/deps/crossbeam-04bf7c19e6355092.d: /root/depstubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-04bf7c19e6355092.rlib: /root/depstubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-04bf7c19e6355092.rmeta: /root/depstubs/crossbeam/src/lib.rs

/root/depstubs/crossbeam/src/lib.rs:
