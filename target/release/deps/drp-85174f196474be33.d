/root/repo/target/release/deps/drp-85174f196474be33.d: crates/cli/src/main.rs

/root/repo/target/release/deps/drp-85174f196474be33: crates/cli/src/main.rs

crates/cli/src/main.rs:
