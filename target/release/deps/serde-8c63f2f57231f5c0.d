/root/repo/target/release/deps/serde-8c63f2f57231f5c0.d: /root/depstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8c63f2f57231f5c0.rlib: /root/depstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-8c63f2f57231f5c0.rmeta: /root/depstubs/serde/src/lib.rs

/root/depstubs/serde/src/lib.rs:
