/root/repo/target/release/deps/drp_workload-e40091b9d62d78ea.d: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libdrp_workload-e40091b9d62d78ea.rlib: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

/root/repo/target/release/deps/libdrp_workload-e40091b9d62d78ea.rmeta: crates/workload/src/lib.rs crates/workload/src/change.rs crates/workload/src/generator.rs crates/workload/src/rngutil.rs crates/workload/src/spec.rs crates/workload/src/trace.rs crates/workload/src/zipf.rs

crates/workload/src/lib.rs:
crates/workload/src/change.rs:
crates/workload/src/generator.rs:
crates/workload/src/rngutil.rs:
crates/workload/src/spec.rs:
crates/workload/src/trace.rs:
crates/workload/src/zipf.rs:
