//! Physical-link utilization analysis on a sparse topology.
//!
//! The cost model works on the shortest-path metric, but operators care
//! about *physical links*. This example routes every read/write flow of a
//! grid network hop-by-hop (via the deterministic next-hop table) and shows
//! how replication relieves the hottest links.
//!
//! ```text
//! cargo run --release --example hot_links
//! ```

use drp::net::{topology, CostMatrix, Routes};
use drp::{Problem, ReplicationAlgorithm, ReplicationScheme, Sra};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Accumulates each site's read/write flows onto directed physical links.
fn link_loads(problem: &Problem, scheme: &ReplicationScheme, routes: &Routes) -> Vec<u64> {
    let m = problem.num_sites();
    let mut loads = vec![0u64; m * m];
    for k in problem.objects() {
        let o = problem.object_size(k);
        let sp = problem.primary(k);
        for i in problem.sites() {
            // Reads travel from the nearest replica.
            let reads = problem.reads(i, k);
            if reads > 0 && !scheme.holds(i, k) {
                let (sn, _) = scheme.nearest_replica(problem, i, k);
                routes.accumulate_flow(sn.index(), i.index(), reads * o, &mut loads);
            }
            // Writes ship to the primary...
            let writes = problem.writes(i, k);
            if writes > 0 && i != sp && !scheme.holds(i, k) {
                routes.accumulate_flow(i.index(), sp.index(), writes * o, &mut loads);
            }
        }
        // ...and the primary broadcasts each write to every replicator.
        let total_writes = problem.total_writes(k);
        for j in scheme.replicators(k) {
            if j != sp && total_writes > 0 {
                routes.accumulate_flow(sp.index(), j.index(), total_writes * o, &mut loads);
            }
        }
    }
    loads
}

fn top_links(loads: &[u64], m: usize, count: usize) -> Vec<(usize, usize, u64)> {
    let mut pairs: Vec<(usize, usize, u64)> = (0..m * m)
        .filter(|&idx| loads[idx] > 0)
        .map(|idx| (idx / m, idx % m, loads[idx]))
        .collect();
    pairs.sort_unstable_by_key(|&(_, _, load)| std::cmp::Reverse(load));
    pairs.truncate(count);
    pairs
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);
    // A 4×5 grid: sparse enough that flows share physical links.
    let graph = topology::grid(4, 5, 1, 4, &mut rng)?;
    let routes = Routes::from_graph(&graph)?;
    let costs = CostMatrix::from_graph(&graph)?;

    let mut spec = drp::WorkloadSpec::paper(20, 40, 3.0, 20.0);
    spec.topology = drp::workload::TopologyKind::Grid;
    // Rebuild the instance over *our* grid so the routing table matches.
    let problem = {
        let base = spec.generate(&mut rng)?;
        let mut builder = Problem::builder(costs);
        builder.objects_bulk(
            base.objects().map(|k| base.object_size(k)).collect(),
            base.objects().map(|k| base.primary(k)).collect(),
        );
        builder.capacities(base.sites().map(|i| base.capacity(i)).collect());
        builder.read_matrix(base.read_matrix().clone());
        builder.write_matrix(base.write_matrix().clone());
        builder.build()?
    };

    let before = ReplicationScheme::primary_only(&problem);
    let after = Sra::new().solve(&problem, &mut rng)?;

    for (label, scheme) in [("primary-only", &before), ("after SRA", &after)] {
        let loads = link_loads(&problem, scheme, &routes);
        let total: u64 = loads.iter().sum();
        println!("{label}: total link flow = {total} unit-hops");
        for (a, b, load) in top_links(&loads, problem.num_sites(), 3) {
            println!("  link {a:>2} -> {b:<2} carries {load}");
        }
    }

    let loads_before: u64 = link_loads(&problem, &before, &routes).iter().sum();
    let loads_after: u64 = link_loads(&problem, &after, &routes).iter().sum();
    println!(
        "replication removed {:.1}% of the physical-link flow",
        100.0 * (loads_before - loads_after) as f64 / loads_before as f64
    );
    Ok(())
}
