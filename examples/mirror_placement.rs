//! Web-mirror placement: the scenario the paper's introduction motivates.
//!
//! A Waxman random internet-like topology serves a Zipf-skewed read
//! workload (a few hot pages, a long cold tail). We compare the placement
//! quality of every solver in the workspace, including the exact optimum on
//! a small slice of the problem.
//!
//! ```text
//! cargo run --release --example mirror_placement
//! ```

use drp::baselines::{HillClimb, PrimaryOnly, RandomFill};
use drp::workload::TopologyKind;
use drp::{Gra, GraConfig, ReplicationAlgorithm, Sra, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // 30 mirrors, 120 objects, 3% update ratio, 20% of total content
    // storable per site; internet-like Waxman topology and Zipf(1.1) reads.
    let mut spec = WorkloadSpec::paper(30, 120, 3.0, 20.0);
    spec.topology = TopologyKind::Waxman {
        alpha: 0.9,
        beta: 0.3,
    };
    spec.zipf_skew = Some(1.1);
    let problem = spec.generate(&mut rng)?;

    println!(
        "mirror network: {} sites, {} objects, D_prime = {}",
        problem.num_sites(),
        problem.num_objects(),
        problem.d_prime()
    );
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9}",
        "solver", "NTC", "saved%", "replicas", "time(s)"
    );

    let gra_config = GraConfig {
        population_size: 20,
        generations: 40,
        ..GraConfig::default()
    };
    let solvers: Vec<Box<dyn ReplicationAlgorithm>> = vec![
        Box::new(PrimaryOnly),
        Box::new(RandomFill::default()),
        Box::new(Sra::new()),
        Box::new(HillClimb::default()),
        Box::new(Gra::with_config(gra_config)),
    ];
    for solver in &solvers {
        let (_, report) = solver.solve_report(&problem, &mut rng)?;
        println!(
            "{:<12} {:>10} {:>9.2} {:>9} {:>9.3}",
            report.algorithm,
            report.cost,
            report.savings_percent,
            report.extra_replicas,
            report.elapsed.as_secs_f64()
        );
    }

    // On a tiny slice the exact optimum is computable: how close is GRA?
    let mut small_spec = WorkloadSpec::paper(6, 6, 3.0, 25.0);
    small_spec.zipf_skew = Some(1.1);
    let small = small_spec.generate(&mut rng)?;
    let optimal = drp::exact::BranchBound::default().solve(&small, &mut rng)?;
    let gra_small = Gra::with_config(GraConfig {
        population_size: 12,
        generations: 20,
        ..GraConfig::default()
    })
    .solve(&small, &mut rng)?;
    println!(
        "\n6x6 slice: optimum NTC = {}, GRA NTC = {} ({:+.2}% gap)",
        small.total_cost(&optimal),
        small.total_cost(&gra_small),
        100.0 * (small.total_cost(&gra_small) as f64 - small.total_cost(&optimal) as f64)
            / small.total_cost(&optimal).max(1) as f64
    );
    Ok(())
}
