//! Day/night adaptation with AGRA — the paper's Section 5 deployment story.
//!
//! At "night" a monitor runs the expensive GRA over yesterday's statistics.
//! During the "day" the read/write pattern shifts (hot objects emerge,
//! others start being updated from a cluster of sites); the monitor detects
//! the drifted objects and lets AGRA re-tune the scheme in a fraction of a
//! full GRA run.
//!
//! ```text
//! cargo run --release --example adaptive_hotspots
//! ```

use std::time::Instant;

use drp::algo::detect_changed_objects;
use drp::{Agra, AgraConfig, Gra, GraConfig, PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let problem = WorkloadSpec::paper(25, 80, 5.0, 15.0).generate(&mut rng)?;

    // Night: full GRA run on yesterday's statistics.
    let gra_config = GraConfig {
        population_size: 24,
        generations: 40,
        ..GraConfig::default()
    };
    let night = Instant::now();
    let base = Gra::with_config(gra_config.clone()).solve_detailed(&problem, &mut rng)?;
    println!(
        "night-time GRA: {:.2}% savings in {:.2}s",
        problem.savings_percent(&base.scheme),
        night.elapsed().as_secs_f64()
    );

    let mut current_problem = problem;
    let mut current_scheme = base.scheme;
    let mut population: Vec<_> = base
        .outcome
        .final_population
        .iter()
        .map(|(c, _)| c.clone())
        .collect();

    // Day: three pattern shifts of increasing severity.
    let agra = Agra::with_config(AgraConfig {
        gra: gra_config,
        ..AgraConfig::default()
    });
    for (round, (och, read_share)) in [(15.0, 1.0), (25.0, 0.5), (35.0, 0.0)].iter().enumerate() {
        let change = PatternChange {
            change_percent: 500.0,
            objects_percent: *och,
            read_share: *read_share,
        };
        let shift = change.apply(&current_problem, &mut rng)?;

        // The monitor compares fresh statistics against last night's.
        let changed = detect_changed_objects(&current_problem, &shift.problem, 100.0);
        let stale = shift.problem.savings_percent(&current_scheme);

        let clock = Instant::now();
        let outcome = agra.adapt(
            &shift.problem,
            &current_scheme,
            &population,
            &changed,
            &mut rng,
        )?;
        let elapsed = clock.elapsed().as_secs_f64();
        let adapted = shift.problem.savings_percent(&outcome.scheme);

        println!(
            "round {}: {} objects drifted | stale scheme {:.2}% -> AGRA {:.2}% in {:.3}s \
             ({} micro + {} mini evaluations)",
            round + 1,
            changed.len(),
            stale,
            adapted,
            elapsed,
            outcome.micro_evaluations,
            outcome.mini_evaluations
        );

        current_problem = shift.problem;
        current_scheme = outcome.scheme;
        population = outcome.population;
    }
    Ok(())
}
