//! Quickstart: build a small instance by hand, compare the primary-only
//! allocation with SRA's greedy placement and GRA's genetic search.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use drp::{CostMatrix, Gra, GraConfig, Problem, ReplicationAlgorithm, SiteId, Sra};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-site line network: 0 —1— 1 —1— 2 —1— 3 (costs are per data unit).
    let mut graph = drp::Graph::new(4)?;
    graph.add_edge(0, 1, 1)?;
    graph.add_edge(1, 2, 1)?;
    graph.add_edge(2, 3, 1)?;
    let costs = CostMatrix::from_graph(&graph)?;

    // Two objects: a hot read-mostly page primaried at site 0 and a
    // write-heavy log primaried at site 3.
    let problem = Problem::builder(costs)
        .capacities(vec![40, 25, 25, 40])
        .object(20, SiteId::new(0)) // "page", 20 data units
        .reads(vec![5, 30, 45, 60])
        .writes(vec![2, 0, 0, 0])
        .object(15, SiteId::new(3)) // "log", 15 data units
        .reads(vec![4, 2, 2, 8])
        .writes(vec![10, 10, 10, 30])
        .build()?;

    println!("primary-only NTC (D_prime): {}", problem.d_prime());

    let mut rng = StdRng::seed_from_u64(1);
    let (sra_scheme, sra_report) = Sra::new().solve_report(&problem, &mut rng)?;
    println!("{sra_report}");
    for k in problem.objects() {
        let replicas: Vec<String> = sra_scheme.replicators(k).map(|s| s.to_string()).collect();
        println!("  object {k} replicated at sites [{}]", replicas.join(", "));
    }

    let config = GraConfig {
        population_size: 16,
        generations: 25,
        ..GraConfig::default()
    };
    let (gra_scheme, gra_report) = Gra::with_config(config).solve_report(&problem, &mut rng)?;
    println!("{gra_report}");

    // The analytic cost model is exact: replaying every read and write as
    // messages on the discrete-event simulator measures the same NTC.
    let measured = drp::core::replay::replay_total_cost(&problem, &gra_scheme)?;
    assert_eq!(measured, problem.total_cost(&gra_scheme));
    println!("simulator replay agrees: NTC = {measured}");
    Ok(())
}
