//! The distributed SRA protocol on the discrete-event simulator.
//!
//! A leader passes a token around the network; each site decides locally
//! which object to replicate and the decision is broadcast (with an ack
//! barrier) so every site keeps its nearest-replica table consistent. The
//! result provably matches the centralized round-robin SRA; the run also
//! reports what the *protocol itself* costs: control messages, object
//! migration traffic and wall-clock in simulated (link-cost) time.
//!
//! ```text
//! cargo run --release --example distributed_greedy
//! ```

use drp::distributed::distributed_sra;
use drp::{ReplicationAlgorithm, Sra, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(31);
    let problem = WorkloadSpec::paper(12, 30, 4.0, 18.0).generate(&mut rng)?;

    let centralized = Sra::new().solve(&problem, &mut rng)?;
    let run = distributed_sra(&problem)?;

    assert_eq!(
        run.scheme, centralized,
        "the token-passing protocol reproduces centralized SRA exactly"
    );

    println!(
        "network: {} sites, {} objects",
        problem.num_sites(),
        problem.num_objects()
    );
    println!(
        "replication scheme: {} replicas created, {:.2}% NTC saved",
        run.scheme.extra_replica_count(),
        problem.savings_percent(&run.scheme)
    );
    println!("protocol cost:");
    println!("  control + data messages : {}", run.stats.messages);
    println!("  object-migration NTC    : {}", run.stats.transfer_cost);
    println!("  completion (sim time)   : {}", run.completion_time);

    // For perspective: the migration cost is a one-off investment against
    // the recurring per-period NTC the replicas save.
    let saved_per_period = problem.d_prime() - problem.total_cost(&run.scheme);
    if saved_per_period > 0 {
        println!(
            "  migration pays for itself after {:.3} access periods",
            run.stats.transfer_cost as f64 / saved_per_period as f64
        );
    }
    Ok(())
}
