//! Offline stand-in for `proptest` covering exactly the API surface this
//! workspace uses. Unlike the real crate there is no shrinking and no
//! failure persistence, but properties really execute: each `proptest!`
//! test derives a deterministic RNG from its own module path + name and
//! runs the body on `cases` generated inputs (default 16, overridable via
//! the `PROPTEST_CASES` environment variable, as with real proptest).

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};
use rand::{Rng as _, RngCore};

pub trait Strategy {
    type Value;

    /// Draw one value. The stub equivalent of a proptest `ValueTree`
    /// without the shrinking lattice.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map(self, f)
    }
}

pub struct Map<S, F>(S, F);

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> O {
        (self.1)(self.0.generate(rng))
    }
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.random::<$t>() * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + rng.random::<$t>() * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!((A, 0));
tuple_strategy!((A, 0), (B, 1));
tuple_strategy!((A, 0), (B, 1), (C, 2));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

/// Placeholder so `any::<T>()` keeps compiling; the workspace does not
/// currently execute any `any` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T> Strategy for Any<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        panic!("any::<T>() is not supported by the offline proptest stub; use a range strategy")
    }
}

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

/// Length specification accepted by [`collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample_len<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.random_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi_inclusive: len,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::{RngCore, SizeRange, Strategy};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: same test name ⇒ same input stream,
/// independent of how many other tests run or in what order.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::StdRng::seed_from_u64(h)
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            (<$crate::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $p = $crate::Strategy::generate(&$s, &mut __rng);)*
                            $body
                        }),
                    );
                    if let ::std::result::Result::Err(__payload) = __outcome {
                        eprintln!(
                            "proptest (offline stub): {} failed on case {}/{}; \
                             inputs derive from the test name, so a rerun reproduces this",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    pub mod prop {
        pub use crate::collection;
    }
}
