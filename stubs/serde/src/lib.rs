//! Offline stand-in for `serde`: the derive macros expand to nothing and the
//! traits are empty markers. Only for typechecking without a registry.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
