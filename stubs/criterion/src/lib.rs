//! Offline stand-in for `criterion`: enough API for this workspace's bench
//! targets to compile and run. Each benchmark times `sample_size`
//! iterations (default 10) with `std::time::Instant` after one warm-up
//! call, and prints a single `name ... mean ns/iter` line — no statistics,
//! HTML reports or baseline comparisons. Numbers from this runner are
//! indicative only; the JSON-emitting `drp_bench` bins are the measured
//! benchmarks this repo actually gates on.

use std::fmt::Display;
use std::time::Instant;

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, mean_ns: 0.0 };
    f(&mut b);
    println!("bench: {label:<50} {:>14.1} ns/iter (stub, n={iters})", b.mean_ns);
}

pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
