//! Offline stand-in for `crossbeam`: a minimal MPMC channel with the subset
//! of the `crossbeam::channel` API this workspace uses — `unbounded` plus a
//! `bounded` variant whose `send` blocks while the buffer is full, which is
//! what gives the ingestion front end its backpressure.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or the last sender hangs up.
        not_empty: Condvar,
        /// Signalled when space frees up in a bounded buffer.
        not_full: Condvar,
        /// `None` = unbounded. `Some(0)` is rounded up to one slot.
        cap: Option<usize>,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T>(Arc<Inner<T>>);
    pub struct Receiver<T>(Arc<Inner<T>>);

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Channel holding at most `cap` queued items; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders blocked on a full buffer so they can error
                // out instead of deadlocking.
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded buffer is at capacity.
        ///
        /// Fails (returning the value) only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(cap) = self.0.cap {
                while st.buf.len() >= cap {
                    if st.receivers == 0 {
                        return Err(SendError(value));
                    }
                    st = self.0.not_full.wait(st).unwrap();
                }
            }
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.buf.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    if self.0.cap.is_some() {
                        self.0.not_full.notify_one();
                    }
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = std::thread::spawn(move || {
            // Third send must wait for the receiver to drain a slot.
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_once_all_receivers_dropped() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
