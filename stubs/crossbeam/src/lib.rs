//! Offline stand-in for `crossbeam`: a minimal MPMC unbounded channel with
//! the subset of the `crossbeam::channel` API this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
    }

    pub struct Sender<T>(Arc<Inner<T>>);
    pub struct Receiver<T>(Arc<Inner<T>>);

    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
            }),
            cv: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            st.buf.push_back(value);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.cv.wait(st).unwrap();
            }
        }
    }
}
