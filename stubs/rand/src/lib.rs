//! Offline stand-in for the `rand` crate exposing exactly the API surface
//! this workspace uses. Deterministic (splitmix64-based) but NOT the real
//! StdRng stream — only for typechecking and local test runs without a
//! registry.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait FromRng {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64-backed stand-in for the real StdRng (different stream!).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}
