//! # drp — static and adaptive data replication algorithms
//!
//! A full reproduction of *"Static and Adaptive Data Replication Algorithms
//! for Fast Information Access in Large Distributed Systems"* (Loukopoulos &
//! Ahmad, ICDCS 2000) as a Rust workspace. This facade crate re-exports the
//! member crates:
//!
//! * [`net`] — graphs, shortest paths, cost matrices, topology generators
//!   and a deterministic discrete-event message simulator;
//! * [`core`] — the Data Replication Problem: instances, replication
//!   schemes, the exact NTC cost model, benefit/estimator values;
//! * [`workload`] — the paper's synthetic workload generator and the
//!   pattern-change generator for adaptive experiments;
//! * [`ga`] — the genetic-algorithm toolkit (selection schemes, operators,
//!   engine);
//! * [`algo`] — SRA (greedy, plus its distributed token-passing variant),
//!   GRA (genetic), AGRA (adaptive), baselines and an exact
//!   branch-and-bound solver;
//! * [`serve`] — the closed-loop online adaptation runtime: streaming
//!   traffic epochs on the simulator, windowed statistics into the
//!   monitor, live staged migration of new schemes.
//!
//! The most common items are also re-exported at the top level.
//!
//! # Examples
//!
//! Generate a paper-style workload, place replicas greedily, then improve
//! genetically:
//!
//! ```
//! use drp::{Gra, GraConfig, ReplicationAlgorithm, Sra, WorkloadSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let problem = WorkloadSpec::paper(10, 15, 5.0, 20.0).generate(&mut rng)?;
//!
//! let greedy = Sra::new().solve(&problem, &mut rng)?;
//! let config = GraConfig { population_size: 10, generations: 30, ..GraConfig::default() };
//! let genetic = Gra::with_config(config).solve(&problem, &mut rng)?;
//!
//! // Both beat doing nothing; the genetic search refines the greedy seed.
//! assert!(problem.total_cost(&greedy) <= problem.d_prime());
//! assert!(problem.total_cost(&genetic) <= problem.d_prime());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use drp_algo as algo;
pub use drp_core as core;
pub use drp_ga as ga;
pub use drp_net as net;
pub use drp_serve as serve;
pub use drp_workload as workload;

pub use drp_algo::{baselines, distributed, exact, repair, Agra, AgraConfig, Gra, GraConfig, Sra};
pub use drp_core::{
    CoreError, DegradationReport, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme,
    SiteId, SolutionReport,
};
pub use drp_net::sim::FaultPlan;
pub use drp_net::{CostMatrix, Graph};
pub use drp_workload::{PatternChange, WorkloadSpec};
