//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! repro <all|fig1|fig2|fig3|fig4> [--full] [--seed N] [--out DIR]
//! ```
//!
//! Markdown tables go to stdout, CSV files to the output directory
//! (default `results/`). The default scale is laptop-sized; `--full`
//! restores the paper's instance counts and sweep ranges.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use drp_core::telemetry::{InMemoryRecorder, Recorder};
use drp_experiments::figures::{
    ablation, adapt, convergence, faults, fig1, fig2, fig3, fig4, gap, shard, trees,
};
use drp_experiments::{Scale, Table};

struct Args {
    target: String,
    scale: Scale,
    seed: u64,
    out: PathBuf,
    instances: Option<usize>,
}

fn usage() -> ExitCode {
    eprintln!("usage: repro <all|fig1|fig1-sites|fig1-objects|fig2|fig3|fig4|ablation|gap|trees|convergence|faults|adapt|shard|extras> [--full] [--seed N] [--out DIR] [--instances N]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut target = None;
    let mut scale = Scale::Quick;
    let mut seed = 20000u64; // ICDCS 2000
    let mut out = PathBuf::from("results");
    let mut instances = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "all" | "fig1" | "fig1-sites" | "fig1-objects" | "fig2" | "fig3" | "fig4"
            | "ablation" | "gap" | "trees" | "convergence" | "faults" | "adapt" | "shard"
            | "extras"
                if target.is_none() =>
            {
                target = Some(arg);
            }
            "--full" => scale = Scale::Full,
            "--seed" => {
                let value = argv.next().ok_or_else(usage)?;
                seed = value.parse().map_err(|_| usage())?;
            }
            "--out" => out = PathBuf::from(argv.next().ok_or_else(usage)?),
            "--instances" => {
                let value = argv.next().ok_or_else(usage)?;
                instances = Some(value.parse().map_err(|_| usage())?);
            }
            _ => return Err(usage()),
        }
    }
    Ok(Args {
        target: target.ok_or_else(usage)?,
        scale,
        seed,
        out,
        instances,
    })
}

/// Applies the optional --instances override.
fn with_instances<T>(mut params: T, instances: Option<usize>, set: fn(&mut T, usize)) -> T {
    if let Some(n) = instances {
        set(&mut params, n.max(1));
    }
    params
}

fn emit(tables: Vec<Table>, out: &Path) {
    for table in tables {
        println!("{}", table.to_markdown());
        match table.write_csv(out) {
            Ok(path) => eprintln!("  wrote {}", path.display()),
            Err(e) => eprintln!("  failed to write {}: {e}", table.name),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };
    eprintln!("repro: target={} {}", args.target, args.scale.describe());
    let started = Instant::now();
    // Every figure run records into this and dumps
    // `telemetry_<target>.jsonl` next to the CSVs; the sweeps with deep
    // hooks (fig1/fig2 GRA runs, the faults pipeline) feed it solver and
    // simulator internals, the rest at least leave run-level marks.
    let recorder = Arc::new(InMemoryRecorder::new());
    let dyn_recorder = || Arc::clone(&recorder) as Arc<dyn Recorder>;

    match args.target.as_str() {
        "fig1" => {
            let params = with_instances(
                fig1::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(fig1::run_recorded(&params, dyn_recorder()), &args.out);
        }
        "fig1-sites" => {
            let params = with_instances(
                fig1::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            let [a, b, t1, t2] = fig1::sites_sweep_recorded(&params, dyn_recorder());
            emit(vec![a, b, t1, t2], &args.out);
        }
        "fig1-objects" => {
            let params = with_instances(
                fig1::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            let [c, d] = fig1::objects_sweep_recorded(&params, dyn_recorder());
            emit(vec![c, d], &args.out);
        }
        "fig2" => {
            let params = with_instances(
                fig1::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(fig2::run_recorded(&params, dyn_recorder()), &args.out);
        }
        "fig3" => {
            let params = with_instances(
                fig3::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(fig3::run(&params), &args.out);
        }
        "fig4" => {
            let params = with_instances(
                fig4::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(fig4::run(&params), &args.out);
        }
        "ablation" => {
            let params = with_instances(
                ablation::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(ablation::run(&params), &args.out);
        }
        "gap" => {
            let params = with_instances(
                gap::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(gap::run(&params), &args.out);
        }
        "convergence" => {
            let params = with_instances(
                convergence::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(convergence::run(&params), &args.out);
        }
        "trees" => {
            let params = with_instances(
                trees::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(trees::run(&params), &args.out);
        }
        "faults" => {
            let params = with_instances(
                faults::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(faults::run_recorded(&params, dyn_recorder()), &args.out);
        }
        "adapt" => {
            let params = with_instances(
                adapt::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(adapt::run_recorded(&params, dyn_recorder()), &args.out);
        }
        "shard" => {
            let params = with_instances(
                shard::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(shard::run(&params), &args.out);
        }
        "extras" => {
            // The three reproduction extensions in one go.
            let params = with_instances(
                ablation::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(ablation::run(&params), &args.out);
            let params = with_instances(
                gap::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(gap::run(&params), &args.out);
            let params = with_instances(
                trees::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(trees::run(&params), &args.out);
        }
        "all" => {
            // Figures 1 and 2 share the site sweep; run it once.
            let params = with_instances(
                fig1::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            let [a, b, t1, t2] = fig1::sites_sweep_recorded(&params, dyn_recorder());
            let [c, d] = fig1::objects_sweep_recorded(&params, dyn_recorder());
            emit(vec![a, b, c, d, t1, t2], &args.out);
            let params = with_instances(
                fig3::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(fig3::run(&params), &args.out);
            let params = with_instances(
                fig4::Params::from_scale(args.scale, args.seed),
                args.instances,
                |p, n| p.instances = n,
            );
            emit(fig4::run(&params), &args.out);
        }
        _ => return usage(),
    }

    recorder.set_gauge("repro.elapsed_seconds", started.elapsed().as_secs_f64());
    let trace = args.out.join(format!("telemetry_{}.jsonl", args.target));
    match recorder.write_jsonl(&trace) {
        Ok(()) => eprintln!("  wrote {}", trace.display()),
        Err(e) => eprintln!("  failed to write {}: {e}", trace.display()),
    }

    eprintln!("repro: finished in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
