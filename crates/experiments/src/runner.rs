use crossbeam::channel;

/// Summary statistics over per-instance measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Aggregates a slice of measurements.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn aggregate(values: &[f64]) -> Aggregate {
    assert!(!values.is_empty(), "no measurements to aggregate");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Aggregate {
        mean,
        std: var.sqrt(),
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Runs `job(instance_index)` for every index in `0..instances`, fanned out
/// over worker threads, and returns the results in index order.
///
/// The paper averages every data point over 15 generated networks; this is
/// the loop that produces those 15 runs. Each job receives only its index so
/// callers derive per-instance seeds (`base_seed + index`), keeping results
/// identical regardless of the worker count.
///
/// # Panics
///
/// Propagates panics from the jobs.
pub fn run_parallel<T, F>(instances: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(instances.max(1));
    if workers <= 1 {
        return (0..instances).map(&job).collect();
    }
    let (task_tx, task_rx) = channel::unbounded::<usize>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, T)>();
    for index in 0..instances {
        task_tx.send(index).expect("queue is open");
    }
    drop(task_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let job = &job;
            scope.spawn(move || {
                while let Ok(index) = task_rx.recv() {
                    let value = job(index);
                    result_tx.send((index, value)).expect("result channel open");
                }
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<T>> = (0..instances).map(|_| None).collect();
        while let Ok((index, value)) = result_rx.recv() {
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("all jobs completed"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_statistics() {
        let a = aggregate(&[1.0, 2.0, 3.0, 4.0]);
        assert!((a.mean - 2.5).abs() < 1e-12);
        assert!((a.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let out = run_parallel(20, |i| i * i);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_zero_instances() {
        let out: Vec<u32> = run_parallel(0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
