use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple result table with markdown and CSV renderers.
///
/// # Examples
///
/// ```
/// use drp_experiments::Table;
///
/// let mut t = Table::new("fig-demo", vec!["M".into(), "savings".into()]);
/// t.push_row(vec!["10".into(), "42.5".into()]);
/// assert!(t.to_markdown().contains("| 10 | 42.5 |"));
/// assert!(t.to_csv().starts_with("M,savings"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Identifier used for file names and headings (e.g. `fig1a`).
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row/header length mismatch");
        self.rows.push(row);
    }

    /// Renders a GitHub-flavoured markdown table with a heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.name);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (header + rows). Values are escaped by quoting anything
    /// containing a comma or quote.
    pub fn to_csv(&self) -> String {
        let escape = |value: &str| -> String {
            if value.contains(',') || value.contains('"') || value.contains('\n') {
                format!("\"{}\"", value.replace('"', "\"\""))
            } else {
                value.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|v| escape(v)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float with two decimals (the precision the paper's plots can
/// be read at).
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "x,y".into()]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | x,y |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.contains("1,\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_length_is_enforced() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_file_round_trip() {
        let dir = std::env::temp_dir().join("drp_table_test");
        let path = sample().write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, sample().to_csv());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(1.0 / 3.0), "0.33");
    }
}
