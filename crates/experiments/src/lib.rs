//! Experiment harness reproducing the paper's evaluation (Section 6).
//!
//! Each module under [`figures`] regenerates one group of the paper's plots:
//!
//! | Module | Paper figures | What is swept |
//! |--------|---------------|---------------|
//! | [`figures::fig1`] | 1(a)–1(d) | number of sites / objects; savings and replica counts of SRA vs GRA at U ∈ {2, 5, 10}% |
//! | [`figures::fig2`] | 2(a)–2(b) | number of sites; wall-clock time of SRA and GRA |
//! | [`figures::fig3`] | 3(a)–3(b) | update ratio; site capacity |
//! | [`figures::fig4`] | 4(a)–4(d) | pattern-change experiments: AGRA policies vs static GRA policies |
//!
//! Every experiment averages over several generated networks (the paper uses
//! 15), with deterministic seeds, and emits both a markdown table and a CSV
//! file. The `repro` binary drives everything:
//!
//! ```text
//! cargo run --release -p drp-experiments --bin repro -- all
//! cargo run --release -p drp-experiments --bin repro -- fig1 --full --out results
//! ```
//!
//! The default scale is sized for a small machine; `--full` restores the
//! paper's instance counts and sweep ranges (hours of compute).

pub mod figures;
mod runner;
mod scale;
mod table;

pub use runner::{aggregate, run_parallel, Aggregate};
pub use scale::Scale;
pub use table::Table;
