use drp_algo::{AgraConfig, GraConfig};

/// Experiment scale: the paper's full setup, or a laptop-sized quick run
/// with the same *shape* (same sweeps, smaller instances and fewer repeats).
///
/// Every accessor documents both settings, so EXPERIMENTS.md can state
/// exactly what was run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Trimmed sweeps (default): ~minutes on one core.
    #[default]
    Quick,
    /// The paper's configuration: 15 instances, sites to 100, objects to
    /// 1000, GRA at Np=50 × Ng=80. Hours of compute.
    Full,
}

impl Scale {
    /// Networks generated per data point (paper: 15).
    pub fn instances(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 15,
        }
    }

    /// Site counts swept by Figures 1(a)/1(b)/2(a)/2(b) (objects fixed at
    /// [`Scale::fig1_objects`]).
    pub fn fig1_sites(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![10, 20, 40, 60, 80],
            Scale::Full => vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
        }
    }

    /// Fixed object count for the site sweep (paper: 150).
    pub fn fig1_objects(self) -> usize {
        match self {
            Scale::Quick => 80,
            Scale::Full => 150,
        }
    }

    /// Object counts swept by Figures 1(c)/1(d) (sites fixed at
    /// [`Scale::fig1c_sites`]).
    pub fn fig1c_objects(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![100, 200, 300, 400],
            Scale::Full => vec![100, 200, 300, 400, 500, 600, 700, 800, 900, 1000],
        }
    }

    /// Fixed site count for the object sweep (paper: 100).
    pub fn fig1c_sites(self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Full => 100,
        }
    }

    /// Update ratios (percent) used in Figures 1 and 2 (paper: 2, 5, 10).
    pub fn update_ratios(self) -> Vec<f64> {
        vec![2.0, 5.0, 10.0]
    }

    /// Update ratios swept by Figure 3(a).
    pub fn fig3a_update_ratios(self) -> Vec<f64> {
        vec![0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0]
    }

    /// Capacity percentages swept by Figure 3(b) (paper: 10–30).
    pub fn fig3b_capacities(self) -> Vec<f64> {
        vec![10.0, 15.0, 20.0, 25.0, 30.0]
    }

    /// Instance size for Figure 3 sweeps.
    pub fn fig3_size(self) -> (usize, usize) {
        match self {
            Scale::Quick => (25, 80),
            Scale::Full => (50, 200),
        }
    }

    /// Instance size for the adaptive experiments (paper: M=50, N=200,
    /// U=5%, C=15%).
    pub fn fig4_size(self) -> (usize, usize) {
        match self {
            Scale::Quick => (20, 60),
            Scale::Full => (50, 200),
        }
    }

    /// Percentages of objects changing pattern, swept by Figures 4(a)/(b)/(d).
    pub fn fig4_och(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![10.0, 20.0, 30.0],
            Scale::Full => vec![10.0, 20.0, 30.0, 40.0, 50.0],
        }
    }

    /// Read shares swept by Figure 4(c) (0 = all changes are update surges,
    /// 1 = all are read surges).
    pub fn fig4_read_shares(self) -> Vec<f64> {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    }

    /// The `Ch` surge percentage of the adaptive experiments (paper: 600%).
    pub fn fig4_change_percent(self) -> f64 {
        600.0
    }

    /// GRA configuration (paper: Np=50, Ng=80).
    pub fn gra(self) -> GraConfig {
        match self {
            Scale::Quick => GraConfig {
                population_size: 20,
                generations: 30,
                ..GraConfig::default()
            },
            Scale::Full => GraConfig::default(),
        }
    }

    /// AGRA configuration (paper: Ap=10, Ag=50).
    pub fn agra(self) -> AgraConfig {
        let base = AgraConfig {
            gra: self.gra(),
            ..AgraConfig::default()
        };
        match self {
            Scale::Quick => AgraConfig {
                generations: 25,
                ..base
            },
            Scale::Full => base,
        }
    }

    /// Generations for the `Current + N GRA` and fresh-GRA policies of the
    /// adaptive experiments (paper: 80 and 150).
    pub fn fig4_gra_generations(self) -> (usize, usize) {
        match self {
            Scale::Quick => (30, 60),
            Scale::Full => (80, 150),
        }
    }

    /// Human-readable banner recorded at the top of every report.
    pub fn describe(self) -> String {
        match self {
            Scale::Quick => format!(
                "scale=quick (instances={}, trimmed sweeps — pass --full for the paper's sizes)",
                self.instances()
            ),
            Scale::Full => format!(
                "scale=full (instances={}, paper-sized sweeps)",
                self.instances()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_constants() {
        let s = Scale::Full;
        assert_eq!(s.instances(), 15);
        assert_eq!(s.fig1_objects(), 150);
        assert_eq!(s.fig1c_sites(), 100);
        assert_eq!(*s.fig1c_objects().last().unwrap(), 1000);
        assert_eq!(s.gra().population_size, 50);
        assert_eq!(s.gra().generations, 80);
        assert_eq!(s.agra().population_size, 10);
        assert_eq!(s.fig4_size(), (50, 200));
        assert_eq!(s.fig4_gra_generations(), (80, 150));
        assert_eq!(s.fig4_change_percent(), 600.0);
    }

    #[test]
    fn quick_is_strictly_smaller() {
        let q = Scale::Quick;
        let f = Scale::Full;
        assert!(q.instances() < f.instances());
        assert!(q.fig1_sites().len() < f.fig1_sites().len());
        assert!(q.gra().generations < f.gra().generations);
    }

    #[test]
    fn banners_mention_scale() {
        assert!(Scale::Quick.describe().contains("quick"));
        assert!(Scale::Full.describe().contains("full"));
    }
}
