//! Sharded-vs-flat comparison — a reproduction extension past the paper's
//! sizes.
//!
//! On hierarchical (clustered LAN + WAN) networks the flat GRA and the
//! sharded hierarchical driver solve the *same* instances; this experiment
//! sweeps the site count and reports each side's NTC savings, their ratio,
//! and wall clock. The sharded column keeps working where the dense side
//! of the table would stop fitting in memory.

use std::time::Instant;

use drp_algo::shard::{ShardConfig, ShardedSolver};
use drp_algo::{Gra, GraConfig};
use drp_core::ReplicationAlgorithm;
use drp_workload::{TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Shard-comparison parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Site counts swept (objects fixed).
    pub sites: Vec<usize>,
    /// Objects per instance.
    pub objects: usize,
    /// Update ratio percentage.
    pub update_ratio: f64,
    /// Capacity percentage.
    pub capacity: f64,
    /// Instances averaged per data point.
    pub instances: usize,
    /// GRA settings shared by the flat run and the per-shard runs.
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        let (sites, objects) = match scale {
            Scale::Quick => (vec![120, 240], 16),
            Scale::Full => (vec![300, 600, 1000], 60),
        };
        Self {
            sites,
            objects,
            update_ratio: 5.0,
            capacity: 30.0,
            instances: scale.instances(),
            gra: GraConfig {
                population_size: 16,
                generations: 24,
                ..GraConfig::default()
            },
            seed,
        }
    }
}

/// Clusters scale with the network: one per ~60 sites, at least two.
fn cluster_count(m: usize) -> usize {
    (m / 60).max(2)
}

/// Runs the comparison: one row per site count.
pub fn run(params: &Params) -> Vec<Table> {
    let n = params.objects;
    let mut table = Table::new(
        "shard_vs_flat_gra",
        vec![
            "M".into(),
            "K".into(),
            "flat sav%".into(),
            "shard sav%".into(),
            "NTC ratio".into(),
            "flat s".into(),
            "shard s".into(),
        ],
    );
    for &m in &params.sites {
        let clusters = cluster_count(m);
        let mut spec = WorkloadSpec::paper(m, n, params.update_ratio, params.capacity);
        spec.topology = TopologyKind::Hierarchical {
            clusters,
            wan_factor: 10,
        };
        let gra_config = params.gra.clone();
        let runs = run_parallel(params.instances, |instance| {
            let seed = mix_seed(&[params.seed, 0x5a4d, m as u64, instance as u64]);
            let sp = spec
                .generate_sparse(&mut StdRng::seed_from_u64(seed))
                .expect("valid spec");
            let dense = sp.to_dense().expect("dense view builds");

            let start = Instant::now();
            let flat_scheme = Gra::with_config(gra_config.clone())
                .solve(&dense, &mut StdRng::seed_from_u64(seed))
                .expect("flat GRA solves");
            let flat_secs = start.elapsed().as_secs_f64();
            let flat_ntc = dense.total_cost(&flat_scheme);

            let start = Instant::now();
            let outcome = ShardedSolver::with_config(ShardConfig {
                shards: clusters,
                gra: gra_config.clone(),
                ..ShardConfig::default()
            })
            .solve(&sp, seed)
            .expect("sharded driver solves");
            let shard_secs = start.elapsed().as_secs_f64();

            (
                dense.savings_percent(&flat_scheme),
                outcome.savings_percent(),
                outcome.ntc as f64 / flat_ntc as f64,
                flat_secs,
                shard_secs,
            )
        });
        let mean = |pick: fn(&(f64, f64, f64, f64, f64)) -> f64| -> f64 {
            aggregate(&runs.iter().map(pick).collect::<Vec<_>>()).mean
        };
        table.push_row(vec![
            m.to_string(),
            clusters.to_string(),
            fmt2(mean(|r| r.0)),
            fmt2(mean(|r| r.1)),
            format!("{:.4}", mean(|r| r.2)),
            format!("{:.4}", mean(|r| r.3)),
            format!("{:.4}", mean(|r| r.4)),
        ]);
        eprintln!("  [shard] M={m} done");
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_runs_and_keeps_parity() {
        let params = Params {
            sites: vec![60],
            objects: 8,
            instances: 2,
            gra: GraConfig {
                population_size: 8,
                generations: 8,
                ..GraConfig::default()
            },
            ..Params::from_scale(Scale::Quick, 5)
        };
        let tables = run(&params);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 1);
        let ratio: f64 = tables[0].rows[0][4].parse().unwrap();
        assert!(
            ratio <= 1.5,
            "sharded should stay in the flat GRA's neighborhood: {ratio}"
        );
    }
}
