//! Figures 4(a)–4(d): the adaptive experiments.
//!
//! A static GRA solution ("last night's scheme") faces a read/write pattern
//! change of `Ch = 600%` on `OCh%` of the objects, and seven policies
//! compete on the *new* pattern:
//!
//! 1. **Current** — keep the stale scheme;
//! 2. **Current+AGRA** — stand-alone AGRA (micro-GAs + transcription);
//! 3. **AGRA+5GRA** — AGRA followed by a 5-generation mini-GRA;
//! 4. **AGRA+10GRA** — AGRA followed by a 10-generation mini-GRA;
//! 5. **Current+80GRA** — plain GRA warm-started from the stale population;
//! 6. **Current+150GRA** — ditto with more generations;
//! 7. **150GRA** — a fresh GRA from scratch (the expensive gold standard).
//!
//! Paper shape to look for: the stale scheme collapses under update surges;
//! AGRA variants recover most of the fresh GRA's quality (within ~1% when
//! reads surge) at 1.5–2 orders of magnitude less time; `OCh` barely moves
//! AGRA's cost.

use std::time::Instant;

use drp_algo::{encode_scheme, Agra, AgraConfig, Gra, GraConfig};
use drp_core::{ObjectId, Problem, ReplicationScheme};
use drp_ga::BitString;
use drp_workload::{PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Adaptive-experiment parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape `(M, N)` (paper: 50 × 200).
    pub size: (usize, usize),
    /// Update ratio and capacity of the base workload (paper: 5%, 15%).
    pub update_ratio: f64,
    /// Capacity percentage.
    pub capacity: f64,
    /// Surge percentage `Ch` (paper: 600%).
    pub change_percent: f64,
    /// `OCh` sweep values for Figures 4(a)/(b)/(d).
    pub och_values: Vec<f64>,
    /// Read-share sweep for Figure 4(c).
    pub read_shares: Vec<f64>,
    /// `OCh` fixed during the Figure 4(c) sweep.
    pub och_for_4c: f64,
    /// Instances averaged per data point.
    pub instances: usize,
    /// GRA settings shared by the static policies and AGRA's mini-GRA.
    pub gra: GraConfig,
    /// AGRA settings (mini-GRA generations are overridden per policy).
    pub agra: AgraConfig,
    /// Generations for the warm-start GRA policies (paper: 80 and 150).
    pub gra_generations: (usize, usize),
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        let och = scale.fig4_och();
        let och_for_4c = och[och.len() / 2];
        Self {
            size: scale.fig4_size(),
            update_ratio: 5.0,
            capacity: 15.0,
            change_percent: scale.fig4_change_percent(),
            och_values: och,
            read_shares: scale.fig4_read_shares(),
            och_for_4c,
            instances: scale.instances(),
            gra: scale.gra(),
            agra: scale.agra(),
            gra_generations: scale.fig4_gra_generations(),
            seed,
        }
    }

    /// Policy column labels (generation counts reflect the actual
    /// parameters, so quick-scale tables do not mislead).
    pub fn policy_names(&self) -> Vec<String> {
        let (g1, g2) = self.gra_generations;
        vec![
            "Current".into(),
            "Current+AGRA".into(),
            "AGRA+5GRA".into(),
            "AGRA+10GRA".into(),
            format!("Current+{g1}GRA"),
            format!("Current+{g2}GRA"),
            format!("{g2}GRA"),
        ]
    }
}

/// Savings (% of the new pattern's `D_prime`) and wall-clock of one policy.
#[derive(Debug, Clone, Copy)]
struct PolicyResult {
    savings: f64,
    seconds: f64,
}

/// Evaluates all seven policies on one pattern shift.
#[allow(clippy::too_many_arguments)]
fn evaluate_policies(
    params: &Params,
    new_problem: &Problem,
    base_scheme: &ReplicationScheme,
    base_population: &[BitString],
    changed: &[ObjectId],
    rng: &mut StdRng,
) -> Vec<PolicyResult> {
    let mut results = Vec::with_capacity(7);

    // 1. Current: no work, stale savings.
    results.push(PolicyResult {
        savings: new_problem.savings_percent(base_scheme),
        seconds: 0.0,
    });

    // 2–4. AGRA with 0 / 5 / 10 mini-GRA generations.
    for mini in [0usize, 5, 10] {
        let config = AgraConfig {
            mini_gra_generations: mini,
            gra: params.gra.clone(),
            ..params.agra.clone()
        };
        let start = Instant::now();
        let outcome = Agra::with_config(config)
            .adapt(new_problem, base_scheme, base_population, changed, rng)
            .expect("AGRA adapts valid instances");
        results.push(PolicyResult {
            savings: new_problem.savings_percent(&outcome.scheme),
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    // 5–6. Warm-start GRA from the stale population (current scheme kept in
    // slot 0, as the monitor would).
    let (g1, g2) = params.gra_generations;
    for generations in [g1, g2] {
        let mut population = base_population.to_vec();
        if population.is_empty() {
            population.push(encode_scheme(new_problem, base_scheme));
        } else {
            population[0] = encode_scheme(new_problem, base_scheme);
        }
        let start = Instant::now();
        let run = Gra::with_config(params.gra.clone())
            .evolve(new_problem, population, generations, rng)
            .expect("warm-start GRA runs");
        results.push(PolicyResult {
            savings: new_problem.savings_percent(&run.scheme),
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    // 7. Fresh GRA from scratch.
    let config = GraConfig {
        generations: g2,
        ..params.gra.clone()
    };
    let start = Instant::now();
    let run = Gra::with_config(config)
        .solve_detailed(new_problem, rng)
        .expect("fresh GRA runs");
    results.push(PolicyResult {
        savings: new_problem.savings_percent(&run.scheme),
        seconds: start.elapsed().as_secs_f64(),
    });

    results
}

/// Scenario grid: for each `(och, read_share)` pair, the per-policy results
/// averaged over instances.
fn sweep(params: &Params, scenarios: &[(f64, f64)], tag: u64) -> Vec<Vec<PolicyResult>> {
    let per_instance: Vec<Vec<Vec<PolicyResult>>> = run_parallel(params.instances, |instance| {
        let seed = mix_seed(&[params.seed, tag, instance as u64]);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = WorkloadSpec::paper(
            params.size.0,
            params.size.1,
            params.update_ratio,
            params.capacity,
        );
        let problem = spec.generate(&mut rng).expect("valid spec");

        // "Night-time" static solution the network currently runs.
        let base = Gra::with_config(params.gra.clone())
            .solve_detailed(&problem, &mut rng)
            .expect("base GRA runs");
        let base_population: Vec<BitString> = base
            .outcome
            .final_population
            .iter()
            .map(|(c, _)| c.clone())
            .collect();

        scenarios
            .iter()
            .map(|&(och, share)| {
                let change = PatternChange {
                    change_percent: params.change_percent,
                    objects_percent: och,
                    read_share: share,
                };
                let shift = change.apply(&problem, &mut rng).expect("valid change");
                let changed: Vec<ObjectId> = shift.changed.iter().map(|(k, _)| *k).collect();
                evaluate_policies(
                    params,
                    &shift.problem,
                    &base.scheme,
                    &base_population,
                    &changed,
                    &mut rng,
                )
            })
            .collect()
    });

    // Average across instances.
    (0..scenarios.len())
        .map(|s| {
            (0..7)
                .map(|p| {
                    let savings: Vec<f64> =
                        per_instance.iter().map(|inst| inst[s][p].savings).collect();
                    let seconds: Vec<f64> =
                        per_instance.iter().map(|inst| inst[s][p].seconds).collect();
                    PolicyResult {
                        savings: aggregate(&savings).mean,
                        seconds: aggregate(&seconds).mean,
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs all four adaptive figures: `[fig4a, fig4b, fig4c, fig4d]`.
pub fn run(params: &Params) -> Vec<Table> {
    let policies = params.policy_names();
    let header = |first: &str| -> Vec<String> {
        std::iter::once(first.to_string())
            .chain(policies.iter().cloned())
            .collect()
    };

    // Figure 4(a): reads surge; 4(d): the same runs' timing.
    let read_scenarios: Vec<(f64, f64)> = params.och_values.iter().map(|&och| (och, 1.0)).collect();
    let read_results = sweep(params, &read_scenarios, 0x4a);
    eprintln!("  [fig4a/d] read-surge sweep done");

    let mut fig4a = Table::new("fig4a_savings_vs_och_reads_increase", header("OCh%"));
    let mut fig4d = Table::new("fig4d_time_vs_och_seconds", header("OCh%"));
    for (row, &(och, _)) in read_results.iter().zip(&read_scenarios) {
        fig4a.push_row(
            std::iter::once(och.to_string())
                .chain(row.iter().map(|r| fmt2(r.savings)))
                .collect(),
        );
        fig4d.push_row(
            std::iter::once(och.to_string())
                .chain(row.iter().map(|r| format!("{:.4}", r.seconds)))
                .collect(),
        );
    }

    // Figure 4(b): updates surge.
    let write_scenarios: Vec<(f64, f64)> =
        params.och_values.iter().map(|&och| (och, 0.0)).collect();
    let write_results = sweep(params, &write_scenarios, 0x4b);
    eprintln!("  [fig4b] update-surge sweep done");
    let mut fig4b = Table::new("fig4b_savings_vs_och_updates_increase", header("OCh%"));
    for (row, &(och, _)) in write_results.iter().zip(&write_scenarios) {
        fig4b.push_row(
            std::iter::once(och.to_string())
                .chain(row.iter().map(|r| fmt2(r.savings)))
                .collect(),
        );
    }

    // Figure 4(c): the read/update mix sweep at fixed OCh.
    let mix_scenarios: Vec<(f64, f64)> = params
        .read_shares
        .iter()
        .map(|&share| (params.och_for_4c, share))
        .collect();
    let mix_results = sweep(params, &mix_scenarios, 0x4c);
    eprintln!("  [fig4c] mix sweep done");
    let mut fig4c = Table::new("fig4c_savings_vs_pattern_mix", header("reads share"));
    for (row, &(_, share)) in mix_results.iter().zip(&mix_scenarios) {
        fig4c.push_row(
            std::iter::once(format!("{share}"))
                .chain(row.iter().map(|r| fmt2(r.savings)))
                .collect(),
        );
    }

    vec![fig4a, fig4b, fig4c, fig4d]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            size: (8, 12),
            update_ratio: 5.0,
            capacity: 20.0,
            change_percent: 400.0,
            och_values: vec![25.0],
            read_shares: vec![0.0, 1.0],
            och_for_4c: 25.0,
            instances: 2,
            gra: GraConfig {
                population_size: 6,
                generations: 4,
                ..GraConfig::default()
            },
            agra: AgraConfig {
                population_size: 6,
                generations: 6,
                gra: GraConfig {
                    population_size: 6,
                    generations: 4,
                    ..GraConfig::default()
                },
                ..AgraConfig::default()
            },
            gra_generations: (4, 8),
            seed: 11,
        }
    }

    #[test]
    fn produces_all_four_tables() {
        let tables = run(&tiny());
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].columns.len(), 8); // OCh + 7 policies
        assert_eq!(tables[0].rows.len(), 1);
        assert_eq!(tables[2].rows.len(), 2);
        assert_eq!(tables[3].rows.len(), 1);
    }

    #[test]
    fn agra_never_loses_to_current() {
        let tables = run(&tiny());
        for table in &tables[..3] {
            for row in &table.rows {
                let current: f64 = row[1].parse().unwrap();
                let agra: f64 = row[2].parse().unwrap();
                assert!(
                    agra >= current - 1e-6,
                    "Current+AGRA ({agra}) fell below Current ({current})"
                );
            }
        }
    }

    #[test]
    fn policy_labels_match_generation_counts() {
        let names = tiny().policy_names();
        assert_eq!(names[4], "Current+4GRA");
        assert_eq!(names[6], "8GRA");
    }
}
