//! GRA design ablations — a reproduction extension.
//!
//! The paper motivates several design choices (stochastic-remainder
//! selection, enlarged `(μ+λ)` sampling, two-point crossover, periodic
//! elitism) but evaluates only the final design. This experiment isolates
//! each choice: every variant differs from the paper configuration in
//! exactly one knob, plus two single-solution metaheuristics (hill climbing
//! and simulated annealing) as non-population references.

use drp_algo::annealing::SimulatedAnnealing;
use drp_algo::baselines::HillClimb;
use drp_algo::{CrossoverOp, Gra, GraConfig, Sra};
use drp_core::ReplicationAlgorithm;
use drp_ga::{SamplingSpace, SelectionScheme};
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Ablation parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape `(M, N)`.
    pub size: (usize, usize),
    /// Update ratio, percent.
    pub update_ratio: f64,
    /// Capacity percentage.
    pub capacity: f64,
    /// Instances averaged.
    pub instances: usize,
    /// The reference GRA configuration the variants deviate from.
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: scale.fig3_size(),
            update_ratio: 5.0,
            capacity: 15.0,
            instances: scale.instances(),
            gra: scale.gra(),
            seed,
        }
    }
}

struct Variant {
    name: &'static str,
    solver: Box<dyn ReplicationAlgorithm + Sync>,
}

fn variants(base: &GraConfig) -> Vec<Variant> {
    let gra = |config: GraConfig| -> Box<dyn ReplicationAlgorithm + Sync> {
        Box::new(Gra::with_config(config))
    };
    vec![
        Variant {
            name: "GRA (paper)",
            solver: gra(base.clone()),
        },
        Variant {
            name: "one-point crossover",
            solver: gra(GraConfig {
                crossover_op: CrossoverOp::OnePoint,
                ..base.clone()
            }),
        },
        Variant {
            name: "uniform crossover",
            solver: gra(GraConfig {
                crossover_op: CrossoverOp::Uniform,
                ..base.clone()
            }),
        },
        Variant {
            name: "roulette selection",
            solver: gra(GraConfig {
                selection: SelectionScheme::Roulette,
                ..base.clone()
            }),
        },
        Variant {
            name: "tournament selection",
            solver: gra(GraConfig {
                selection: SelectionScheme::Tournament { size: 3 },
                ..base.clone()
            }),
        },
        Variant {
            name: "regular sampling",
            solver: gra(GraConfig {
                sampling: SamplingSpace::Regular,
                ..base.clone()
            }),
        },
        Variant {
            name: "no elitism",
            solver: gra(GraConfig {
                elite_period: 0,
                ..base.clone()
            }),
        },
        Variant {
            name: "no seed perturbation",
            solver: gra(GraConfig {
                seed_perturbation: 0.0,
                ..base.clone()
            }),
        },
        Variant {
            name: "SRA",
            solver: Box::new(Sra::new()),
        },
        Variant {
            name: "hill climbing",
            solver: Box::new(HillClimb::default()),
        },
        Variant {
            name: "simulated annealing",
            solver: Box::new(SimulatedAnnealing::default()),
        },
    ]
}

/// Runs the ablation study, returning one table.
pub fn run(params: &Params) -> Vec<Table> {
    let (m, n) = params.size;
    let spec = WorkloadSpec::paper(m, n, params.update_ratio, params.capacity);
    let all = variants(&params.gra);
    let mut table = Table::new(
        "ablation_gra_design_choices",
        vec![
            "variant".into(),
            "savings %".into(),
            "std".into(),
            "replicas".into(),
            "time (s)".into(),
        ],
    );
    for variant in &all {
        let runs = run_parallel(params.instances, |instance| {
            let seed = mix_seed(&[params.seed, 0xab1a, instance as u64]);
            let mut rng = StdRng::seed_from_u64(seed);
            let problem = spec.generate(&mut rng).expect("valid spec");
            let (scheme, report) = variant
                .solver
                .solve_report(&problem, &mut rng)
                .expect("solver runs");
            (
                report.savings_percent,
                scheme.extra_replica_count() as f64,
                report.elapsed,
            )
        });
        let savings: Vec<f64> = runs.iter().map(|r| r.0).collect();
        let replicas: Vec<f64> = runs.iter().map(|r| r.1).collect();
        let seconds: Vec<f64> = runs.iter().map(|r| r.2.as_secs_f64()).collect();
        let s = aggregate(&savings);
        table.push_row(vec![
            variant.name.to_string(),
            fmt2(s.mean),
            fmt2(s.std),
            fmt2(aggregate(&replicas).mean),
            format!("{:.4}", aggregate(&seconds).mean),
        ]);
        eprintln!("  [ablation] {} done", variant.name);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_variants() {
        let params = Params {
            size: (6, 8),
            update_ratio: 5.0,
            capacity: 20.0,
            instances: 1,
            gra: GraConfig {
                population_size: 6,
                generations: 3,
                ..GraConfig::default()
            },
            seed: 1,
        };
        let tables = run(&params);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 11);
        // Every variant produced a parseable savings figure ≥ 0.
        for row in &tables[0].rows {
            let savings: f64 = row[1].parse().unwrap();
            assert!(savings >= 0.0, "{}", row[0]);
        }
    }
}
