//! Online adaptation study — the closed-loop extension.
//!
//! The paper's Section 5 motivates AGRA with a drifting access pattern but
//! evaluates it offline, one re-optimization at a time. This experiment
//! closes the loop with `drp_serve`: a long-running service streams timed
//! requests through the simulator epoch by epoch while the true pattern
//! drifts, and three policies compete on the *measured* bill — serving NTC
//! plus the migration NTC their adaptations cost:
//!
//! * **static** — the bootstrap GRA scheme, frozen;
//! * **monitor** — windowed statistics into the replication monitor (AGRA
//!   by day, full GRA every `night_every`-th boundary);
//! * **adr** — the ADR tree heuristic re-solved on every window.
//!
//! All three run on the same tree topology (ADR is only defined on trees)
//! and the same seeds, so they serve byte-identical traffic and differ
//! only in how they adapt.

use std::sync::Arc;

use drp_core::telemetry::{self, Recorder};
use drp_serve::{run_service_recorded, run_service_with_oracle, Policy, ServeConfig};
use drp_workload::{PatternChange, Scenario, TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Adaptation-study parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape.
    pub size: (usize, usize),
    /// Serving epochs per run.
    pub epochs: usize,
    /// Simulated time units per epoch.
    pub period: u64,
    /// Pattern drift applied before every epoch after the first.
    pub drift: PatternChange,
    /// Every k-th boundary is a nightly GRA rebuild (monitor policy only).
    pub night_every: usize,
    /// Capacity percentage.
    pub capacity: f64,
    /// Instances per policy.
    pub instances: usize,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: match scale {
                Scale::Quick => (7, 10),
                Scale::Full => (15, 25),
            },
            epochs: match scale {
                Scale::Quick => 3,
                Scale::Full => 6,
            },
            period: 256,
            drift: PatternChange {
                change_percent: 500.0,
                objects_percent: 40.0,
                read_share: 0.9,
            },
            night_every: 3,
            capacity: 35.0,
            instances: scale.instances(),
            seed,
        }
    }
}

/// `(label, policy, hot fast path)` rows of the study. `monitor+hot`
/// runs the same monitor policy with the windowed hot-object detector
/// issuing capacity-checked replica boosts between retunes; every boost
/// must pay for its own fetch, so its total NTC can only improve on
/// plain `monitor`.
const VARIANTS: [(&str, Policy, bool); 4] = [
    ("static", Policy::Static, false),
    ("monitor", Policy::Monitor, false),
    ("monitor+hot", Policy::Monitor, true),
    ("adr", Policy::Adr, false),
];

/// `(label, policy, hot fast path)` rows of the policy × scenario matrix.
/// The predictive policies run with the hot fast path enabled — forecast
/// pre-staging of replica boosts is part of the predictive family.
const MATRIX_POLICIES: [(&str, Policy, bool); 5] = [
    ("monitor", Policy::Monitor, false),
    ("static", Policy::Static, false),
    ("monitor+hot", Policy::Monitor, true),
    ("predictive-ewma", Policy::PredictiveEwma, true),
    ("predictive-regression", Policy::PredictiveRegression, true),
];

/// Runs the adaptation study: cumulative NTC per policy under drift, then
/// the policy × scenario matrix scored against the offline oracle.
pub fn run(params: &Params) -> Vec<Table> {
    run_recorded(params, telemetry::noop())
}

/// [`run`] with a telemetry recorder observing every service run (one
/// `adapt.policy` span per policy plus the `serve.*` telemetry of every
/// epoch).
pub fn run_recorded(params: &Params, recorder: Arc<dyn Recorder>) -> Vec<Table> {
    vec![
        drift_table(params, Arc::clone(&recorder)),
        matrix_table(params, recorder),
    ]
}

/// The original drift study: cumulative NTC per policy under uniform drift.
fn drift_table(params: &Params, recorder: Arc<dyn Recorder>) -> Table {
    let (m, n) = params.size;
    let mut spec = WorkloadSpec::paper(m, n, 6.0, params.capacity);
    spec.topology = TopologyKind::Tree { arity: 2 };
    let mut table = Table::new(
        "online_adaptation_vs_drift",
        vec![
            "policy".into(),
            "serving NTC".into(),
            "migration NTC".into(),
            "total NTC".into(),
            "vs static %".into(),
            "adaptations".into(),
            "rebuilds".into(),
            "moves".into(),
            "stale reads".into(),
            "hot promos".into(),
        ],
    );
    let mut static_total = None;
    for (label, policy, hot) in VARIANTS {
        let _point = telemetry::span(recorder.as_ref(), "adapt.policy");
        let runs = run_parallel(params.instances, |instance| {
            let seed = mix_seed(&[params.seed, 0xADA7, instance as u64]);
            let mut rng = StdRng::seed_from_u64(seed);
            let problem = spec.generate(&mut rng).expect("valid spec");
            let config = ServeConfig {
                policy,
                epochs: params.epochs,
                period: params.period,
                seed,
                night_every: params.night_every,
                drift: Some(params.drift),
                hot: hot.then(drp_serve::HotKeyConfig::default),
                ..ServeConfig::default()
            };
            let report =
                run_service_recorded(&problem, &config, Arc::clone(&recorder)).expect("serve runs");
            let t = report.totals;
            [
                t.serving_ntc as f64,
                t.migration_ntc as f64,
                t.total_ntc as f64,
                t.adaptations as f64,
                t.rebuilds as f64,
                t.migration_moves as f64,
                t.reads_stale as f64,
                t.hot_promotions as f64,
            ]
        });
        let mean = |metric: usize| {
            let values: Vec<f64> = runs.iter().map(|r| r[metric]).collect();
            aggregate(&values).mean
        };
        let total = mean(2);
        let baseline = *static_total.get_or_insert(total);
        table.push_row(vec![
            label.into(),
            fmt2(mean(0)),
            fmt2(mean(1)),
            fmt2(total),
            fmt2(100.0 * total / baseline.max(1.0)),
            fmt2(mean(3)),
            fmt2(mean(4)),
            fmt2(mean(5)),
            fmt2(mean(6)),
            fmt2(mean(7)),
        ]);
        eprintln!("  [adapt] policy {label} done");
    }
    table
}

/// The policy × scenario matrix: every adaptation policy on every named
/// scenario, each run scored against the offline-optimal replay oracle.
/// The `offline-opt` row anchors each scenario block at OPT itself
/// (competitive ratio 1.0 by definition), taken from the monitor cell's
/// oracle.
fn matrix_table(params: &Params, recorder: Arc<dyn Recorder>) -> Table {
    let (m, n) = params.size;
    let mut spec = WorkloadSpec::paper(m, n, 6.0, params.capacity);
    spec.topology = TopologyKind::Tree { arity: 2 };
    let mut table = Table::new(
        "policy_x_scenario_competitive",
        vec![
            "scenario".into(),
            "policy".into(),
            "serving NTC".into(),
            "migration NTC".into(),
            "total NTC".into(),
            "vs monitor %".into(),
            "competitive ratio".into(),
            "adaptations".into(),
            "rebuilds".into(),
        ],
    );
    for scenario in Scenario::ALL {
        let _point = telemetry::span(recorder.as_ref(), "adapt.scenario");
        let mut monitor_total = None;
        let mut monitor_opt = 0.0f64;
        for (label, policy, hot) in MATRIX_POLICIES {
            let runs = run_parallel(params.instances, |instance| {
                let seed = mix_seed(&[params.seed, 0xADA7, instance as u64]);
                let mut rng = StdRng::seed_from_u64(seed);
                let problem = spec.generate(&mut rng).expect("valid spec");
                let config = ServeConfig {
                    policy,
                    epochs: params.epochs,
                    period: params.period,
                    seed,
                    night_every: params.night_every,
                    scenario: Some(scenario),
                    hot: hot.then(drp_serve::HotKeyConfig::default),
                    ..ServeConfig::default()
                };
                let (report, oracle) =
                    run_service_with_oracle(&problem, &config).expect("serve runs");
                let t = report.totals;
                [
                    t.serving_ntc as f64,
                    t.migration_ntc as f64,
                    t.total_ntc as f64,
                    oracle.competitive_ratio,
                    t.adaptations as f64,
                    t.rebuilds as f64,
                    oracle.opt_ntc as f64,
                ]
            });
            let mean = |metric: usize| {
                let values: Vec<f64> = runs.iter().map(|r| r[metric]).collect();
                aggregate(&values).mean
            };
            let total = mean(2);
            if label == "monitor" {
                monitor_total = Some(total);
                monitor_opt = mean(6);
            }
            let baseline = monitor_total.unwrap_or(total);
            table.push_row(vec![
                scenario.name().into(),
                label.into(),
                fmt2(mean(0)),
                fmt2(mean(1)),
                fmt2(total),
                fmt2(100.0 * total / baseline.max(1.0)),
                fmt2(mean(3)),
                fmt2(mean(4)),
                fmt2(mean(5)),
            ]);
            eprintln!("  [adapt] scenario {} policy {label} done", scenario.name());
        }
        table.push_row(vec![
            scenario.name().into(),
            "offline-opt".into(),
            "-".into(),
            "-".into(),
            fmt2(monitor_opt),
            fmt2(100.0 * monitor_opt / monitor_total.unwrap_or(monitor_opt).max(1.0)),
            fmt2(1.0),
            "-".into(),
            "-".into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Params {
        Params {
            size: (7, 8),
            epochs: 3,
            period: 128,
            drift: PatternChange {
                change_percent: 600.0,
                objects_percent: 50.0,
                read_share: 0.9,
            },
            night_every: 0,
            capacity: 35.0,
            instances: 2,
            seed: 2,
        }
    }

    #[test]
    fn adaptive_policies_beat_the_frozen_baseline() {
        let table = drift_table(&tiny_params(), telemetry::noop());
        let rows = &table.rows;
        assert_eq!(rows.len(), 4);
        let total = |row: &[String]| -> f64 { row[3].parse().unwrap() };
        let static_total = total(&rows[0]);
        let monitor_total = total(&rows[1]);
        let hot_total = total(&rows[2]);
        assert_eq!(rows[0][0], "static");
        assert_eq!(rows[1][0], "monitor");
        assert_eq!(rows[2][0], "monitor+hot");
        assert_eq!(rows[3][0], "adr");
        assert!(
            monitor_total < static_total,
            "monitor {monitor_total} must beat static {static_total} under drift"
        );
        assert!(
            hot_total <= monitor_total,
            "the hot fast path billed {hot_total} vs plain monitor {monitor_total}"
        );
        assert!(
            rows[1][5].parse::<f64>().unwrap() > 0.0,
            "drift this strong must trigger adaptations"
        );
        // The relative column anchors at the frozen baseline.
        assert_eq!(rows[0][4], "100.00");
    }

    #[test]
    fn matrix_covers_every_scenario_and_ratios_stay_feasible() {
        let params = Params {
            instances: 1,
            epochs: 2,
            size: (6, 7),
            ..tiny_params()
        };
        let table = matrix_table(&params, telemetry::noop());
        // 5 policies + the offline-opt anchor per scenario.
        assert_eq!(table.rows.len(), Scenario::ALL.len() * 6);
        for row in &table.rows {
            let ratio: f64 = row[6].parse().unwrap();
            assert!(
                ratio >= 1.0,
                "competitive ratio must be >= 1.0, got {ratio} for {}/{}",
                row[0],
                row[1]
            );
        }
        // Every scenario block anchors its OPT row at ratio 1.0.
        for block in table.rows.chunks(6) {
            assert_eq!(block[0][1], "monitor");
            assert_eq!(block[5][1], "offline-opt");
            assert_eq!(block[5][6], "1.00");
            // "vs monitor %" anchors at the reactive monitor.
            assert_eq!(block[0][5], "100.00");
        }
    }
}
