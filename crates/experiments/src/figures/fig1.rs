//! Figures 1(a)–1(d) and the timing data of Figures 2(a)–2(b).
//!
//! * **1(a)** — % NTC saving vs number of sites (N fixed, U ∈ {2, 5, 10}%).
//! * **1(b)** — replicas created vs number of sites.
//! * **1(c)** — % NTC saving vs number of objects (M fixed).
//! * **1(d)** — replicas created vs number of objects.
//! * **2(a)/2(b)** — SRA / GRA wall-clock vs number of sites (same runs).
//!
//! Paper shape to look for: GRA ≥ SRA everywhere; GRA's savings stay almost
//! flat as M or N grow while SRA's decline; GRA's replica count grows with M
//! (exploiting the added capacity) while SRA's stays flat; GRA pays orders
//! of magnitude more time.

use std::sync::Arc;

use drp_algo::{Gra, GraConfig, Sra};
use drp_core::telemetry::{self, Recorder};
use drp_core::ReplicationAlgorithm;
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Sweep parameters; [`Params::from_scale`] derives the reproduction
/// defaults, tests hand-build tiny ones.
#[derive(Debug, Clone)]
pub struct Params {
    /// Site counts for the site sweep (Figures 1(a)/(b), 2(a)/(b)).
    pub sites: Vec<usize>,
    /// Fixed object count for the site sweep.
    pub objects_fixed: usize,
    /// Object counts for the object sweep (Figures 1(c)/(d)).
    pub objects: Vec<usize>,
    /// Fixed site count for the object sweep.
    pub sites_fixed: usize,
    /// Update ratios, percent.
    pub update_ratios: Vec<f64>,
    /// Capacity percentage (the paper fixes C=15%).
    pub capacity_percent: f64,
    /// Instances averaged per data point.
    pub instances: usize,
    /// GRA settings.
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            sites: scale.fig1_sites(),
            objects_fixed: scale.fig1_objects(),
            objects: scale.fig1c_objects(),
            sites_fixed: scale.fig1c_sites(),
            update_ratios: scale.update_ratios(),
            capacity_percent: 15.0,
            instances: scale.instances(),
            gra: scale.gra(),
            seed,
        }
    }
}

/// Per-(data point, algorithm) aggregate.
struct PointMetrics {
    savings: f64,
    replicas: f64,
    seconds: f64,
}

/// Measures SRA and GRA on `instances` fresh networks of the given shape.
///
/// The `recorder` observes every GRA run of the point (generation spans,
/// evaluation counters) and closes one `fig1.point` span per data point;
/// a disarmed recorder leaves the timing columns untouched.
fn measure_point(
    params: &Params,
    m: usize,
    n: usize,
    u: f64,
    tag: u64,
    recorder: &Arc<dyn Recorder>,
) -> [PointMetrics; 2] {
    let _point = telemetry::span(recorder.as_ref(), "fig1.point");
    let spec = WorkloadSpec::paper(m, n, u, params.capacity_percent);
    let gra_config = params.gra.clone();
    let runs = run_parallel(params.instances, |instance| {
        let seed = mix_seed(&[
            params.seed,
            tag,
            m as u64,
            n as u64,
            u.to_bits(),
            instance as u64,
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = spec.generate(&mut rng).expect("valid spec");
        let (sra_scheme, sra_report) = Sra::new()
            .solve_report(&problem, &mut rng)
            .expect("SRA cannot fail on a valid instance");
        let (gra_scheme, gra_report) = Gra::with_config(gra_config.clone())
            .with_recorder(Arc::clone(recorder))
            .solve_report(&problem, &mut rng)
            .expect("GRA cannot fail on a valid instance");
        [
            (
                sra_report.savings_percent,
                sra_scheme.extra_replica_count() as f64,
                sra_report.elapsed.as_secs_f64(),
            ),
            (
                gra_report.savings_percent,
                gra_scheme.extra_replica_count() as f64,
                gra_report.elapsed.as_secs_f64(),
            ),
        ]
    });
    [0usize, 1].map(|algo| {
        let savings: Vec<f64> = runs.iter().map(|r| r[algo].0).collect();
        let replicas: Vec<f64> = runs.iter().map(|r| r[algo].1).collect();
        let seconds: Vec<f64> = runs.iter().map(|r| r[algo].2).collect();
        PointMetrics {
            savings: aggregate(&savings).mean,
            replicas: aggregate(&replicas).mean,
            seconds: aggregate(&seconds).mean,
        }
    })
}

fn sweep_columns(first: &str, update_ratios: &[f64]) -> Vec<String> {
    let mut columns = vec![first.to_string()];
    for algo in ["SRA", "GRA"] {
        for &u in update_ratios {
            columns.push(format!("{algo} U={u}%"));
        }
    }
    columns
}

/// The site sweep: returns `[fig1a, fig1b, fig2a, fig2b]`.
pub fn sites_sweep(params: &Params) -> [Table; 4] {
    sites_sweep_recorded(params, telemetry::noop())
}

/// [`sites_sweep`] with a telemetry recorder observing every GRA run.
pub fn sites_sweep_recorded(params: &Params, recorder: Arc<dyn Recorder>) -> [Table; 4] {
    let mut fig1a = Table::new(
        "fig1a_savings_vs_sites",
        sweep_columns("sites", &params.update_ratios),
    );
    let mut fig1b = Table::new(
        "fig1b_replicas_vs_sites",
        sweep_columns("sites", &params.update_ratios),
    );
    let mut fig2a = Table::new(
        "fig2a_sra_time_vs_sites",
        std::iter::once("sites".to_string())
            .chain(
                params
                    .update_ratios
                    .iter()
                    .map(|u| format!("SRA U={u}% (s)")),
            )
            .collect(),
    );
    let mut fig2b = Table::new(
        "fig2b_gra_time_vs_sites",
        std::iter::once("sites".to_string())
            .chain(
                params
                    .update_ratios
                    .iter()
                    .map(|u| format!("GRA U={u}% (s)")),
            )
            .collect(),
    );
    for &m in &params.sites {
        let per_u: Vec<[PointMetrics; 2]> = params
            .update_ratios
            .iter()
            .map(|&u| measure_point(params, m, params.objects_fixed, u, 0x516, &recorder))
            .collect();
        let row = |select: &dyn Fn(&PointMetrics) -> f64| -> Vec<String> {
            let mut row = vec![m.to_string()];
            for algo in 0..2 {
                for point in &per_u {
                    row.push(fmt2(select(&point[algo])));
                }
            }
            row
        };
        fig1a.push_row(row(&|p| p.savings));
        fig1b.push_row(row(&|p| p.replicas));
        let time_row = |algo: usize| -> Vec<String> {
            std::iter::once(m.to_string())
                .chain(
                    per_u
                        .iter()
                        .map(|point| format!("{:.4}", point[algo].seconds)),
                )
                .collect()
        };
        fig2a.push_row(time_row(0));
        fig2b.push_row(time_row(1));
        eprintln!("  [fig1/2] sites={m} done");
    }
    [fig1a, fig1b, fig2a, fig2b]
}

/// The object sweep: returns `[fig1c, fig1d]`.
pub fn objects_sweep(params: &Params) -> [Table; 2] {
    objects_sweep_recorded(params, telemetry::noop())
}

/// [`objects_sweep`] with a telemetry recorder observing every GRA run.
pub fn objects_sweep_recorded(params: &Params, recorder: Arc<dyn Recorder>) -> [Table; 2] {
    let mut fig1c = Table::new(
        "fig1c_savings_vs_objects",
        sweep_columns("objects", &params.update_ratios),
    );
    let mut fig1d = Table::new(
        "fig1d_replicas_vs_objects",
        sweep_columns("objects", &params.update_ratios),
    );
    for &n in &params.objects {
        let per_u: Vec<[PointMetrics; 2]> = params
            .update_ratios
            .iter()
            .map(|&u| measure_point(params, params.sites_fixed, n, u, 0x0b7, &recorder))
            .collect();
        let row = |select: &dyn Fn(&PointMetrics) -> f64| -> Vec<String> {
            let mut row = vec![n.to_string()];
            for algo in 0..2 {
                for point in &per_u {
                    row.push(fmt2(select(&point[algo])));
                }
            }
            row
        };
        fig1c.push_row(row(&|p| p.savings));
        fig1d.push_row(row(&|p| p.replicas));
        eprintln!("  [fig1] objects={n} done");
    }
    [fig1c, fig1d]
}

/// Runs both sweeps (Figures 1(a)–(d)).
pub fn run(params: &Params) -> Vec<Table> {
    run_recorded(params, telemetry::noop())
}

/// [`run`] with a telemetry recorder observing every GRA run.
pub fn run_recorded(params: &Params, recorder: Arc<dyn Recorder>) -> Vec<Table> {
    let [a, b, _, _] = sites_sweep_recorded(params, Arc::clone(&recorder));
    let [c, d] = objects_sweep_recorded(params, recorder);
    vec![a, b, c, d]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            sites: vec![6, 10],
            objects_fixed: 8,
            objects: vec![8, 12],
            sites_fixed: 6,
            update_ratios: vec![2.0, 10.0],
            capacity_percent: 15.0,
            instances: 2,
            gra: GraConfig {
                population_size: 6,
                generations: 4,
                ..GraConfig::default()
            },
            seed: 7,
        }
    }

    #[test]
    fn sweeps_produce_well_formed_tables() {
        let [a, b, t1, t2] = sites_sweep(&tiny());
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.columns.len(), 1 + 2 * 2);
        assert_eq!(b.rows.len(), 2);
        assert_eq!(t1.columns.len(), 3);
        assert_eq!(t2.rows.len(), 2);
        let [c, d] = objects_sweep(&tiny());
        assert_eq!(c.rows.len(), 2);
        assert_eq!(d.rows[0][0], "8");
    }

    #[test]
    fn gra_column_dominates_sra_column() {
        // The paper's headline: GRA ≥ SRA in savings. GRA is seeded by
        // *random-order* SRA runs (not the round-robin one being compared
        // against), so allow a small tolerance at this tiny test scale.
        let [a, _, _, _] = sites_sweep(&tiny());
        for row in &a.rows {
            let sra: f64 = row[1].parse().unwrap();
            let gra: f64 = row[3].parse().unwrap();
            assert!(gra >= sra - 2.0, "GRA {gra} far below SRA {sra}");
        }
    }
}
