//! One module per group of paper figures. Each module exposes a `Params`
//! struct (derivable from [`Scale`](crate::Scale), or hand-built for tests)
//! and a `run` function returning result [`Table`](crate::Table)s.

pub mod ablation;
pub mod adapt;
pub mod convergence;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod gap;
pub mod shard;
pub mod trees;

/// Deterministic seed mixing: every (figure, sweep-point, instance) gets an
/// independent but reproducible stream.
pub(crate) fn mix_seed(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= h >> 33;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic_and_spread() {
        assert_eq!(mix_seed(&[1, 2, 3]), mix_seed(&[1, 2, 3]));
        assert_ne!(mix_seed(&[1, 2, 3]), mix_seed(&[1, 2, 4]));
        assert_ne!(mix_seed(&[1, 2, 3]), mix_seed(&[3, 2, 1]));
    }
}
