//! Fault-injection study — a robustness extension.
//!
//! The paper optimizes placements for a failure-free network; this
//! experiment asks what those placements cost clients when sites actually
//! crash. For a sweep over the number of simultaneously crashed sites, it
//! drives an SRA placement (topped up to a degree-2 floor) through seeded
//! crash schedules with the self-healing pipeline of
//! [`drp_algo::repair`], and reports the client-observed degradation:
//! share of reads that needed failover, reads lost outright, replicas the
//! repair loop created, the NTC it spent doing so, and how long the system
//! stayed below its replication floor.

use std::sync::Arc;

use drp_algo::fault_tolerance::ensure_min_degree;
use drp_algo::repair::{run_faulted_recorded, RepairConfig};
use drp_algo::Sra;
use drp_core::telemetry::{self, Recorder};
use drp_core::ReplicationAlgorithm;
use drp_net::sim::FaultPlan;
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Fault-study parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape.
    pub size: (usize, usize),
    /// How many sites each schedule crashes (0 = injector baseline).
    pub crash_counts: Vec<usize>,
    /// Per-message drop probability layered on top of the crashes.
    pub drop_probability: f64,
    /// Capacity percentage.
    pub capacity: f64,
    /// Min-degree floor enforced before and during the run.
    pub min_degree: usize,
    /// Instances per crash count.
    pub instances: usize,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: match scale {
                Scale::Quick => (10, 12),
                Scale::Full => (20, 30),
            },
            crash_counts: vec![0, 1, 2, 3],
            drop_probability: 0.01,
            capacity: 60.0,
            min_degree: 2,
            instances: scale.instances(),
            seed,
        }
    }
}

/// One crash schedule: `count` distinct sites go down for staggered,
/// overlapping windows inside the client horizon.
fn plan_for(seed: u64, count: usize, num_sites: usize, drop: f64) -> Option<FaultPlan> {
    if count == 0 && drop == 0.0 {
        return None;
    }
    let mut plan = FaultPlan::new(seed).drop_probability(drop);
    for c in 0..count.min(num_sites.saturating_sub(1)) {
        // Distinct victims spread over the ring of sites; windows overlap
        // so multi-crash schedules really do lose several sites at once.
        let site = (seed as usize + c * (num_sites / count.max(1)).max(1)) % num_sites;
        let from = 60 + 40 * c as u64;
        let until = 420 + 60 * c as u64;
        plan = plan.crash(site, from, until);
    }
    Some(plan)
}

/// Runs the fault study: client-observed degradation vs crashed sites.
pub fn run(params: &Params) -> Vec<Table> {
    run_recorded(params, telemetry::noop())
}

/// [`run`] with a telemetry recorder observing every simulator run: one
/// `faults.point` span per crash count plus the aggregated `sim.*` /
/// `fault.*` / `repair.sweep` telemetry of every repair pipeline run.
pub fn run_recorded(params: &Params, recorder: Arc<dyn Recorder>) -> Vec<Table> {
    let (m, n) = params.size;
    let mut table = Table::new(
        "degradation_vs_crashed_sites",
        vec![
            "crashed".into(),
            "degraded reads %".into(),
            "lost reads".into(),
            "stale reads".into(),
            "queued writes".into(),
            "repair replicas".into(),
            "repair NTC".into(),
            "restore time".into(),
        ],
    );
    for &count in &params.crash_counts {
        let _point = telemetry::span(recorder.as_ref(), "faults.point");
        let spec = WorkloadSpec::paper(m, n, 8.0, params.capacity);
        let runs = run_parallel(params.instances, |instance| {
            let seed = mix_seed(&[params.seed, 0xFA17, count as u64, instance as u64]);
            let mut rng = StdRng::seed_from_u64(seed);
            let problem = spec.generate(&mut rng).expect("valid spec");
            let mut scheme = Sra::new().solve(&problem, &mut rng).expect("SRA runs");
            ensure_min_degree(&problem, &mut scheme, params.min_degree).expect("top-up runs");
            let plan = plan_for(seed, count, m, params.drop_probability);
            let config = RepairConfig {
                min_degree: params.min_degree,
                ..RepairConfig::default()
            };
            let run = run_faulted_recorded(&problem, &scheme, plan, config, Arc::clone(&recorder))
                .expect("repair run");
            let r = run.report;
            assert!(r.reads_balanced() && r.writes_balanced(), "{r}");
            [
                100.0 * r.reads_degraded as f64 / r.reads_total.max(1) as f64,
                r.reads_lost as f64,
                r.reads_stale as f64,
                r.writes_queued as f64,
                r.repair_replicas_created as f64,
                r.repair_traffic as f64,
                r.time_to_restored_degree as f64,
            ]
        });
        let mut row = vec![count.to_string()];
        for metric in 0..7 {
            let values: Vec<f64> = runs.iter().map(|r| r[metric]).collect();
            row.push(fmt2(aggregate(&values).mean));
        }
        table.push_row(row);
        eprintln!("  [faults] {count} crashed site(s) done");
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Params {
        Params {
            size: (8, 6),
            crash_counts: vec![0, 2],
            drop_probability: 0.0,
            capacity: 70.0,
            min_degree: 2,
            instances: 2,
            seed: 4,
        }
    }

    #[test]
    fn fault_study_runs_and_degradation_grows_with_crashes() {
        let tables = run(&tiny_params());
        assert_eq!(tables[0].rows.len(), 2);
        let degraded = |row: &[String]| -> f64 { row[1].parse().unwrap() };
        let baseline = degraded(&tables[0].rows[0]);
        let crashed = degraded(&tables[0].rows[1]);
        assert_eq!(baseline, 0.0, "no degradation without faults");
        assert!(crashed >= baseline);
        // No client read may be lost: repair + retries bridge the outages.
        for row in &tables[0].rows {
            assert_eq!(row[2].parse::<f64>().unwrap(), 0.0, "lost reads");
        }
    }

    #[test]
    fn fault_study_is_deterministic() {
        let a = run(&tiny_params());
        let b = run(&tiny_params());
        assert_eq!(a[0].rows, b[0].rows);
    }

    #[test]
    fn recorded_study_matches_plain_and_aggregates_telemetry() {
        use drp_core::telemetry::InMemoryRecorder;

        let params = tiny_params();
        let plain = run(&params);
        let recorder = Arc::new(InMemoryRecorder::new());
        let recorded = run_recorded(&params, recorder.clone());
        assert_eq!(
            plain[0].rows, recorded[0].rows,
            "recording must not perturb results"
        );
        assert_eq!(
            recorder.span_count("faults.point"),
            params.crash_counts.len() as u64
        );
        // Every (crash count, instance) pair is one simulator run.
        assert_eq!(
            recorder.span_count("sim.run"),
            (params.crash_counts.len() * params.instances) as u64
        );
        assert!(recorder.counter("sim.events") > 0);
    }
}
