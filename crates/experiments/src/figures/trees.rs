//! Tree-network comparison — a reproduction extension.
//!
//! The paper's related work dismisses Wolfson et al.'s ADR because it is
//! only defined for tree networks. This experiment meets ADR on its home
//! turf: binary-tree topologies, where we compare ADR, SRA and GRA on NTC
//! savings, replica counts, wall-clock, and the fault-tolerance side effect
//! (demand-weighted availability at 5% site-failure probability).

use std::time::Instant;

use drp_algo::adr::Adr;
use drp_algo::{Gra, GraConfig, Sra};
use drp_core::{availability, ReplicationAlgorithm};
use drp_workload::{TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Tree-comparison parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape `(M, N)`.
    pub size: (usize, usize),
    /// Update ratios swept.
    pub update_ratios: Vec<f64>,
    /// Capacity percentage.
    pub capacity: f64,
    /// Site-failure probability for the availability column.
    pub failure_probability: f64,
    /// Instances averaged per data point.
    pub instances: usize,
    /// GRA settings.
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: scale.fig3_size(),
            update_ratios: vec![2.0, 5.0, 10.0, 20.0],
            capacity: 20.0,
            failure_probability: 0.05,
            instances: scale.instances(),
            gra: scale.gra(),
            seed,
        }
    }
}

/// Runs the comparison: one row per update ratio, with savings / replicas /
/// time / availability per algorithm.
pub fn run(params: &Params) -> Vec<Table> {
    let (m, n) = params.size;
    let mut table = Table::new(
        "trees_adr_vs_sra_vs_gra",
        vec![
            "U%".into(),
            "ADR sav%".into(),
            "SRA sav%".into(),
            "GRA sav%".into(),
            "ADR reps".into(),
            "SRA reps".into(),
            "GRA reps".into(),
            "ADR s".into(),
            "SRA s".into(),
            "GRA s".into(),
            "ADR avail".into(),
            "GRA avail".into(),
        ],
    );
    for &u in &params.update_ratios {
        let mut spec = WorkloadSpec::paper(m, n, u, params.capacity);
        spec.topology = TopologyKind::Tree { arity: 2 };
        let gra_config = params.gra.clone();
        let p_fail = params.failure_probability;
        let runs = run_parallel(params.instances, |instance| {
            let seed = mix_seed(&[params.seed, 0x7ee5, u.to_bits(), instance as u64]);
            let mut rng = StdRng::seed_from_u64(seed);
            let problem = spec.generate(&mut rng).expect("valid spec");
            let solvers: Vec<Box<dyn ReplicationAlgorithm>> = vec![
                Box::new(Adr::default()),
                Box::new(Sra::new()),
                Box::new(Gra::with_config(gra_config.clone())),
            ];
            solvers
                .iter()
                .map(|solver| {
                    let start = Instant::now();
                    let scheme = solver
                        .solve(&problem, &mut rng)
                        .expect("tree instance solves");
                    let secs = start.elapsed().as_secs_f64();
                    (
                        problem.savings_percent(&scheme),
                        scheme.extra_replica_count() as f64,
                        secs,
                        availability::demand_weighted_availability(&problem, &scheme, p_fail),
                    )
                })
                .collect::<Vec<_>>()
        });
        let mean = |algo: usize, pick: fn(&(f64, f64, f64, f64)) -> f64| -> f64 {
            aggregate(&runs.iter().map(|r| pick(&r[algo])).collect::<Vec<_>>()).mean
        };
        table.push_row(vec![
            u.to_string(),
            fmt2(mean(0, |r| r.0)),
            fmt2(mean(1, |r| r.0)),
            fmt2(mean(2, |r| r.0)),
            fmt2(mean(0, |r| r.1)),
            fmt2(mean(1, |r| r.1)),
            fmt2(mean(2, |r| r.1)),
            format!("{:.4}", mean(0, |r| r.2)),
            format!("{:.4}", mean(1, |r| r.2)),
            format!("{:.4}", mean(2, |r| r.2)),
            format!("{:.4}", mean(0, |r| r.3)),
            format!("{:.4}", mean(2, |r| r.3)),
        ]);
        eprintln!("  [trees] U={u}% done");
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_comparison_produces_sane_rows() {
        let params = Params {
            size: (7, 8),
            update_ratios: vec![5.0],
            capacity: 25.0,
            failure_probability: 0.05,
            instances: 2,
            gra: GraConfig {
                population_size: 6,
                generations: 4,
                ..GraConfig::default()
            },
            seed: 3,
        };
        let tables = run(&params);
        assert_eq!(tables[0].rows.len(), 1);
        let row = &tables[0].rows[0];
        for cell in &row[1..4] {
            let savings: f64 = cell.parse().unwrap();
            assert!((0.0..=100.0).contains(&savings));
        }
        let avail: f64 = row[10].parse().unwrap();
        assert!((0.9..=1.0).contains(&avail), "availability {avail}");
    }
}
