//! Figures 2(a)–2(b): execution time of SRA and GRA versus the number of
//! sites.
//!
//! The measurements come from the same runs as the Figure 1 site sweep (the
//! paper also derives them from one experiment), so this module simply
//! re-exposes that sweep's timing tables.
//!
//! Paper shape to look for: both curves grow roughly quadratically in `M`;
//! GRA sits 3–4 orders of magnitude above SRA. Absolute values differ from
//! the paper's 200 MHz UltraSPARC-2, the ratio and the growth shape should
//! not.

use std::sync::Arc;

use drp_core::telemetry::{self, Recorder};

use crate::figures::fig1;
use crate::{Scale, Table};

/// Runs the site sweep and returns `[fig2a, fig2b]`.
pub fn run(params: &fig1::Params) -> Vec<Table> {
    run_recorded(params, telemetry::noop())
}

/// [`run`] with a telemetry recorder observing every GRA run.
pub fn run_recorded(params: &fig1::Params, recorder: Arc<dyn Recorder>) -> Vec<Table> {
    let [_, _, a, b] = fig1::sites_sweep_recorded(params, recorder);
    vec![a, b]
}

/// Convenience wrapper deriving the parameters from a scale.
pub fn run_at_scale(scale: Scale, seed: u64) -> Vec<Table> {
    run(&fig1::Params::from_scale(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_algo::GraConfig;

    #[test]
    fn timing_tables_have_positive_entries() {
        let params = fig1::Params {
            sites: vec![6, 10],
            objects_fixed: 8,
            objects: vec![8],
            sites_fixed: 6,
            update_ratios: vec![5.0],
            capacity_percent: 15.0,
            instances: 2,
            gra: GraConfig {
                population_size: 6,
                generations: 4,
                ..GraConfig::default()
            },
            seed: 3,
        };
        let tables = run(&params);
        assert_eq!(tables.len(), 2);
        for table in &tables {
            for row in &table.rows {
                for cell in &row[1..] {
                    let v: f64 = cell.parse().unwrap();
                    assert!(v >= 0.0);
                }
            }
        }
        // GRA strictly slower than SRA at the same point.
        let sra: f64 = tables[0].rows[0][1].parse().unwrap();
        let gra: f64 = tables[1].rows[0][1].parse().unwrap();
        assert!(gra > sra, "GRA ({gra}s) must cost more than SRA ({sra}s)");
    }
}
