//! Optimality-gap study — a reproduction extension.
//!
//! On instances small enough for the exact branch-and-bound optimum, how
//! far from optimal do the heuristics land? The paper cannot answer this
//! (it normalizes against the primary-only allocation, not the optimum);
//! with the exact solver in the workspace we can.

use drp_algo::annealing::SimulatedAnnealing;
use drp_algo::baselines::HillClimb;
use drp_algo::exact::BranchBound;
use drp_algo::{Gra, GraConfig, Sra};
use drp_core::ReplicationAlgorithm;
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Gap-study parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape (must stay within the exact solver's limits).
    pub size: (usize, usize),
    /// Update ratios to test (the gap grows with write pressure).
    pub update_ratios: Vec<f64>,
    /// Capacity percentage.
    pub capacity: f64,
    /// Instances per update ratio.
    pub instances: usize,
    /// GRA settings.
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: (7, 7),
            update_ratios: vec![2.0, 10.0, 30.0],
            capacity: 25.0,
            instances: scale.instances().max(5),
            gra: GraConfig {
                population_size: 12,
                generations: 20,
                ..GraConfig::default()
            },
            seed,
        }
    }
}

/// Runs the gap study: mean optimality gap (%) and hit rate per heuristic.
pub fn run(params: &Params) -> Vec<Table> {
    let (m, n) = params.size;
    let mut table = Table::new(
        "gap_vs_branch_and_bound",
        vec![
            "U%".into(),
            "SRA gap%".into(),
            "SRA hits".into(),
            "GRA gap%".into(),
            "GRA hits".into(),
            "HC gap%".into(),
            "HC hits".into(),
            "SA gap%".into(),
            "SA hits".into(),
        ],
    );
    for &u in &params.update_ratios {
        let spec = WorkloadSpec::paper(m, n, u, params.capacity);
        let gra_config = params.gra.clone();
        // gaps[heuristic] = (per-instance gap %, hit?)
        let runs = run_parallel(params.instances, |instance| {
            let seed = mix_seed(&[params.seed, 0x9a9, u.to_bits(), instance as u64]);
            let mut rng = StdRng::seed_from_u64(seed);
            let problem = spec.generate(&mut rng).expect("valid spec");
            let optimal = BranchBound::default()
                .solve(&problem, &mut rng)
                .expect("instance within exact limits");
            let opt = problem.total_cost(&optimal).max(1);

            let solvers: Vec<Box<dyn ReplicationAlgorithm>> = vec![
                Box::new(Sra::new()),
                Box::new(Gra::with_config(gra_config.clone())),
                Box::new(HillClimb::default()),
                Box::new(SimulatedAnnealing {
                    iterations: 5_000,
                    ..SimulatedAnnealing::default()
                }),
            ];
            solvers
                .iter()
                .map(|solver| {
                    let cost =
                        problem.total_cost(&solver.solve(&problem, &mut rng).expect("solver runs"));
                    let gap = 100.0 * (cost as f64 - opt as f64) / opt as f64;
                    (gap, cost == opt)
                })
                .collect::<Vec<(f64, bool)>>()
        });
        let mut row = vec![u.to_string()];
        for h in 0..4 {
            let gaps: Vec<f64> = runs.iter().map(|r| r[h].0).collect();
            let hits = runs.iter().filter(|r| r[h].1).count();
            row.push(fmt2(aggregate(&gaps).mean));
            row.push(format!("{hits}/{}", params.instances));
        }
        table.push_row(row);
        eprintln!("  [gap] U={u}% done");
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_study_reports_nonnegative_gaps() {
        let params = Params {
            size: (5, 5),
            update_ratios: vec![10.0],
            capacity: 30.0,
            instances: 3,
            gra: GraConfig {
                population_size: 6,
                generations: 5,
                ..GraConfig::default()
            },
            seed: 2,
        };
        let tables = run(&params);
        assert_eq!(tables[0].rows.len(), 1);
        let row = &tables[0].rows[0];
        for h in 0..4 {
            let gap: f64 = row[1 + 2 * h].parse().unwrap();
            assert!(gap >= -1e-9, "negative gap for heuristic {h}");
        }
    }
}
