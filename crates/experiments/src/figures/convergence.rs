//! GRA convergence traces — a reproduction extension.
//!
//! The paper reports only final solution quality; the engine's per-
//! generation statistics let us also show *how* GRA converges: best/mean
//! fitness per generation, averaged over instances. Useful for judging
//! whether the paper's Ng=80 budget is saturated.

use drp_algo::{Gra, GraConfig};
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Convergence-trace parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape `(M, N)`.
    pub size: (usize, usize),
    /// Update ratio, percent.
    pub update_ratio: f64,
    /// Capacity percentage.
    pub capacity: f64,
    /// Instances averaged.
    pub instances: usize,
    /// GRA settings (its `generations` bounds the trace length).
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: scale.fig3_size(),
            update_ratio: 5.0,
            capacity: 15.0,
            instances: scale.instances(),
            gra: scale.gra(),
            seed,
        }
    }
}

/// Runs the trace: one row per generation with mean best/mean/best-ever
/// fitness across instances.
pub fn run(params: &Params) -> Vec<Table> {
    let (m, n) = params.size;
    let spec = WorkloadSpec::paper(m, n, params.update_ratio, params.capacity);
    let gra = Gra::with_config(params.gra.clone());
    let histories = run_parallel(params.instances, |instance| {
        let seed = mix_seed(&[params.seed, 0xc0 + 1, instance as u64]);
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = spec.generate(&mut rng).expect("valid spec");
        gra.solve_detailed(&problem, &mut rng)
            .expect("GRA runs")
            .outcome
            .history
    });
    let generations = histories.iter().map(Vec::len).min().unwrap_or(0);
    let mut table = Table::new(
        "convergence_gra_fitness",
        vec![
            "generation".into(),
            "best".into(),
            "mean".into(),
            "best ever".into(),
        ],
    );
    for g in 0..generations {
        let best: Vec<f64> = histories.iter().map(|h| h[g].best).collect();
        let mean: Vec<f64> = histories.iter().map(|h| h[g].mean).collect();
        let ever: Vec<f64> = histories.iter().map(|h| h[g].best_ever).collect();
        table.push_row(vec![
            g.to_string(),
            fmt2(aggregate(&best).mean * 100.0),
            fmt2(aggregate(&mean).mean * 100.0),
            fmt2(aggregate(&ever).mean * 100.0),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_monotone_in_best_ever() {
        let params = Params {
            size: (6, 8),
            update_ratio: 5.0,
            capacity: 20.0,
            instances: 2,
            gra: GraConfig {
                population_size: 6,
                generations: 5,
                ..GraConfig::default()
            },
            seed: 4,
        };
        let tables = run(&params);
        assert_eq!(tables[0].rows.len(), 6); // gen 0 + 5
        let evers: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(evers.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    }
}
