//! Figures 3(a)–3(b): sensitivity to the update ratio and to site capacity.
//!
//! * **3(a)** — % NTC saving vs update ratio `U` (capacity fixed at 15%).
//! * **3(b)** — % NTC saving vs capacity `C` (update ratio fixed at 5%).
//!
//! Paper shape to look for: savings of both algorithms decay steeply
//! (≈ exponentially) in `U`, with GRA on top; savings rise quickly with `C`
//! and then saturate once every beneficial object is replicated — SRA
//! saturates almost immediately at U=5%.

use drp_algo::{Gra, GraConfig, Sra};
use drp_core::ReplicationAlgorithm;
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::mix_seed;
use crate::table::fmt2;
use crate::{aggregate, run_parallel, Scale, Table};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instance shape `(M, N)`.
    pub size: (usize, usize),
    /// Update ratios swept by Figure 3(a).
    pub update_ratios: Vec<f64>,
    /// Fixed capacity for Figure 3(a).
    pub capacity_for_3a: f64,
    /// Capacities swept by Figure 3(b).
    pub capacities: Vec<f64>,
    /// Fixed update ratio for Figure 3(b).
    pub update_for_3b: f64,
    /// Instances averaged per data point.
    pub instances: usize,
    /// GRA settings.
    pub gra: GraConfig,
    /// Base seed.
    pub seed: u64,
}

impl Params {
    /// The reproduction defaults for a scale.
    pub fn from_scale(scale: Scale, seed: u64) -> Self {
        Self {
            size: scale.fig3_size(),
            update_ratios: scale.fig3a_update_ratios(),
            capacity_for_3a: 15.0,
            capacities: scale.fig3b_capacities(),
            update_for_3b: 5.0,
            instances: scale.instances(),
            gra: scale.gra(),
            seed,
        }
    }
}

/// Mean savings (and replica counts) of SRA and GRA at one configuration.
fn measure(params: &Params, u: f64, c: f64, tag: u64) -> [(f64, f64); 2] {
    let (m, n) = params.size;
    let spec = WorkloadSpec::paper(m, n, u, c);
    let gra_config = params.gra.clone();
    let runs = run_parallel(params.instances, |instance| {
        let seed = mix_seed(&[params.seed, tag, u.to_bits(), c.to_bits(), instance as u64]);
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = spec.generate(&mut rng).expect("valid spec");
        let (sra_scheme, sra_report) = Sra::new()
            .solve_report(&problem, &mut rng)
            .expect("SRA solves");
        let (gra_scheme, gra_report) = Gra::with_config(gra_config.clone())
            .solve_report(&problem, &mut rng)
            .expect("GRA solves");
        [
            (
                sra_report.savings_percent,
                sra_scheme.extra_replica_count() as f64,
            ),
            (
                gra_report.savings_percent,
                gra_scheme.extra_replica_count() as f64,
            ),
        ]
    });
    [0usize, 1].map(|algo| {
        let savings: Vec<f64> = runs.iter().map(|r| r[algo].0).collect();
        let replicas: Vec<f64> = runs.iter().map(|r| r[algo].1).collect();
        (aggregate(&savings).mean, aggregate(&replicas).mean)
    })
}

/// Runs both sweeps: returns `[fig3a, fig3b]`.
pub fn run(params: &Params) -> Vec<Table> {
    let mut fig3a = Table::new(
        "fig3a_savings_vs_update_ratio",
        vec!["U%".into(), "SRA".into(), "GRA".into()],
    );
    for &u in &params.update_ratios {
        let [(sra, _), (gra, _)] = measure(params, u, params.capacity_for_3a, 0x3a);
        fig3a.push_row(vec![u.to_string(), fmt2(sra), fmt2(gra)]);
        eprintln!("  [fig3a] U={u}% done");
    }

    let mut fig3b = Table::new(
        "fig3b_savings_vs_capacity",
        vec![
            "C%".into(),
            "SRA".into(),
            "GRA".into(),
            "SRA replicas".into(),
            "GRA replicas".into(),
        ],
    );
    for &c in &params.capacities {
        let [(sra, sra_reps), (gra, gra_reps)] = measure(params, params.update_for_3b, c, 0x3b);
        fig3b.push_row(vec![
            c.to_string(),
            fmt2(sra),
            fmt2(gra),
            fmt2(sra_reps),
            fmt2(gra_reps),
        ]);
        eprintln!("  [fig3b] C={c}% done");
    }
    vec![fig3a, fig3b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            size: (6, 8),
            update_ratios: vec![1.0, 20.0],
            capacity_for_3a: 15.0,
            capacities: vec![10.0, 30.0],
            update_for_3b: 5.0,
            instances: 2,
            gra: GraConfig {
                population_size: 6,
                generations: 4,
                ..GraConfig::default()
            },
            seed: 9,
        }
    }

    #[test]
    fn produces_both_tables() {
        let tables = run(&tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[1].rows.len(), 2);
    }

    #[test]
    fn savings_decay_with_update_ratio() {
        let tables = run(&tiny());
        let low_u: f64 = tables[0].rows[0][2].parse().unwrap();
        let high_u: f64 = tables[0].rows[1][2].parse().unwrap();
        assert!(
            low_u >= high_u,
            "GRA savings should not rise with the update ratio ({low_u} vs {high_u})"
        );
    }
}
