//! Property tests for the live migration executor under faults.
//!
//! Same style as the repair pipeline's property suite: plain seeded loops
//! rather than `proptest!` generators, because the interesting inputs
//! (schemes, plans, crash windows) are already deterministic functions of
//! a seed and enumerating seeds reproduces failures by construction.
//!
//! The two properties the executor owes the rest of the runtime:
//!
//! 1. **Cost fidelity** — with no faults, the executed migration's NTC is
//!    exactly the static [`MigrationPlan::transfer_cost`] computed by
//!    `drp_core::migration`: one fetch per addition from the planned
//!    source, nothing billed twice, retries never fire early.
//! 2. **Crash convergence** — a crash window covering an addition's
//!    planned source still converges to the same target directory: the
//!    retry path re-sources the fetch from surviving holders, and whatever
//!    stays deferred is re-planned in a later round.

use drp_algo::Sra;
use drp_core::format::{read_instance, read_scheme};
use drp_core::migration::plan_migration;
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme};
use drp_net::sim::FaultPlan;
use drp_serve::{execute_migration, run_service, FaultSpec, MigrationTuning, Policy, ServeConfig};
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64) -> Problem {
    WorkloadSpec::paper(8, 10, 6.0, 40.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// Old scheme = primaries only, new scheme = SRA's placement: the plan is
/// pure additions, each sourced from the object's primary.
fn expansion(seed: u64) -> (Problem, ReplicationScheme, ReplicationScheme) {
    let problem = instance(seed);
    let old = ReplicationScheme::primary_only(&problem);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
    let new = Sra::new().solve(&problem, &mut rng).unwrap();
    (problem, old, new)
}

#[test]
fn fault_free_execution_costs_exactly_the_static_plan() {
    let mut nontrivial = 0;
    for seed in 0..12u64 {
        let (problem, old, new) = expansion(seed);
        let plan = plan_migration(&problem, &old, &new).unwrap();
        if plan.moves() == 0 {
            continue;
        }
        nontrivial += 1;
        let out =
            execute_migration(&problem, &old, &plan, None, MigrationTuning::default()).unwrap();
        assert!(out.converged, "seed {seed}: fault-free migration must land");
        assert_eq!(out.rounds, 1, "seed {seed}: one round suffices");
        assert_eq!(
            out.migration_ntc,
            plan.transfer_cost(),
            "seed {seed}: executed NTC must equal the planner's static cost"
        );
        assert_eq!(out.retries, 0, "seed {seed}: no retry may fire early");
        assert_eq!(out.installed, plan.additions.len());
        assert_eq!(out.deallocated, plan.removals.len());
        assert_eq!(out.scheme, plan.apply(&problem, &old).unwrap());
    }
    assert!(nontrivial >= 8, "the seed sweep must exercise real plans");
}

#[test]
fn pure_deallocation_moves_no_data() {
    let (problem, old, new) = expansion(3);
    // Migrate backwards: SRA scheme down to primaries only. Every move is
    // a removal, so the executor must finish without any fetch traffic.
    let plan = plan_migration(&problem, &new, &old).unwrap();
    assert!(plan.additions.is_empty());
    assert!(!plan.removals.is_empty());
    let out = execute_migration(&problem, &new, &plan, None, MigrationTuning::default()).unwrap();
    assert!(out.converged);
    assert_eq!(out.migration_ntc, 0);
    assert_eq!(out.installed, 0);
    assert_eq!(out.deallocated, plan.removals.len());
    assert_eq!(out.scheme, old);
}

#[test]
fn crash_window_over_the_planned_source_still_converges() {
    let mut crashed_runs = 0;
    for seed in 0..12u64 {
        let (problem, old, new) = expansion(seed);
        let plan = plan_migration(&problem, &old, &new).unwrap();
        let Some(first) = plan.additions.first() else {
            continue;
        };
        crashed_runs += 1;
        // Take the first addition's source down from the very start, long
        // enough to outlast the initial fetch and its first retries.
        let faults = FaultPlan::new(seed).crash(first.source.index(), 0, 5_000);
        let out = execute_migration(
            &problem,
            &old,
            &plan,
            Some(faults),
            MigrationTuning::default(),
        )
        .unwrap();
        assert!(
            out.converged,
            "seed {seed}: migration must survive a crashed source"
        );
        assert_eq!(
            out.scheme,
            plan.apply(&problem, &old).unwrap(),
            "seed {seed}: the directory must still reach the planned target"
        );
        assert!(
            out.fault_stats.crashes >= 1,
            "seed {seed}: the crash window must have fired"
        );
        assert!(
            out.retries > 0 || out.rounds > 1,
            "seed {seed}: a crashed source must force retries or another round"
        );
        assert_eq!(out.installed, plan.additions.len());
        assert_eq!(out.deallocated, plan.removals.len());
    }
    assert!(crashed_runs >= 8, "the seed sweep must exercise real plans");
}

#[test]
fn drop_probability_and_jitter_do_not_break_convergence() {
    for seed in [1u64, 4, 7] {
        let (problem, old, new) = expansion(seed);
        let plan = plan_migration(&problem, &old, &new).unwrap();
        if plan.moves() == 0 {
            continue;
        }
        let faults = FaultPlan::new(seed).drop_probability(0.15).jitter(3);
        let out = execute_migration(
            &problem,
            &old,
            &plan,
            Some(faults),
            MigrationTuning::default(),
        )
        .unwrap();
        assert!(out.converged, "seed {seed}: lossy links must not wedge");
        assert_eq!(out.scheme, plan.apply(&problem, &old).unwrap());
        // Lost fetch data is still paid for (the bandwidth was spent), so
        // the executed cost can only meet or exceed the static plan.
        assert!(out.migration_ntc >= plan.transfer_cost() || out.retries == 0);
    }
}

/// Tight retry budget for the hand-built edge-path scenarios below: retry
/// deadlines land at small, predictable times.
fn tight_tuning() -> MigrationTuning {
    MigrationTuning {
        rpc_timeout: 4,
        backoff_cap: 4,
        max_attempts: 2,
    }
}

#[test]
fn retry_resources_then_defers_when_every_holder_is_down() {
    // One object held at sites 0 and 2; the plan adds it at site 1. Both
    // holders are crashed for the whole round, so the executor must walk
    // the full failover order — initial fetch from the nearest holder,
    // retry re-sourced to the other, retry back — exhaust `max_attempts`,
    // defer the addition, and land it in the fault-free second round.
    let problem = read_instance(
        "drp-instance v1\n\
         sites 3\n\
         objects 1\n\
         costs 0 1 3  1 0 3  3 3 0\n\
         capacities 4 4 4\n\
         sizes 2\n\
         primaries 0\n\
         reads 1  1  1\n\
         writes 1  0  0\n",
    )
    .unwrap();
    let old = read_scheme(
        "drp-scheme v1\nsites 3\nobjects 1\nobject 0 replicas 0 2\n",
        &problem,
    )
    .unwrap();
    let plan = plan_migration(
        &problem,
        &old,
        &read_scheme(
            "drp-scheme v1\nsites 3\nobjects 1\nobject 0 replicas 0 1 2\n",
            &problem,
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(plan.additions.len(), 1);
    assert!(plan.removals.is_empty());

    let faults = FaultPlan::new(0).crash(0, 0, 100_000).crash(2, 0, 100_000);
    let out = execute_migration(&problem, &old, &plan, Some(faults), tight_tuning()).unwrap();
    assert!(out.converged, "the deferred addition must land in round 2");
    assert_eq!(out.rounds, 2, "round 1 defers, round 2 completes");
    assert_eq!(
        out.retries, 2,
        "exactly max_attempts retries before deferring"
    );
    assert_eq!(out.installed, 1);
    assert!(
        out.fault_stats.lost_arrivals >= 3,
        "initial fetch + both re-sourced retries all hit dead holders, got {}",
        out.fault_stats.lost_arrivals
    );
}

#[test]
fn capacity_reclaim_applies_deferred_removals_when_cutover_stalls() {
    // Site 2 (capacity 2) trades object X for object Y: the plan removes
    // X@2 (deferred until X's pending addition at site 1 lands) and adds
    // Y@2. The crash schedule lets Y install at site 2 but keeps every
    // holder of X unreachable for site 1's fetch window, so the epoch ends
    // with site 2 holding X *and* Y — 4 units in a 2-unit site. The
    // executor must fall back to reclaiming capacity (applying the
    // deferred removal early) instead of erroring, then finish X@1 in the
    // fault-free second round.
    let problem = read_instance(
        "drp-instance v1\n\
         sites 3\n\
         objects 2\n\
         costs 0 1 3  1 0 3  3 3 0\n\
         capacities 4 4 2\n\
         sizes 2 2\n\
         primaries 0 1\n\
         reads 1 1  1 1  1 1\n\
         writes 1 0  0 1  0 0\n",
    )
    .unwrap();
    let old = read_scheme(
        "drp-scheme v1\nsites 3\nobjects 2\nobject 0 replicas 0 2\nobject 1 replicas 1\n",
        &problem,
    )
    .unwrap();
    let new = read_scheme(
        "drp-scheme v1\nsites 3\nobjects 2\nobject 0 replicas 0 1\nobject 1 replicas 1 2\n",
        &problem,
    )
    .unwrap();
    let plan = plan_migration(&problem, &old, &new).unwrap();
    assert_eq!(plan.additions.len(), 2);
    assert_eq!(plan.removals.len(), 1);
    for addition in &plan.additions {
        // The crash windows below assume the planner sources X@1 from the
        // nearest holder (site 0) and Y@2 from its only holder (site 1).
        let expected = if addition.object.index() == 0 { 0 } else { 1 };
        assert_eq!(addition.source.index(), expected);
    }

    // Site 0 is down all round (X@1's planned source). Site 2 is up long
    // enough to complete its own Y fetch (req at t=0, data back by t=6)
    // and down from t=7, so site 1's re-sourced retry to X's other holder
    // (site 2, arriving ≥ t=13) is lost too.
    let faults = FaultPlan::new(0).crash(0, 0, 100_000).crash(2, 7, 100_000);
    let out = execute_migration(&problem, &old, &plan, Some(faults), tight_tuning()).unwrap();
    assert!(out.converged, "reclaim must unwedge the migration");
    assert_eq!(out.rounds, 2, "round 1 reclaims, round 2 finishes X@1");
    assert_eq!(out.scheme, new);
    assert_eq!(out.installed, 2, "Y@2 in round 1, X@1 in round 2");
    assert_eq!(
        out.deallocated, 1,
        "the reclaimed removal must not be double-counted"
    );
    assert_eq!(out.retries, 2, "X@1 exhausts its attempts before deferring");
}

#[test]
fn write_queue_drains_across_a_primary_crash() {
    // Crash a primary for the first 40% of every epoch: writes shipped to
    // it while it is down are lost, writes after it recovers drain and
    // commit. The ledger must stay conservative either way, and the
    // admission front-end (offered/admitted/issued) must be byte-identical
    // to the fault-free run — faults may lose traffic, never invent it.
    let problem = instance(5);
    let primary = problem.primary(drp_core::ObjectId::new(0)).index();
    let config = ServeConfig {
        policy: Policy::Static,
        epochs: 2,
        seed: 5,
        ..ServeConfig::default()
    };
    let clean = run_service(&problem, &config).unwrap();
    let window = config.period * 2 / 5;
    let faulted = run_service(
        &problem,
        &ServeConfig {
            faults: Some(FaultSpec {
                crashes: vec![(primary, 0, window)],
                drop_probability: 0.0,
                jitter: 0,
            }),
            ..config
        },
    )
    .unwrap();

    let mut lost = 0;
    for (c, f) in clean.epochs.iter().zip(&faulted.epochs) {
        assert_eq!(c.offered, f.offered);
        assert_eq!(c.admitted, f.admitted);
        assert_eq!(c.writes_issued, f.writes_issued);
        assert_eq!(c.writes_lost, 0, "fault-free runs lose nothing");
        assert_eq!(
            f.writes_committed + f.writes_lost,
            f.writes_issued,
            "every admitted write is committed or accounted lost"
        );
        assert!(
            f.writes_committed > 0,
            "the queue must drain once the primary recovers"
        );
        assert!(f.crashes >= 1, "the crash window must have fired");
        lost += f.writes_lost;
    }
    assert!(
        lost > 0,
        "writes shipped into the crash window must be lost"
    );
}
