//! Property tests for the live migration executor under faults.
//!
//! Same style as the repair pipeline's property suite: plain seeded loops
//! rather than `proptest!` generators, because the interesting inputs
//! (schemes, plans, crash windows) are already deterministic functions of
//! a seed and enumerating seeds reproduces failures by construction.
//!
//! The two properties the executor owes the rest of the runtime:
//!
//! 1. **Cost fidelity** — with no faults, the executed migration's NTC is
//!    exactly the static [`MigrationPlan::transfer_cost`] computed by
//!    `drp_core::migration`: one fetch per addition from the planned
//!    source, nothing billed twice, retries never fire early.
//! 2. **Crash convergence** — a crash window covering an addition's
//!    planned source still converges to the same target directory: the
//!    retry path re-sources the fetch from surviving holders, and whatever
//!    stays deferred is re-planned in a later round.

use drp_algo::Sra;
use drp_core::migration::plan_migration;
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme};
use drp_net::sim::FaultPlan;
use drp_serve::{execute_migration, MigrationTuning};
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64) -> Problem {
    WorkloadSpec::paper(8, 10, 6.0, 40.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// Old scheme = primaries only, new scheme = SRA's placement: the plan is
/// pure additions, each sourced from the object's primary.
fn expansion(seed: u64) -> (Problem, ReplicationScheme, ReplicationScheme) {
    let problem = instance(seed);
    let old = ReplicationScheme::primary_only(&problem);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5a5);
    let new = Sra::new().solve(&problem, &mut rng).unwrap();
    (problem, old, new)
}

#[test]
fn fault_free_execution_costs_exactly_the_static_plan() {
    let mut nontrivial = 0;
    for seed in 0..12u64 {
        let (problem, old, new) = expansion(seed);
        let plan = plan_migration(&problem, &old, &new).unwrap();
        if plan.moves() == 0 {
            continue;
        }
        nontrivial += 1;
        let out =
            execute_migration(&problem, &old, &plan, None, MigrationTuning::default()).unwrap();
        assert!(out.converged, "seed {seed}: fault-free migration must land");
        assert_eq!(out.rounds, 1, "seed {seed}: one round suffices");
        assert_eq!(
            out.migration_ntc,
            plan.transfer_cost(),
            "seed {seed}: executed NTC must equal the planner's static cost"
        );
        assert_eq!(out.retries, 0, "seed {seed}: no retry may fire early");
        assert_eq!(out.installed, plan.additions.len());
        assert_eq!(out.deallocated, plan.removals.len());
        assert_eq!(out.scheme, plan.apply(&problem, &old).unwrap());
    }
    assert!(nontrivial >= 8, "the seed sweep must exercise real plans");
}

#[test]
fn pure_deallocation_moves_no_data() {
    let (problem, old, new) = expansion(3);
    // Migrate backwards: SRA scheme down to primaries only. Every move is
    // a removal, so the executor must finish without any fetch traffic.
    let plan = plan_migration(&problem, &new, &old).unwrap();
    assert!(plan.additions.is_empty());
    assert!(!plan.removals.is_empty());
    let out = execute_migration(&problem, &new, &plan, None, MigrationTuning::default()).unwrap();
    assert!(out.converged);
    assert_eq!(out.migration_ntc, 0);
    assert_eq!(out.installed, 0);
    assert_eq!(out.deallocated, plan.removals.len());
    assert_eq!(out.scheme, old);
}

#[test]
fn crash_window_over_the_planned_source_still_converges() {
    let mut crashed_runs = 0;
    for seed in 0..12u64 {
        let (problem, old, new) = expansion(seed);
        let plan = plan_migration(&problem, &old, &new).unwrap();
        let Some(first) = plan.additions.first() else {
            continue;
        };
        crashed_runs += 1;
        // Take the first addition's source down from the very start, long
        // enough to outlast the initial fetch and its first retries.
        let faults = FaultPlan::new(seed).crash(first.source.index(), 0, 5_000);
        let out = execute_migration(
            &problem,
            &old,
            &plan,
            Some(faults),
            MigrationTuning::default(),
        )
        .unwrap();
        assert!(
            out.converged,
            "seed {seed}: migration must survive a crashed source"
        );
        assert_eq!(
            out.scheme,
            plan.apply(&problem, &old).unwrap(),
            "seed {seed}: the directory must still reach the planned target"
        );
        assert!(
            out.fault_stats.crashes >= 1,
            "seed {seed}: the crash window must have fired"
        );
        assert!(
            out.retries > 0 || out.rounds > 1,
            "seed {seed}: a crashed source must force retries or another round"
        );
        assert_eq!(out.installed, plan.additions.len());
        assert_eq!(out.deallocated, plan.removals.len());
    }
    assert!(crashed_runs >= 8, "the seed sweep must exercise real plans");
}

#[test]
fn drop_probability_and_jitter_do_not_break_convergence() {
    for seed in [1u64, 4, 7] {
        let (problem, old, new) = expansion(seed);
        let plan = plan_migration(&problem, &old, &new).unwrap();
        if plan.moves() == 0 {
            continue;
        }
        let faults = FaultPlan::new(seed).drop_probability(0.15).jitter(3);
        let out = execute_migration(
            &problem,
            &old,
            &plan,
            Some(faults),
            MigrationTuning::default(),
        )
        .unwrap();
        assert!(out.converged, "seed {seed}: lossy links must not wedge");
        assert_eq!(out.scheme, plan.apply(&problem, &old).unwrap());
        // Lost fetch data is still paid for (the bandwidth was spent), so
        // the executed cost can only meet or exceed the static plan.
        assert!(out.migration_ntc >= plan.transfer_cost() || out.retries == 0);
    }
}
