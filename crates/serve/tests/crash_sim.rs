//! Deterministic crash-point simulation for the durable serving runtime.
//!
//! The harness runs one uncrashed durable service on a [`TracingStore`],
//! which records every durable operation the run performed. Each
//! WAL-record boundary inside those operations is then treated as a crash
//! point: the on-disk state a real crash would leave is reconstructed
//! byte-for-byte, a fresh runtime recovers from it and finishes the run,
//! and the recovered [`ServiceReport`] fingerprint must be bitwise equal
//! to the uncrashed run's. Torn mid-record prefixes (the other crash axis)
//! are sampled by a property test.
//!
//! Run under `DRP_THREADS` ∈ {1, 2} and with/without the `parallel`
//! feature in CI — the fingerprints must not move.

use drp_core::{CoreError, ServeError};
use drp_serve::{
    crash_points, run_service, run_service_durable, FaultSpec, MemWalStore, Policy, ServeConfig,
    TracingStore, WalStore, WalTuning,
};
use drp_workload::{PatternChange, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(seed: u64) -> drp_core::Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    WorkloadSpec::paper(6, 8, 5.0, 30.0)
        .generate(&mut rng)
        .unwrap()
}

fn monitor_config() -> drp_algo::monitor::MonitorConfig {
    use drp_algo::GraConfig;
    drp_algo::monitor::MonitorConfig {
        gra: GraConfig {
            population_size: 8,
            generations: 8,
            ..GraConfig::default()
        },
        ..drp_algo::monitor::MonitorConfig::default()
    }
}

/// A config that exercises every journaled path: drift (so the monitor
/// adapts and snapshots ride the Retune records), a nightly rebuild,
/// faults (so migration retries/re-sourcing appear), admission shedding,
/// and a checkpoint mid-run.
fn config(seed: u64) -> ServeConfig {
    ServeConfig {
        policy: Policy::Monitor,
        epochs: 3,
        seed,
        night_every: 3,
        admission_limit: 24,
        monitor: monitor_config(),
        drift: Some(PatternChange {
            change_percent: 600.0,
            objects_percent: 50.0,
            read_share: 0.9,
        }),
        faults: Some(FaultSpec {
            crashes: vec![(1, 10, 60)],
            drop_probability: 0.02,
            jitter: 2,
        }),
        wal: WalTuning {
            checkpoint_every: 2,
        },
        ..ServeConfig::default()
    }
}

#[test]
fn durable_fresh_run_matches_the_in_memory_run() {
    let problem = problem(17);
    let config = config(17);
    let plain = run_service(&problem, &config).unwrap();
    let mut store = MemWalStore::default();
    let durable = run_service_durable(&problem, &config, &mut store).unwrap();
    assert!(durable.recovery.is_none());
    assert_eq!(plain.fingerprint(), durable.report.fingerprint());
    assert!(!store.bytes().is_empty(), "the run must have journaled");
}

#[test]
fn every_record_boundary_crash_recovers_bitwise_identically() {
    let problem = problem(17);
    let config = config(17);
    let mut tracing = TracingStore::default();
    let baseline = run_service_durable(&problem, &config, &mut tracing).unwrap();
    let fingerprint = baseline.report.fingerprint();

    let points = crash_points(tracing.ops());
    assert!(
        points.len() > 20,
        "only {} crash points — the run journaled too little",
        points.len()
    );
    let mut resumed_late = 0usize;
    for &(op, cut) in &points {
        let disk = tracing.contents_at(op, cut);
        let mut store = MemWalStore::from_bytes(disk);
        let recovered = run_service_durable(&problem, &config, &mut store)
            .unwrap_or_else(|e| panic!("crash point (op {op}, cut {cut}) failed: {e}"));
        assert_eq!(
            recovered.report.fingerprint(),
            fingerprint,
            "crash point (op {op}, cut {cut}) diverged"
        );
        assert_eq!(recovered.report.epochs.len(), config.epochs);
        if let Some(info) = &recovered.recovery {
            assert!(info.damage.is_none(), "boundary cuts are never torn");
            if info.resumed_epoch > 0 {
                resumed_late += 1;
            }
        }
    }
    assert!(
        resumed_late > 0,
        "no crash point resumed past epoch 0 — commit points never engaged"
    );
}

#[test]
fn a_recovered_store_continues_to_be_crash_durable() {
    // Crash once mid-run, recover on a tracing store, crash the *recovered*
    // run at its first new boundary, recover again: still bitwise equal.
    let problem = problem(17);
    let config = config(17);
    let mut tracing = TracingStore::default();
    let baseline = run_service_durable(&problem, &config, &mut tracing).unwrap();
    let points = crash_points(tracing.ops());
    let &(op, cut) = points.get(points.len() / 2).unwrap();

    let mut second = TracingStore::default();
    second.reset(&tracing.contents_at(op, cut)).unwrap();
    let once = run_service_durable(&problem, &config, &mut second).unwrap();
    assert_eq!(once.report.fingerprint(), baseline.report.fingerprint());

    let second_points = crash_points(second.ops());
    let &(op2, cut2) = second_points.last().unwrap();
    let mut third = MemWalStore::from_bytes(second.contents_at(op2, cut2));
    let twice = run_service_durable(&problem, &config, &mut third).unwrap();
    assert_eq!(twice.report.fingerprint(), baseline.report.fingerprint());
}

#[test]
fn recovering_a_completed_log_replays_without_rerunning() {
    let problem = problem(29);
    let config = config(29);
    let mut store = MemWalStore::default();
    let first = run_service_durable(&problem, &config, &mut store).unwrap();
    let again = run_service_durable(&problem, &config, &mut store).unwrap();
    let info = again.recovery.expect("second run must recover");
    assert_eq!(info.resumed_epoch, config.epochs);
    assert_eq!(info.damage, None);
    assert_eq!(first.report, again.report);
}

#[test]
fn corrupt_middle_record_is_dropped_reported_and_survived() {
    let problem = problem(17);
    let config = config(17);
    let mut store = MemWalStore::default();
    let baseline = run_service_durable(&problem, &config, &mut store).unwrap();

    // Flip a byte ~80% into the log: everything after the damage (late
    // records of the final epochs) is dropped, recovery re-runs it.
    let mut bytes = store.bytes().to_vec();
    let at = bytes.len() * 4 / 5;
    bytes[at] ^= 0x40;
    let mut damaged = MemWalStore::from_bytes(bytes);
    let recovered = run_service_durable(&problem, &config, &mut damaged).unwrap();
    let info = recovered.recovery.expect("must have recovered");
    assert!(
        matches!(
            info.damage,
            Some(ServeError::WalCorrupt { .. }) | Some(ServeError::WalTruncated { .. })
        ),
        "damage must be classified, got {:?}",
        info.damage
    );
    assert_eq!(
        recovered.report.fingerprint(),
        baseline.report.fingerprint()
    );
}

#[test]
fn recovery_refuses_a_foreign_log() {
    let problem = problem(17);
    let mut store = MemWalStore::default();
    run_service_durable(&problem, &config(17), &mut store).unwrap();

    // Same problem, different seed: the log must be rejected, not resumed.
    let err = run_service_durable(&problem, &config(18), &mut store).unwrap_err();
    assert!(
        matches!(err, CoreError::Serve(ServeError::WalMismatch { .. })),
        "{err}"
    );

    // Different instance under the same seed: also rejected.
    let other = self::problem(31);
    let err = run_service_durable(&other, &config(17), &mut store).unwrap_err();
    assert!(
        matches!(err, CoreError::Serve(ServeError::WalMismatch { .. })),
        "{err}"
    );
}

#[test]
fn degenerate_tuning_is_rejected_up_front() {
    let problem = problem(17);
    let mut config = config(17);
    config.wal.checkpoint_every = 0;
    let mut store = MemWalStore::default();
    assert!(run_service_durable(&problem, &config, &mut store).is_err());

    let mut config = self::config(17);
    config.tuning.rpc_timeout = 0;
    assert!(run_service(&problem, &config).is_err());

    let mut config = self::config(17);
    config.tuning.max_attempts = 0;
    assert!(run_service(&problem, &config).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(12)
    ))]

    /// Torn-write prefixes: cut a durable operation at an arbitrary byte
    /// (usually mid-record). Recovery must classify the torn tail, drop
    /// it, and still finish bitwise-identically.
    #[test]
    fn torn_write_prefixes_recover_bitwise_identically(op_pick in 0usize..1000, cut_pick in 0usize..4096) {
        let problem = problem(17);
        let config = config(17);
        let mut tracing = TracingStore::default();
        let baseline = run_service_durable(&problem, &config, &mut tracing).unwrap();

        let ops = tracing.ops();
        let op = op_pick % ops.len();
        let cut = if ops[op].bytes.is_empty() { 0 } else { cut_pick % ops[op].bytes.len() };
        let mut store = MemWalStore::from_bytes(tracing.contents_at(op, cut));
        let recovered = run_service_durable(&problem, &config, &mut store).unwrap();
        prop_assert_eq!(recovered.report.fingerprint(), baseline.report.fingerprint());
        prop_assert_eq!(recovered.report.epochs.len(), config.epochs);
    }
}
