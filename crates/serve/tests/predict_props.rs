//! Property tests of the prediction subsystem.
//!
//! The contracts under test:
//!
//! * predictive runs are bitwise deterministic — the [`ServiceReport`]
//!   fingerprint does not move across ingest `threads` ∈ {1, 2, 4} for
//!   either forecaster on any scenario;
//! * scoring a run against the offline-optimal replay oracle never
//!   perturbs the run itself, and every policy × scenario cell has a
//!   competitive ratio ≥ 1.0 (the oracle replays the online trajectory as
//!   one of its own candidate paths, so OPT can never cost more);
//! * forecaster state survives WAL crash-recovery bitwise: a predictive
//!   run resumed from any prefix of the log finishes with the same
//!   fingerprint as the uninterrupted run.
//!
//! [`ServiceReport`]: drp_serve::ServiceReport

use drp_core::Problem;
use drp_serve::{
    crash_points, run_service, run_service_durable, run_service_with_oracle, HotKeyConfig,
    MemWalStore, Policy, ServeConfig, TracingStore, WalTuning,
};
use drp_workload::{Scenario, TopologyKind, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(sites: usize, objects: usize, seed: u64) -> Problem {
    WorkloadSpec::paper(sites, objects, 8.0, 30.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

fn small_monitor() -> drp_algo::monitor::MonitorConfig {
    drp_algo::monitor::MonitorConfig {
        gra: drp_algo::GraConfig {
            population_size: 8,
            generations: 6,
            ..drp_algo::GraConfig::default()
        },
        ..drp_algo::monitor::MonitorConfig::default()
    }
}

fn scenario_config(policy: Policy, scenario: Scenario, seed: u64, threads: usize) -> ServeConfig {
    ServeConfig {
        policy,
        epochs: 4,
        period: 128,
        seed,
        night_every: 3,
        monitor: small_monitor(),
        scenario: Some(scenario),
        threads,
        hot: Some(HotKeyConfig::default()),
        ..ServeConfig::default()
    }
}

const PREDICTIVE: [Policy; 2] = [Policy::PredictiveEwma, Policy::PredictiveRegression];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn predictive_fingerprints_do_not_move_across_threads(
        seed in 0u64..1000,
        which in 0usize..5,
    ) {
        let p = problem(6, 8, seed);
        let scenario = Scenario::ALL[which];
        for policy in PREDICTIVE {
            let base = run_service(&p, &scenario_config(policy, scenario, seed, 1)).unwrap();
            for threads in [2usize, 4] {
                let other =
                    run_service(&p, &scenario_config(policy, scenario, seed, threads)).unwrap();
                prop_assert_eq!(
                    base.fingerprint(),
                    other.fingerprint(),
                    "{:?}/{} drifted at threads={}",
                    policy,
                    scenario.name(),
                    threads
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn every_policy_scenario_cell_scores_ratio_at_least_one(seed in 0u64..1000) {
        // A tree metric so the ADR heuristic is admissible too.
        let mut spec = WorkloadSpec::paper(5, 6, 8.0, 30.0);
        spec.topology = TopologyKind::Tree { arity: 2 };
        let p = spec.generate(&mut StdRng::seed_from_u64(seed)).unwrap();
        for scenario in Scenario::ALL {
            for policy in [
                Policy::Static,
                Policy::Monitor,
                Policy::Adr,
                Policy::PredictiveEwma,
                Policy::PredictiveRegression,
            ] {
                let config = ServeConfig {
                    epochs: 3,
                    hot: None,
                    ..scenario_config(policy, scenario, seed, 1)
                };
                let (mut report, oracle) = run_service_with_oracle(&p, &config).unwrap();
                prop_assert!(
                    oracle.competitive_ratio >= 1.0,
                    "{:?}/{}: ratio {} < 1",
                    policy,
                    scenario.name(),
                    oracle.competitive_ratio
                );
                // The oracle replays a clean model (no faults, no
                // shedding), so its online figure is self-consistent with
                // OPT rather than with the live billing.
                prop_assert!(oracle.opt_ntc <= oracle.online_ntc);
                prop_assert!(oracle.online_ntc > 0);
                // Scoring is an offline replay: apart from the ratio field
                // it writes, the run itself is untouched.
                let plain = run_service(&p, &config).unwrap();
                report.competitive_ratio = 0.0;
                prop_assert_eq!(plain.fingerprint(), report.fingerprint());
            }
        }
    }
}

#[test]
fn forecaster_state_survives_crash_recovery_bitwise() {
    let p = problem(8, 8, 29);
    for policy in PREDICTIVE {
        let config = ServeConfig {
            wal: WalTuning {
                checkpoint_every: 2,
            },
            ..scenario_config(policy, Scenario::FlashCrowd, 29, 1)
        };
        let mut tracing = TracingStore::default();
        let baseline = run_service_durable(&p, &config, &mut tracing).unwrap();
        let t = &baseline.report.totals;
        assert!(
            t.adaptations + t.rebuilds > 0,
            "{policy:?}: the run under test must retune so the WAL carries forecaster state"
        );
        let fingerprint = baseline.report.fingerprint();

        let points = crash_points(tracing.ops());
        assert!(points.len() > 10, "only {} crash points", points.len());
        // Every third boundary keeps the suite fast; the full sweep lives
        // in crash_sim.rs.
        for &(op, cut) in points.iter().step_by(3) {
            let mut store = MemWalStore::from_bytes(tracing.contents_at(op, cut));
            let recovered = run_service_durable(&p, &config, &mut store)
                .unwrap_or_else(|e| panic!("{policy:?} crash point (op {op}, cut {cut}): {e}"));
            assert_eq!(
                recovered.report.fingerprint(),
                fingerprint,
                "{policy:?} crash point (op {op}, cut {cut}) diverged"
            );
        }
    }
}
