//! Property and parity tests of the ingestion front end and the
//! hot-object fast path.
//!
//! The contracts under test:
//!
//! * per-site conservation — `offered == admitted + shed` at every site,
//!   under bursty tiny batches and depth-1 bounded channels (the
//!   configuration that maximizes producer blocking);
//! * thread-count independence — queues, admission reports and the
//!   observation window are bitwise-equal for any worker count, and the
//!   full closed-loop [`ServiceReport`] fingerprint does not move across
//!   `threads` ∈ {1, 2, 4}, with the hot path on or off;
//! * the hot fast path never bills more total NTC than the same run
//!   without it (every boost is admitted only when the modeled saving
//!   covers its fetch);
//! * hot detector state survives WAL crash-recovery bitwise.
//!
//! [`ServiceReport`]: drp_serve::ServiceReport

use drp_core::{DenseMatrix, Problem};
use drp_serve::{
    crash_points, ingest_epoch, run_service, run_service_durable, HotKeyConfig, IngestScratch,
    IngestSpec, MemWalStore, Policy, ServeConfig, TracingStore, WalTuning,
};
use drp_workload::{PatternChange, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(sites: usize, objects: usize, seed: u64) -> Problem {
    WorkloadSpec::paper(sites, objects, 8.0, 30.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

fn small_monitor() -> drp_algo::monitor::MonitorConfig {
    drp_algo::monitor::MonitorConfig {
        gra: drp_algo::GraConfig {
            population_size: 8,
            generations: 6,
            ..drp_algo::GraConfig::default()
        },
        ..drp_algo::monitor::MonitorConfig::default()
    }
}

fn drift() -> PatternChange {
    PatternChange {
        change_percent: 500.0,
        objects_percent: 40.0,
        read_share: 0.9,
    }
}

fn service_config(seed: u64, threads: usize, hot: Option<HotKeyConfig>) -> ServeConfig {
    ServeConfig {
        policy: Policy::Monitor,
        epochs: 4,
        period: 256,
        seed,
        night_every: 3,
        admission_limit: 40,
        monitor: small_monitor(),
        drift: Some(drift()),
        threads,
        hot,
        ..ServeConfig::default()
    }
}

proptest! {
    // Tiny batches over depth-1 channels: the producer blocks on nearly
    // every send, so the backpressure path is the common case here.
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn admission_accounting_balances_per_site_under_bursty_queues(
        instance_seed in 0u64..40,
        stream_seed in 0u64..1000,
        sites in 3usize..12,
        objects in 3usize..9,
        threads in 1usize..6,
        limit in 0u64..40,
        batch in 1usize..48,
    ) {
        let p = problem(sites, objects, instance_seed);
        let spec = IngestSpec {
            problem: &p,
            period: 300,
            seed: stream_seed,
            admission_limit: limit,
            threads,
            batch,
            depth: 1,
        };
        let mut scratch = IngestScratch::new();
        let mut reads = DenseMatrix::zeros(sites, objects);
        let mut writes = DenseMatrix::zeros(sites, objects);
        let out = ingest_epoch(&spec, &mut scratch, &mut reads, &mut writes);

        prop_assert!(out.report.balanced());
        for site in 0..sites {
            let offered = out.report.offered_by_site[site];
            let admitted = out.report.admitted_by_site[site];
            let shed = out.report.shed_by_site[site];
            prop_assert_eq!(offered, admitted + shed, "conservation at site {}", site);
            if limit > 0 {
                prop_assert!(admitted <= limit, "cap at site {}", site);
            } else {
                prop_assert_eq!(shed, 0);
            }
            prop_assert_eq!(scratch.queues[site].len() as u64, admitted);
            prop_assert!(
                scratch.queues[site].windows(2).all(|w| w[0].0 <= w[1].0),
                "queue at site {} must stay time-ordered", site
            );
        }
        // Every offered request lands in the observation window, shed or not.
        let window: u64 = reads.iter().chain(writes.iter()).sum();
        prop_assert_eq!(window, out.report.offered());
        prop_assert_eq!(
            out.admitted_reads + out.admitted_writes,
            out.report.offered() - out.report.shed()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn sharded_ingestion_matches_single_threaded_bitwise(
        instance_seed in 0u64..30,
        stream_seed in 0u64..1000,
        sites in 4usize..14,
        threads in 2usize..8,
        limit in 0u64..30,
    ) {
        let p = problem(sites, 6, instance_seed);
        let spec = |threads| IngestSpec {
            problem: &p,
            period: 300,
            seed: stream_seed,
            admission_limit: limit,
            threads,
            batch: 32,
            depth: 1,
        };
        let run = |threads| {
            let mut scratch = IngestScratch::new();
            let mut reads = DenseMatrix::zeros(sites, 6);
            let mut writes = DenseMatrix::zeros(sites, 6);
            let out = ingest_epoch(&spec(threads), &mut scratch, &mut reads, &mut writes);
            let window: Vec<u64> = reads.iter().chain(writes.iter()).copied().collect();
            (scratch.queues, out, window)
        };
        let (queues_1, out_1, window_1) = run(1);
        let (queues_t, out_t, window_t) = run(threads);
        prop_assert_eq!(queues_1, queues_t);
        prop_assert_eq!(out_1, out_t);
        prop_assert_eq!(window_1, window_t);
    }
}

#[test]
fn service_fingerprints_are_identical_across_ingest_threads() {
    let p = problem(10, 8, 21);
    for hot in [None, Some(HotKeyConfig::default())] {
        let base = run_service(&p, &service_config(21, 1, hot)).unwrap();
        for threads in [2usize, 4] {
            let other = run_service(&p, &service_config(21, threads, hot)).unwrap();
            assert_eq!(
                base.fingerprint(),
                other.fingerprint(),
                "threads={threads} hot={} drifted",
                hot.is_some()
            );
        }
    }
}

#[test]
fn hot_fast_path_never_bills_more_than_the_baseline() {
    let mut promoted_somewhere = false;
    for seed in [5u64, 11, 23] {
        let p = problem(12, 10, seed);
        let hot = run_service(&p, &service_config(seed, 1, Some(HotKeyConfig::default()))).unwrap();
        let base = run_service(&p, &service_config(seed, 1, None)).unwrap();
        assert!(
            hot.totals.total_ntc <= base.totals.total_ntc,
            "seed {seed}: hot billed {} vs baseline {}",
            hot.totals.total_ntc,
            base.totals.total_ntc
        );
        // Identical traffic either way; only the replica directory differs.
        assert_eq!(hot.totals.shed, base.totals.shed);
        promoted_somewhere |= hot.totals.hot_promotions > 0;
        assert_eq!(base.totals.hot_promotions, 0);
    }
    assert!(
        promoted_somewhere,
        "no seed promoted anything — the detector never engaged"
    );
}

#[test]
fn hot_state_survives_crash_recovery_bitwise() {
    let p = problem(8, 8, 17);
    let config = ServeConfig {
        wal: WalTuning {
            checkpoint_every: 2,
        },
        ..service_config(17, 1, Some(HotKeyConfig::default()))
    };
    let mut tracing = TracingStore::default();
    let baseline = run_service_durable(&p, &config, &mut tracing).unwrap();
    assert!(
        baseline.report.totals.hot_promotions > 0,
        "the run under test must exercise the hot path"
    );
    let fingerprint = baseline.report.fingerprint();

    let points = crash_points(tracing.ops());
    assert!(points.len() > 10, "only {} crash points", points.len());
    // Every third boundary keeps the suite fast; the full sweep lives in
    // crash_sim.rs.
    for &(op, cut) in points.iter().step_by(3) {
        let mut store = MemWalStore::from_bytes(tracing.contents_at(op, cut));
        let recovered = run_service_durable(&p, &config, &mut store)
            .unwrap_or_else(|e| panic!("crash point (op {op}, cut {cut}) failed: {e}"));
        assert_eq!(
            recovered.report.fingerprint(),
            fingerprint,
            "crash point (op {op}, cut {cut}) diverged with hot state"
        );
    }
}
