//! Demand forecasting for prediction-driven serve policies.
//!
//! The AGRA monitor is reactive: it retunes from the demand it has already
//! seen. The predictive policy family instead forecasts the next epoch's
//! demand and hands the *forecast* to the retune machinery, following the
//! online-algorithms-with-predictions framing of Zuo, Tang & Lee (2024):
//! a good forecaster lets the online policy approach the clairvoyant
//! optimum, while a bad one must not make it much worse than the reactive
//! baseline.
//!
//! Three forecasters are provided behind the [`Predictor`] trait, all pure
//! integer / fixed-point arithmetic so forecasts are bitwise identical
//! across platforms, thread counts, and crash/recovery cycles:
//!
//! * **last-value** — tomorrow looks like today (the implicit model of the
//!   reactive monitor, included as the degenerate baseline);
//! * **EWMA** — exponentially weighted moving average in Q10 fixed point,
//!   the same representation as the hot-key detector;
//! * **windowed linear regression** — integer least-squares slope over the
//!   trailing demand window, extrapolated one epoch ahead. This is the only
//!   forecaster that can see a ramp *before* its peak.
//!
//! Every forecaster tracks per-object demand and per-site aggregate demand
//! side by side; the serve loop uses object forecasts to shape the pattern
//! handed to the monitor and site aggregates for pre-staging replica
//! boosts. State snapshots ([`PredictSnapshot`]) ride the WAL (format v3)
//! so a recovered run resumes with the exact forecaster state of the
//! crashed one.

use std::collections::VecDeque;

use drp_core::CoreError;

/// Fixed-point shift shared with the hot-key detector (Q10).
const FP: u32 = 10;

/// Which forecaster a predictive policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Forecast = the most recent observation.
    LastValue,
    /// Forecast = fixed-point EWMA of the window.
    Ewma,
    /// Forecast = last value plus the least-squares slope of the window.
    Regression,
}

impl PredictorKind {
    /// Short name used in reports and bench output.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::LastValue => "last-value",
            PredictorKind::Ewma => "ewma",
            PredictorKind::Regression => "regression",
        }
    }
}

/// Knobs for the predictive policy family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictConfig {
    /// Demand window depth in epochs (also the regression span).
    pub window: usize,
    /// EWMA weight of the newest observation, in percent (1–100).
    pub alpha_pct: u64,
    /// A retune is accepted only if its predicted per-epoch saving repays
    /// the migration transfer cost within this many epochs.
    pub payback_epochs: u64,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            window: 4,
            alpha_pct: 60,
            payback_epochs: 2,
        }
    }
}

impl PredictConfig {
    /// Checks knob ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] naming the offending knob.
    pub fn validate(&self) -> drp_core::Result<()> {
        if self.window < 2 {
            return Err(CoreError::InvalidInstance {
                reason: format!("predict window {} must be at least 2", self.window),
            });
        }
        if self.alpha_pct == 0 || self.alpha_pct > 100 {
            return Err(CoreError::InvalidInstance {
                reason: format!("predict alpha {}% out of [1, 100]", self.alpha_pct),
            });
        }
        if self.payback_epochs == 0 {
            return Err(CoreError::InvalidInstance {
                reason: "predict payback horizon must be at least 1 epoch".into(),
            });
        }
        Ok(())
    }
}

/// A demand forecaster over per-object and per-site aggregate windows.
pub trait Predictor {
    /// Feeds one epoch of realized demand (reads per object, reads per
    /// site).
    fn observe(&mut self, objects: &[u64], sites: &[u64]);
    /// Forecasts the next epoch's per-object demand.
    fn forecast_objects(&self) -> Vec<u64>;
    /// Forecasts the next epoch's per-site aggregate demand.
    fn forecast_sites(&self) -> Vec<u64>;
}

/// Shared window/EWMA state behind every forecaster.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DemandState {
    window: usize,
    alpha_pct: u64,
    windows: VecDeque<Vec<u64>>,
    ewma: Vec<u64>,
    site_windows: VecDeque<Vec<u64>>,
    site_ewma: Vec<u64>,
}

impl DemandState {
    fn new(cfg: PredictConfig, num_objects: usize, num_sites: usize) -> Self {
        DemandState {
            window: cfg.window,
            alpha_pct: cfg.alpha_pct,
            windows: VecDeque::new(),
            ewma: vec![0; num_objects],
            site_windows: VecDeque::new(),
            site_ewma: vec![0; num_sites],
        }
    }

    fn observe(&mut self, objects: &[u64], sites: &[u64]) {
        let first = self.windows.is_empty();
        push_window(&mut self.windows, objects, self.window);
        push_window(&mut self.site_windows, sites, self.window);
        update_ewma(&mut self.ewma, objects, self.alpha_pct, first);
        update_ewma(&mut self.site_ewma, sites, self.alpha_pct, first);
    }

    fn last(windows: &VecDeque<Vec<u64>>, len: usize) -> Vec<u64> {
        windows.back().cloned().unwrap_or_else(|| vec![0; len])
    }
}

fn push_window(ring: &mut VecDeque<Vec<u64>>, demand: &[u64], depth: usize) {
    if ring.len() == depth {
        ring.pop_front();
    }
    ring.push_back(demand.to_vec());
}

fn update_ewma(ewma: &mut [u64], demand: &[u64], alpha_pct: u64, first: bool) {
    for (e, &d) in ewma.iter_mut().zip(demand) {
        if first {
            // Seed at full value so a cold forecaster degrades to
            // last-value instead of under-predicting by (100 - alpha)%.
            *e = d << FP;
        } else {
            *e = (alpha_pct * (d << FP) + (100 - alpha_pct) * *e) / 100;
        }
    }
}

/// Least-squares one-step extrapolation of one series in the ring.
///
/// The slope is `(L·Σxy − Σx·Σy) / (L·Σx² − (Σx)²)` with integer division
/// truncating toward zero; the forecast is the last value plus the slope,
/// clamped at zero. With fewer than two observations it degrades to the
/// last value.
fn regress_next(windows: &VecDeque<Vec<u64>>, index: usize) -> u64 {
    let len = windows.len();
    let last = windows.back().map_or(0, |w| w[index]);
    if len < 2 {
        return last;
    }
    let l = len as i128;
    let sum_x = l * (l - 1) / 2;
    let sum_x2 = (l - 1) * l * (2 * l - 1) / 6;
    let mut sum_y: i128 = 0;
    let mut sum_xy: i128 = 0;
    for (t, w) in windows.iter().enumerate() {
        let y = w[index] as i128;
        sum_y += y;
        sum_xy += t as i128 * y;
    }
    let den = l * sum_x2 - sum_x * sum_x;
    let slope = (l * sum_xy - sum_x * sum_y) / den;
    let forecast = last as i128 + slope;
    forecast.clamp(0, u64::MAX as i128) as u64
}

macro_rules! forecaster {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            state: DemandState,
        }

        impl $name {
            /// Creates a cold forecaster for the given instance shape.
            pub fn new(cfg: PredictConfig, num_objects: usize, num_sites: usize) -> Self {
                $name {
                    state: DemandState::new(cfg, num_objects, num_sites),
                }
            }
        }
    };
}

forecaster!(
    /// Forecasts the next epoch as an exact repeat of the last one.
    LastValuePredictor
);
forecaster!(
    /// Forecasts with a Q10 fixed-point exponentially weighted average.
    EwmaPredictor
);
forecaster!(
    /// Forecasts by extrapolating the windowed least-squares trend.
    RegressionPredictor
);

impl Predictor for LastValuePredictor {
    fn observe(&mut self, objects: &[u64], sites: &[u64]) {
        self.state.observe(objects, sites);
    }

    fn forecast_objects(&self) -> Vec<u64> {
        DemandState::last(&self.state.windows, self.state.ewma.len())
    }

    fn forecast_sites(&self) -> Vec<u64> {
        DemandState::last(&self.state.site_windows, self.state.site_ewma.len())
    }
}

impl Predictor for EwmaPredictor {
    fn observe(&mut self, objects: &[u64], sites: &[u64]) {
        self.state.observe(objects, sites);
    }

    fn forecast_objects(&self) -> Vec<u64> {
        self.state.ewma.iter().map(|e| e >> FP).collect()
    }

    fn forecast_sites(&self) -> Vec<u64> {
        self.state.site_ewma.iter().map(|e| e >> FP).collect()
    }
}

impl Predictor for RegressionPredictor {
    fn observe(&mut self, objects: &[u64], sites: &[u64]) {
        self.state.observe(objects, sites);
    }

    fn forecast_objects(&self) -> Vec<u64> {
        (0..self.state.ewma.len())
            .map(|k| regress_next(&self.state.windows, k))
            .collect()
    }

    fn forecast_sites(&self) -> Vec<u64> {
        (0..self.state.site_ewma.len())
            .map(|i| regress_next(&self.state.site_windows, i))
            .collect()
    }
}

/// Forecaster state as journaled to the WAL (format v3).
///
/// `deferred` carries the scheme text of a retune the payback gate has
/// parked, so a recovered run re-evaluates exactly the candidate the
/// crashed run was holding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictSnapshot {
    /// Trailing per-object demand window, oldest first.
    pub windows: Vec<Vec<u64>>,
    /// Per-object EWMA in Q10 fixed point.
    pub ewma: Vec<u64>,
    /// Trailing per-site aggregate demand window, oldest first.
    pub site_windows: Vec<Vec<u64>>,
    /// Per-site EWMA in Q10 fixed point.
    pub site_ewma: Vec<u64>,
    /// Scheme text of a deferred retune candidate, if any.
    pub deferred: Option<Vec<u8>>,
}

/// A snapshot-able forecaster of any [`PredictorKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DemandPredictor {
    /// Last-value forecaster.
    LastValue(LastValuePredictor),
    /// EWMA forecaster.
    Ewma(EwmaPredictor),
    /// Windowed-regression forecaster.
    Regression(RegressionPredictor),
}

impl DemandPredictor {
    /// Creates a cold forecaster of the given kind.
    pub fn new(
        kind: PredictorKind,
        cfg: PredictConfig,
        num_objects: usize,
        num_sites: usize,
    ) -> Self {
        match kind {
            PredictorKind::LastValue => {
                DemandPredictor::LastValue(LastValuePredictor::new(cfg, num_objects, num_sites))
            }
            PredictorKind::Ewma => {
                DemandPredictor::Ewma(EwmaPredictor::new(cfg, num_objects, num_sites))
            }
            PredictorKind::Regression => {
                DemandPredictor::Regression(RegressionPredictor::new(cfg, num_objects, num_sites))
            }
        }
    }

    /// The forecaster's kind.
    pub fn kind(&self) -> PredictorKind {
        match self {
            DemandPredictor::LastValue(_) => PredictorKind::LastValue,
            DemandPredictor::Ewma(_) => PredictorKind::Ewma,
            DemandPredictor::Regression(_) => PredictorKind::Regression,
        }
    }

    fn state(&self) -> &DemandState {
        match self {
            DemandPredictor::LastValue(p) => &p.state,
            DemandPredictor::Ewma(p) => &p.state,
            DemandPredictor::Regression(p) => &p.state,
        }
    }

    fn state_mut(&mut self) -> &mut DemandState {
        match self {
            DemandPredictor::LastValue(p) => &mut p.state,
            DemandPredictor::Ewma(p) => &mut p.state,
            DemandPredictor::Regression(p) => &mut p.state,
        }
    }

    /// Captures the forecaster state for the WAL; the caller supplies the
    /// rendered deferred-candidate scheme, if one is parked.
    pub fn snapshot(&self, deferred: Option<Vec<u8>>) -> PredictSnapshot {
        let state = self.state();
        PredictSnapshot {
            windows: state.windows.iter().cloned().collect(),
            ewma: state.ewma.clone(),
            site_windows: state.site_windows.iter().cloned().collect(),
            site_ewma: state.site_ewma.clone(),
            deferred,
        }
    }

    /// Rebuilds a forecaster from a WAL snapshot (the `deferred` field is
    /// the caller's to interpret).
    pub fn restore(kind: PredictorKind, cfg: PredictConfig, snap: &PredictSnapshot) -> Self {
        let mut predictor = DemandPredictor::new(kind, cfg, snap.ewma.len(), snap.site_ewma.len());
        let state = predictor.state_mut();
        state.windows = snap.windows.iter().cloned().collect();
        state.ewma = snap.ewma.clone();
        state.site_windows = snap.site_windows.iter().cloned().collect();
        state.site_ewma = snap.site_ewma.clone();
        predictor
    }
}

impl Predictor for DemandPredictor {
    fn observe(&mut self, objects: &[u64], sites: &[u64]) {
        match self {
            DemandPredictor::LastValue(p) => p.observe(objects, sites),
            DemandPredictor::Ewma(p) => p.observe(objects, sites),
            DemandPredictor::Regression(p) => p.observe(objects, sites),
        }
    }

    fn forecast_objects(&self) -> Vec<u64> {
        match self {
            DemandPredictor::LastValue(p) => p.forecast_objects(),
            DemandPredictor::Ewma(p) => p.forecast_objects(),
            DemandPredictor::Regression(p) => p.forecast_objects(),
        }
    }

    fn forecast_sites(&self) -> Vec<u64> {
        match self {
            DemandPredictor::LastValue(p) => p.forecast_sites(),
            DemandPredictor::Ewma(p) => p.forecast_sites(),
            DemandPredictor::Regression(p) => p.forecast_sites(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(kind: PredictorKind, series: &[&[u64]]) -> DemandPredictor {
        let sites = vec![0u64; 2];
        let mut p = DemandPredictor::new(kind, PredictConfig::default(), series[0].len(), 2);
        for epoch in series {
            p.observe(epoch, &sites);
        }
        p
    }

    #[test]
    fn cold_forecasters_degrade_to_last_value() {
        for kind in [
            PredictorKind::LastValue,
            PredictorKind::Ewma,
            PredictorKind::Regression,
        ] {
            let p = feed(kind, &[&[10, 40]]);
            assert_eq!(p.forecast_objects(), vec![10, 40], "{}", kind.name());
        }
        let cold = DemandPredictor::new(PredictorKind::Regression, PredictConfig::default(), 3, 2);
        assert_eq!(cold.forecast_objects(), vec![0, 0, 0]);
    }

    #[test]
    fn regression_extrapolates_a_ramp() {
        let p = feed(PredictorKind::Regression, &[&[10], &[20], &[30], &[40]]);
        assert_eq!(p.forecast_objects(), vec![50]);
        // A falling ramp is clamped at zero rather than wrapping.
        let p = feed(PredictorKind::Regression, &[&[20], &[10], &[2]]);
        assert_eq!(p.forecast_objects(), vec![0]);
    }

    #[test]
    fn ewma_tracks_but_lags_a_step() {
        let p = feed(PredictorKind::Ewma, &[&[100], &[100], &[200]]);
        let f = p.forecast_objects()[0];
        assert!(f > 100 && f < 200, "forecast {f}");
        // Last-value jumps straight to the step.
        let p = feed(PredictorKind::LastValue, &[&[100], &[100], &[200]]);
        assert_eq!(p.forecast_objects(), vec![200]);
    }

    #[test]
    fn windows_stay_bounded_and_sites_are_tracked() {
        let cfg = PredictConfig {
            window: 3,
            ..PredictConfig::default()
        };
        let mut p = DemandPredictor::new(PredictorKind::Regression, cfg, 1, 2);
        for t in 0..10u64 {
            p.observe(&[t], &[t * 2, t * 3]);
        }
        let snap = p.snapshot(None);
        assert_eq!(snap.windows.len(), 3);
        assert_eq!(snap.site_windows.len(), 3);
        assert_eq!(p.forecast_sites(), vec![20, 30]);
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        for kind in [
            PredictorKind::LastValue,
            PredictorKind::Ewma,
            PredictorKind::Regression,
        ] {
            let p = feed(kind, &[&[5, 9], &[7, 3], &[8, 1]]);
            let snap = p.snapshot(Some(b"scheme".to_vec()));
            let q = DemandPredictor::restore(kind, PredictConfig::default(), &snap);
            assert_eq!(p, q, "{}", kind.name());
            assert_eq!(p.forecast_objects(), q.forecast_objects());
            assert_eq!(snap.deferred.as_deref(), Some(&b"scheme"[..]));
        }
    }

    #[test]
    fn identical_feeds_forecast_identically() {
        let a = feed(PredictorKind::Ewma, &[&[13, 7], &[29, 5], &[31, 2]]);
        let b = feed(PredictorKind::Ewma, &[&[13, 7], &[29, 5], &[31, 2]]);
        assert_eq!(a.forecast_objects(), b.forecast_objects());
        assert_eq!(a.forecast_sites(), b.forecast_sites());
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let bad = PredictConfig {
            window: 1,
            ..PredictConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = PredictConfig {
            alpha_pct: 0,
            ..PredictConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = PredictConfig {
            alpha_pct: 101,
            ..PredictConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = PredictConfig {
            payback_epochs: 0,
            ..PredictConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(PredictConfig::default().validate().is_ok());
    }
}
