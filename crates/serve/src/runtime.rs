//! The closed-loop service: epochs of streamed traffic, boundary decisions,
//! live migration of the decided scheme.
//!
//! [`run_service`] mounts a [`Problem`] on the epoch simulator and runs
//! [`ServeConfig::epochs`] periods. Each epoch serves a freshly streamed
//! window of requests against the *realized* directory while the migration
//! executor works the directory toward the policy's current *target*
//! scheme. At the boundary the observed per-(site, object) counters become
//! a fresh [`Problem`] snapshot and the [`Policy`] decides:
//!
//! * [`Policy::Static`] — never adapts; the bootstrap GRA scheme is served
//!   for the whole run (the frozen baseline).
//! * [`Policy::Monitor`] — the Section 5 loop: daytime boundaries feed the
//!   window to [`ReplicationMonitor::ingest_statistics`] (AGRA re-tune of
//!   drifted objects), every [`ServeConfig::night_every`]-th boundary runs
//!   a full nightly GRA rebuild instead.
//! * [`Policy::Adr`] — re-solves the ADR tree heuristic on every window
//!   (requires a tree cost metric).
//!
//! Under [`ServeConfig::drift`], the true pattern shifts every epoch, so
//! the adaptive policies chase it while the static baseline decays.
//!
//! # Determinism
//!
//! Every random draw comes from a stream seeded by FNV-mixing the master
//! seed with a fixed stream tag and the epoch index, the simulator is a
//! single-threaded event loop, and the only multi-threaded component (GRA
//! population scoring under the `parallel` feature) is bitwise-order
//! independent. Same seed ⇒ byte-identical [`ServiceReport`], regardless
//! of `DRP_THREADS` or the `parallel` feature.

use std::sync::Arc;

use drp_algo::adr::{tree_adjacency, Adr};
use drp_algo::monitor::{MonitorAction, MonitorConfig, ReplicationMonitor};
use drp_core::format::{write_instance, write_scheme};
use drp_core::migration::{plan_migration, MigrationPlan};
use drp_core::telemetry::{self, Recorder};
use drp_core::{CoreError, Problem, ReplicationAlgorithm, ReplicationScheme, ServeError};
use drp_net::sim::{FaultPlan, FaultStats};
use drp_workload::{zipf, PatternChange, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use crate::epoch::MigrationTuning;
use crate::epoch::{run_epoch, EpochSpec, MigEvent};
use crate::hotkey::{self, HotKeyConfig, HotKeyDetector};
use crate::ingest::IngestScratch;
use crate::predict::{DemandPredictor, PredictConfig, PredictSnapshot, Predictor, PredictorKind};
use crate::recovery::{recover, RecoveryInfo, Resume};
use crate::report::{EpochReport, ServiceReport};
use crate::wal::{
    decode_stream, Checkpoint, MonitorSnapshot, RetuneKind, WalRecord, WalStore, WalTuning,
    WAL_VERSION,
};

/// How the service adapts at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Serve the bootstrap scheme forever.
    Static,
    /// Monitor + AGRA by day, GRA by night.
    Monitor,
    /// Re-run the ADR tree heuristic on every window.
    Adr,
    /// The monitor loop driven by EWMA demand forecasts: retunes act on the
    /// predicted next window and must pass the migration payback gate.
    PredictiveEwma,
    /// Like [`Policy::PredictiveEwma`] with windowed linear regression —
    /// the only forecaster that anticipates a ramp before its peak.
    PredictiveRegression,
}

impl Policy {
    /// The name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Static => "static",
            Policy::Monitor => "monitor",
            Policy::Adr => "adr",
            Policy::PredictiveEwma => "predictive-ewma",
            Policy::PredictiveRegression => "predictive-regression",
        }
    }

    /// The forecaster a predictive policy runs (`None` for the reactive
    /// policies).
    pub fn predictor_kind(self) -> Option<PredictorKind> {
        match self {
            Policy::PredictiveEwma => Some(PredictorKind::Ewma),
            Policy::PredictiveRegression => Some(PredictorKind::Regression),
            _ => None,
        }
    }
}

/// Faults injected into every serving epoch.
///
/// Partitions are deliberately absent: the epoch's migration ledger charges
/// fetch data at send time, which matches the simulator's NTC accounting
/// for delivered and randomly dropped messages but not for partition-blocked
/// ones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Crash windows `(site, from, until)` in epoch-local time.
    pub crashes: Vec<(usize, u64, u64)>,
    /// I.i.d. message drop probability.
    pub drop_probability: f64,
    /// Maximum extra per-message delivery delay.
    pub jitter: u64,
}

impl FaultSpec {
    fn plan(&self, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for &(site, from, until) in &self.crashes {
            plan = plan.crash(site, from, until);
        }
        if self.drop_probability > 0.0 {
            plan = plan.drop_probability(self.drop_probability);
        }
        if self.jitter > 0 {
            plan = plan.jitter(self.jitter);
        }
        plan
    }
}

/// Configuration of one service run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Adaptation policy.
    pub policy: Policy,
    /// Number of serving epochs.
    pub epochs: usize,
    /// Simulated time units per epoch; request timestamps fall in
    /// `[0, period)`.
    pub period: u64,
    /// Master seed; every internal stream derives from it.
    pub seed: u64,
    /// Every `k`-th boundary is a nightly GRA rebuild (0 = never).
    pub night_every: usize,
    /// Per-site admitted-request cap per epoch (0 = unlimited).
    pub admission_limit: u64,
    /// Monitor settings (GRA, AGRA, change threshold).
    pub monitor: MonitorConfig,
    /// Pattern drift applied to the true workload before every epoch after
    /// the first.
    pub drift: Option<PatternChange>,
    /// Faults injected into every epoch.
    pub faults: Option<FaultSpec>,
    /// A scenario compiled into per-epoch drift and fault windows. Mutually
    /// exclusive with `drift`/`faults`.
    pub scenario: Option<Scenario>,
    /// Forecaster knobs for the predictive policies (ignored otherwise).
    pub predict: PredictConfig,
    /// Migration executor timers.
    pub tuning: MigrationTuning,
    /// Durability knobs (used by [`run_service_durable`] only).
    pub wal: WalTuning,
    /// Ingestion worker threads per epoch (0 = size from the global
    /// worker pool, i.e. `DRP_THREADS` or the core count). Purely a
    /// throughput knob: every value produces the same report bitwise, so
    /// it is excluded from [`config_hash`] and WAL binding.
    pub threads: usize,
    /// Hot-object fast path: windowed demand detector plus capacity-checked
    /// replica boosts between retunes. `None` disables it.
    pub hot: Option<HotKeyConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: Policy::Monitor,
            epochs: 3,
            period: 256,
            seed: 0,
            night_every: 0,
            admission_limit: 0,
            monitor: MonitorConfig::default(),
            drift: None,
            faults: None,
            scenario: None,
            predict: PredictConfig::default(),
            tuning: MigrationTuning::default(),
            wal: WalTuning::default(),
            threads: 0,
            hot: None,
        }
    }
}

/// FNV-1a over a word sequence: the seed-mixing scheme shared with the
/// experiment harness, used to derive independent rng streams.
pub(crate) fn mix(words: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

// Stream tags for `mix([seed, TAG, ...])`.
pub(crate) const TAG_BOOT: u64 = 1;
pub(crate) const TAG_DRIFT: u64 = 2;
pub(crate) const TAG_TRACE: u64 = 3;
const TAG_DECIDE: u64 = 4;
const TAG_FAULT: u64 = 5;
pub(crate) const TAG_ORACLE: u64 = 6;

/// FNV-1a binding a WAL to its run: hashes the instance's exact text
/// rendering and the config's debug rendering, so recovery refuses to
/// resume a log under a different problem, policy, seed derivation or
/// tuning. [`ServeConfig::threads`] is canonicalized to 0 first — thread
/// count changes throughput, never results, so a log written under
/// `--threads 4` must resume cleanly under `--threads 1`.
pub(crate) fn config_hash(problem: &Problem, config: &ServeConfig) -> u64 {
    let canon = ServeConfig {
        threads: 0,
        ..config.clone()
    };
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(write_instance(problem).as_bytes());
    eat(format!("{canon:?}").as_bytes());
    hash
}

fn wal_io(e: std::io::Error) -> CoreError {
    ServeError::WalIo {
        reason: e.to_string(),
    }
    .into()
}

/// The run's per-epoch truth shifts: either the plain [`ServeConfig::drift`]
/// applied every epoch, or a [`Scenario`] compiled into one shift per
/// epoch. Shared by the loop and recovery's replay so both derive the same
/// truth from the same seed streams.
pub(crate) struct ShiftPlan {
    shifts: Option<Vec<drp_workload::EpochShift>>,
}

impl ShiftPlan {
    pub(crate) fn new(problem: &Problem, config: &ServeConfig) -> drp_core::Result<Self> {
        let shifts = match config.scenario {
            Some(scenario) => Some(
                scenario
                    .compile(config.epochs, problem.num_sites(), config.period)
                    .map_err(|e| CoreError::InvalidInstance {
                        reason: format!("bad scenario: {e}"),
                    })?,
            ),
            None => None,
        };
        Ok(ShiftPlan { shifts })
    }

    /// Applies epoch `e`'s shift to the truth in place (`e > 0`). The
    /// deterministic surges go first, then one TAG_DRIFT stream per shifted
    /// epoch feeds the Zipf re-skew and the pattern drift, so the replay in
    /// recovery is exact.
    pub(crate) fn advance(
        &self,
        truth: &mut Problem,
        config: &ServeConfig,
        e: usize,
    ) -> drp_core::Result<()> {
        static NO_SURGES: Vec<drp_workload::ObjectSurge> = Vec::new();
        let (drift, zipf_exponent, surges) = match &self.shifts {
            Some(plan) => (
                plan[e].drift.as_ref(),
                plan[e].zipf_exponent,
                &plan[e].surges,
            ),
            None => (config.drift.as_ref(), None, &NO_SURGES),
        };
        if !surges.is_empty() {
            let mut reads = truth.read_matrix().clone();
            for surge in surges {
                surge.apply(&mut reads);
            }
            *truth = truth.with_patterns(reads, truth.write_matrix().clone())?;
        }
        if drift.is_none() && zipf_exponent.is_none() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(mix(&[config.seed, TAG_DRIFT, e as u64]));
        if let Some(s) = zipf_exponent {
            let mut reads = truth.read_matrix().clone();
            zipf::apply_popularity(&mut reads, s, &mut rng);
            *truth = truth.with_patterns(reads, truth.write_matrix().clone())?;
        }
        if let Some(drift) = drift {
            *truth = drift
                .apply(truth, &mut rng)
                .map_err(|err| CoreError::InvalidInstance {
                    reason: format!("drift failed: {err}"),
                })?
                .problem;
        }
        Ok(())
    }

    /// The fault spec active during epoch `e`.
    fn fault_spec(&self, config: &ServeConfig, e: usize) -> Option<FaultSpec> {
        match &self.shifts {
            Some(plan) => plan[e].faults.as_ref().map(|f| FaultSpec {
                crashes: f.crashes.clone(),
                drop_probability: f.drop_probability,
                jitter: f.jitter,
            }),
            None => config.faults.clone(),
        }
    }
}

/// Forecaster state of a predictive policy: the demand predictor plus any
/// retune candidate the payback gate has parked for a later boundary.
struct PredictState {
    predictor: DemandPredictor,
    deferred: Option<ReplicationScheme>,
}

impl PredictState {
    fn fresh(kind: PredictorKind, config: &ServeConfig, problem: &Problem) -> Self {
        PredictState {
            predictor: DemandPredictor::new(
                kind,
                config.predict,
                problem.num_objects(),
                problem.num_sites(),
            ),
            deferred: None,
        }
    }

    fn restore(
        kind: PredictorKind,
        config: &ServeConfig,
        snap: &PredictSnapshot,
        truth: &Problem,
    ) -> drp_core::Result<Self> {
        let deferred = match &snap.deferred {
            None => None,
            Some(text) => {
                let text = std::str::from_utf8(text).map_err(|e| ServeError::WalMismatch {
                    reason: format!("deferred scheme is not utf-8: {e}"),
                })?;
                Some(drp_core::format::read_scheme(text, truth).map_err(|e| {
                    CoreError::from(ServeError::WalMismatch {
                        reason: format!("deferred scheme: {e}"),
                    })
                })?)
            }
        };
        Ok(PredictState {
            predictor: DemandPredictor::restore(kind, config.predict, snap),
            deferred,
        })
    }

    fn snapshot(&self) -> PredictSnapshot {
        self.predictor.snapshot(
            self.deferred
                .as_ref()
                .map(|scheme| write_scheme(scheme).into_bytes()),
        )
    }
}

/// Rescales the observed window's read pattern so each object's column
/// totals the forecast demand (site proportions preserved, u128 interim to
/// dodge overflow). The write pattern is untouched: the forecasters track
/// read demand, which is what drives replica placement.
fn forecast_problem(observed: &Problem, forecast: &[u64]) -> drp_core::Result<Problem> {
    let mut reads = observed.read_matrix().clone();
    for (k, &demand) in forecast.iter().enumerate().take(observed.num_objects()) {
        let current: u64 = (0..observed.num_sites()).map(|i| *reads.get(i, k)).sum();
        let predicted = demand.max(1);
        if current == 0 || predicted == current {
            continue;
        }
        for i in 0..observed.num_sites() {
            let v = reads.get_mut(i, k);
            *v = (u128::from(*v) * u128::from(predicted) / u128::from(current)) as u64;
        }
    }
    observed.with_patterns(reads, observed.write_matrix().clone())
}

/// What [`execute_migration`] did.
#[derive(Debug, Clone)]
pub struct MigrationOutcome {
    /// The directory after the final round (equals the plan's target when
    /// the migration converged).
    pub scheme: ReplicationScheme,
    /// Whether the directory reached the target.
    pub converged: bool,
    /// Fetch rounds used (1 without faults).
    pub rounds: usize,
    /// Total NTC of the fetch traffic.
    pub migration_ntc: u64,
    /// Replica installs across all rounds.
    pub installed: usize,
    /// Deallocations across all rounds.
    pub deallocated: usize,
    /// Fetch retries across all rounds.
    pub retries: u64,
    /// Fault counters of the first (faulted) round.
    pub fault_stats: FaultStats,
}

/// Executes a [`MigrationPlan`] on the simulator with no serving traffic:
/// the standalone form of the live migration executor, used to study its
/// fault tolerance.
///
/// Faults apply to the first round only — they model a crash *during* the
/// migration; once the fault window has passed, the remaining additions are
/// re-planned against the surviving directory and fetched cleanly, so a
/// valid plan always converges.
///
/// # Errors
///
/// Propagates shape errors from re-planning and simulator construction.
pub fn execute_migration(
    problem: &Problem,
    scheme: &ReplicationScheme,
    plan: &MigrationPlan,
    faults: Option<FaultPlan>,
    tuning: MigrationTuning,
) -> drp_core::Result<MigrationOutcome> {
    let target = plan.apply(problem, scheme)?;
    let mut current = scheme.clone();
    let mut outcome = MigrationOutcome {
        scheme: current.clone(),
        converged: false,
        rounds: 0,
        migration_ntc: 0,
        installed: 0,
        deallocated: 0,
        retries: 0,
        fault_stats: FaultStats::default(),
    };
    const MAX_ROUNDS: usize = 16;
    let mut scratch = IngestScratch::new();
    for round in 0..MAX_ROUNDS {
        let step = plan_migration(problem, &current, &target)?;
        if step.moves() == 0 {
            outcome.converged = true;
            break;
        }
        let epoch = run_epoch(
            &EpochSpec {
                problem,
                scheme: &current,
                plan: Some(&step),
                period: 0,
                admission_limit: 0,
                tuning,
                faults: if round == 0 { faults.clone() } else { None },
                seed: 0,
                traffic: false,
                threads: 1,
            },
            &mut scratch,
            telemetry::noop(),
        )?;
        outcome.rounds += 1;
        outcome.migration_ntc += epoch.migration_ntc;
        outcome.installed += epoch.counters.installed;
        outcome.deallocated += epoch.counters.deallocated;
        outcome.retries += epoch.counters.retries;
        if round == 0 {
            outcome.fault_stats = epoch.fault_stats;
        }
        current = epoch.scheme;
    }
    if plan_migration(problem, &current, &target)?.moves() == 0 {
        outcome.converged = true;
    }
    outcome.scheme = current;
    Ok(outcome)
}

/// Runs the service without telemetry.
///
/// # Errors
///
/// Propagates instance-shape, solver and simulator errors; rejects
/// [`Policy::Adr`] on non-tree cost metrics and degenerate tuning up
/// front.
pub fn run_service(problem: &Problem, config: &ServeConfig) -> drp_core::Result<ServiceReport> {
    run_service_recorded(problem, config, telemetry::noop())
}

/// Runs the service, emitting `serve.*` spans and counters to `recorder`.
///
/// # Errors
///
/// See [`run_service`].
pub fn run_service_recorded(
    problem: &Problem,
    config: &ServeConfig,
    recorder: Arc<dyn Recorder>,
) -> drp_core::Result<ServiceReport> {
    run_loop(problem, config, recorder, None, None, None)
}

/// Runs the service and scores it against the offline-optimal replay
/// oracle: the run's epoch-start schemes are re-costed under the oracle's
/// clean replay model and compared against the cheapest trajectory a
/// full-knowledge scheduler could have taken (see [`crate::oracle`]). The
/// returned report carries the resulting
/// [`competitive_ratio`](ServiceReport::competitive_ratio), which is
/// `>= 1.0` by construction.
///
/// # Errors
///
/// See [`run_service`]; additionally propagates solver errors from the
/// oracle's hindsight re-solves.
pub fn run_service_with_oracle(
    problem: &Problem,
    config: &ServeConfig,
) -> drp_core::Result<(ServiceReport, crate::oracle::OracleReport)> {
    let mut schemes = Vec::with_capacity(config.epochs);
    let mut report = run_loop(
        problem,
        config,
        telemetry::noop(),
        None,
        None,
        Some(&mut schemes),
    )?;
    let oracle = crate::oracle::evaluate(problem, config, &schemes)?;
    report.competitive_ratio = oracle.competitive_ratio;
    Ok((report, oracle))
}

/// A [`ServiceReport`] plus what recovery found when the run resumed from
/// an existing WAL.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableOutcome {
    /// The complete run report — bitwise-identical to the report an
    /// uncrashed in-memory run of the same `(problem, config)` produces.
    pub report: ServiceReport,
    /// `Some` when the store held a prior run's log and the run resumed
    /// from it; `None` for a fresh log.
    pub recovery: Option<RecoveryInfo>,
}

/// Runs the service in durable mode: every epoch is journaled to `store`
/// (see [`crate::wal`] for the record grammar) and compacted into periodic
/// checkpoints per [`ServeConfig::wal`]. If `store` already holds a log
/// for this exact `(problem, config)`, the run *recovers*: committed
/// epochs are restored from the log, a partially journaled epoch is
/// re-run deterministically, and the final report is bitwise-identical to
/// an uncrashed run — the crash-simulation suite enumerates every record
/// boundary and torn prefix to certify exactly that.
///
/// # Errors
///
/// Everything [`run_service`] rejects, plus [`ServeError`] wrapped in
/// [`CoreError::Serve`]: `WalMismatch` when the log belongs to a different
/// run, `WalIo` on store failures. Torn or corrupt log tails are NOT
/// errors — recovery truncates to the last commit point and reports the
/// damage in [`DurableOutcome::recovery`].
pub fn run_service_durable(
    problem: &Problem,
    config: &ServeConfig,
    store: &mut dyn WalStore,
) -> drp_core::Result<DurableOutcome> {
    run_service_durable_recorded(problem, config, store, telemetry::noop())
}

/// [`run_service_durable`] with telemetry.
///
/// # Errors
///
/// See [`run_service_durable`].
pub fn run_service_durable_recorded(
    problem: &Problem,
    config: &ServeConfig,
    store: &mut dyn WalStore,
    recorder: Arc<dyn Recorder>,
) -> drp_core::Result<DurableOutcome> {
    let bytes = store.load().map_err(wal_io)?;
    let run_start = WalRecord::RunStart {
        version: WAL_VERSION,
        seed: config.seed,
        config_hash: config_hash(problem, config),
    }
    .frame();
    if bytes.is_empty() {
        store.append(&run_start).map_err(wal_io)?;
        let mut ctx = WalCtx {
            store,
            run_start,
            since_checkpoint: 0,
        };
        let report = run_loop(problem, config, recorder, None, Some(&mut ctx), None)?;
        return Ok(DurableOutcome {
            report,
            recovery: None,
        });
    }
    let decoded = decode_stream(&bytes);
    let recovered = recover(problem, config, &decoded.records, decoded.damage)?;
    // Truncate to the commit point: re-framing the kept records is
    // byte-identical to what was originally written.
    let kept: Vec<u8> = decoded.records[..recovered.kept]
        .iter()
        .flat_map(WalRecord::frame)
        .collect();
    store.reset(&kept).map_err(wal_io)?;
    let mut ctx = WalCtx {
        store,
        run_start,
        since_checkpoint: recovered.since_checkpoint,
    };
    let report = run_loop(
        problem,
        config,
        recorder,
        Some(recovered.resume),
        Some(&mut ctx),
        None,
    )?;
    Ok(DurableOutcome {
        report,
        recovery: Some(recovered.info),
    })
}

/// Journaling context threaded through the durable loop.
struct WalCtx<'a> {
    store: &'a mut dyn WalStore,
    /// Framed `RunStart`, re-written at every compaction.
    run_start: Vec<u8>,
    /// Epochs committed since the last checkpoint.
    since_checkpoint: usize,
}

impl WalCtx<'_> {
    fn append(&mut self, records: &[WalRecord]) -> drp_core::Result<()> {
        let bytes: Vec<u8> = records.iter().flat_map(WalRecord::frame).collect();
        self.store.append(&bytes).map_err(wal_io)
    }

    /// Compacts the log to `RunStart` + one checkpoint.
    fn checkpoint(&mut self, cp: Checkpoint) -> drp_core::Result<()> {
        let mut bytes = self.run_start.clone();
        bytes.extend_from_slice(&WalRecord::Checkpoint(cp).frame());
        self.store.reset(&bytes).map_err(wal_io)?;
        self.since_checkpoint = 0;
        Ok(())
    }
}

fn snapshot_monitor(monitor: &ReplicationMonitor) -> drp_core::Result<MonitorSnapshot> {
    let population = monitor
        .population()
        .iter()
        .map(|c| {
            let bits = u32::try_from(c.len()).map_err(|_| ServeError::FrameOverflow {
                what: "monitor genome bits",
                value: c.len() as u64,
                limit: u64::from(u32::MAX),
            })?;
            Ok((bits, c.words().to_vec()))
        })
        .collect::<drp_core::Result<Vec<_>>>()?;
    Ok(MonitorSnapshot {
        problem: write_instance(monitor.problem()).into_bytes(),
        population,
    })
}

/// The shared serving loop: fresh and recovered, in-memory and durable.
/// `schemes_out`, when present, collects the realized scheme at the start
/// of every epoch — the online trajectory the oracle scores.
fn run_loop(
    problem: &Problem,
    config: &ServeConfig,
    recorder: Arc<dyn Recorder>,
    resume: Option<Resume>,
    mut wal: Option<&mut WalCtx<'_>>,
    mut schemes_out: Option<&mut Vec<ReplicationScheme>>,
) -> drp_core::Result<ServiceReport> {
    let _run_span = telemetry::span(recorder.as_ref(), "serve.run");
    if config.policy == Policy::Adr && tree_adjacency(problem.costs()).is_none() {
        return Err(CoreError::InvalidInstance {
            reason: "the adr policy requires a tree cost metric".into(),
        });
    }
    if let Some(drift) = &config.drift {
        drift.validate().map_err(|e| CoreError::InvalidInstance {
            reason: format!("bad drift spec: {e}"),
        })?;
    }
    if config.scenario.is_some() && (config.drift.is_some() || config.faults.is_some()) {
        return Err(CoreError::InvalidInstance {
            reason: "a scenario is mutually exclusive with explicit drift/faults".into(),
        });
    }
    if config.policy.predictor_kind().is_some() {
        config.predict.validate()?;
    }
    config.tuning.validate()?;
    config.wal.validate()?;
    if let Some(hot) = &config.hot {
        hot.validate()?;
    }
    let shift_plan = ShiftPlan::new(problem, config)?;
    let threads = if config.threads == 0 {
        drp_net::pool::WorkerPool::global().threads()
    } else {
        config.threads
    };

    // Bootstrap (or resume): one GRA build shared by every policy, so all
    // runs start from the same realized scheme and differ only in how they
    // adapt. A recovered run restores the committed loop state instead.
    let (
        start_epoch,
        mut truth,
        mut monitor,
        mut realized,
        mut target,
        mut epochs,
        mut adaptations,
        mut rebuilds,
        resumed_hot,
        resumed_predictor,
    ) = match resume {
        Some(r) => (
            r.start_epoch,
            r.truth,
            r.monitor,
            r.realized,
            r.target,
            r.epochs,
            r.adaptations,
            r.rebuilds,
            r.hot,
            r.predictor,
        ),
        None => {
            let mut boot_rng = StdRng::seed_from_u64(mix(&[config.seed, TAG_BOOT]));
            let monitor = ReplicationMonitor::bootstrap(
                problem.clone(),
                config.monitor.clone(),
                &mut boot_rng,
            )?;
            let realized = monitor.scheme().clone();
            let target = realized.clone();
            (
                0,
                problem.clone(),
                monitor,
                realized,
                target,
                Vec::with_capacity(config.epochs),
                0,
                0,
                None,
                None,
            )
        }
    };

    // Hot-object fast path: detector plus the overlay of boosted replicas
    // it currently maintains on the target. Restored exactly from the WAL
    // snapshot on recovery.
    let mut hot_state: Option<(HotKeyDetector, Vec<(usize, usize)>)> =
        config.hot.map(|hcfg| match &resumed_hot {
            Some(snap) => HotKeyDetector::restore(hcfg, snap),
            None => (HotKeyDetector::new(hcfg, problem.num_objects()), Vec::new()),
        });

    // Forecaster state for the predictive policies, restored bitwise from
    // the WAL snapshot on recovery (including any payback-deferred retune
    // candidate).
    let mut predict_state: Option<PredictState> = match config.policy.predictor_kind() {
        Some(kind) => Some(match &resumed_predictor {
            Some(snap) => PredictState::restore(kind, config, snap, &truth)?,
            None => PredictState::fresh(kind, config, problem),
        }),
        None => None,
    };

    // One scratch for the whole run: arrival buffers, admitted queues and
    // the producer's pull buffer are reused epoch after epoch instead of
    // re-materializing the full trace each time.
    let mut scratch = IngestScratch::new();

    for e in start_epoch..config.epochs {
        let _epoch_span = telemetry::span(recorder.as_ref(), "serve.epoch");
        if e > 0 {
            shift_plan.advance(&mut truth, config, e)?;
        }
        if let Some(out) = schemes_out.as_deref_mut() {
            out.push(realized.clone());
        }

        let plan = if realized != target {
            Some(plan_migration(&truth, &realized, &target)?)
        } else {
            None
        };
        if let Some(ctx) = wal.as_deref_mut() {
            ctx.append(&[WalRecord::EpochStart { epoch: e as u64 }])?;
        }
        let outcome = run_epoch(
            &EpochSpec {
                problem: &truth,
                scheme: &realized,
                plan: plan.as_ref(),
                period: config.period,
                admission_limit: config.admission_limit,
                tuning: config.tuning,
                faults: shift_plan
                    .fault_spec(config, e)
                    .map(|f| f.plan(mix(&[config.seed, TAG_FAULT, e as u64]))),
                seed: mix(&[config.seed, TAG_TRACE, e as u64]),
                traffic: true,
                threads,
            },
            &mut scratch,
            Arc::clone(&recorder),
        )?;
        realized = outcome.scheme.clone();

        // Boundary decision on the observed window. The matrices move out
        // of the outcome — no clone; nothing downstream reads them again.
        let observed = truth.with_patterns(outcome.observed_reads, outcome.observed_writes)?;
        let night = config.night_every > 0 && (e + 1) % config.night_every == 0;
        let mut decide_rng = StdRng::seed_from_u64(mix(&[config.seed, TAG_DECIDE, e as u64]));
        let mut adapted_objects = 0usize;
        let mut rebuilt = false;
        // What this boundary did, for the WAL's commit record. A monitor
        // snapshot rides along exactly when the decision mutated the
        // monitor — its state is untouched on the Keep path.
        let mut kind = RetuneKind::Keep;
        let mut monitor_changed = false;
        // Predictive policies pre-stage the hot detector with next-window
        // forecasts instead of this window's realized demand.
        let mut prestage: Option<Vec<u64>> = None;
        match config.policy {
            Policy::Static => {}
            Policy::Monitor => {
                if night {
                    monitor.nightly_rebuild_with(observed, &mut decide_rng)?;
                    rebuilt = true;
                    rebuilds += 1;
                    kind = RetuneKind::Rebuild;
                    monitor_changed = true;
                } else if let MonitorAction::Adapted {
                    changed_objects, ..
                } = monitor.ingest_statistics(observed, &mut decide_rng)?
                {
                    adapted_objects = changed_objects;
                    adaptations += 1;
                    kind = RetuneKind::Adapt;
                    monitor_changed = true;
                }
                target = monitor.scheme().clone();
            }
            Policy::Adr => {
                let next = Adr::default().solve(&observed, &mut decide_rng)?;
                if next != target {
                    adapted_objects = (0..truth.num_objects())
                        .filter(|&k| {
                            let k = drp_core::ObjectId::new(k);
                            truth
                                .sites()
                                .any(|i| next.holds(i, k) != target.holds(i, k))
                        })
                        .count();
                    adaptations += 1;
                    kind = RetuneKind::Adapt;
                }
                target = next;
            }
            Policy::PredictiveEwma | Policy::PredictiveRegression => {
                let ps = predict_state
                    .as_mut()
                    .expect("predictive policy implies predictor state");
                // Fold this window's realized demand into the forecaster,
                // then predict the next window.
                let demand: Vec<u64> = truth.objects().map(|k| truth.total_reads(k)).collect();
                let site_demand: Vec<u64> = truth
                    .sites()
                    .map(|i| truth.objects().map(|k| truth.reads(i, k)).sum())
                    .collect();
                ps.predictor.observe(&demand, &site_demand);
                let forecast = ps.predictor.forecast_objects();
                // The retune input is the observed window rescaled to the
                // forecast demand: the monitor tunes for the window it is
                // about to serve, not the one that just ended.
                let predicted = forecast_problem(&observed, &forecast)?;
                if night {
                    monitor.nightly_rebuild_with(predicted, &mut decide_rng)?;
                    rebuilt = true;
                    rebuilds += 1;
                    kind = RetuneKind::Rebuild;
                    monitor_changed = true;
                    ps.deferred = None;
                    target = monitor.scheme().clone();
                } else {
                    let mut acted_objects = 0usize;
                    let candidate = if let MonitorAction::Adapted {
                        changed_objects, ..
                    } =
                        monitor.ingest_statistics(predicted.clone(), &mut decide_rng)?
                    {
                        acted_objects = changed_objects;
                        monitor_changed = true;
                        ps.deferred = None;
                        Some(monitor.scheme().clone())
                    } else {
                        ps.deferred.take()
                    };
                    if let Some(cand) = candidate {
                        if cand != target {
                            // Payback gate: a retune must save enough NTC
                            // on the predicted window to amortize its
                            // migration traffic within `payback_epochs`.
                            let saving = predicted
                                .total_cost(&target)
                                .saturating_sub(predicted.total_cost(&cand));
                            let migration =
                                plan_migration(&truth, &realized, &cand)?.transfer_cost();
                            if saving > 0
                                && migration <= saving.saturating_mul(config.predict.payback_epochs)
                            {
                                target = cand;
                                adaptations += 1;
                                kind = RetuneKind::Adapt;
                                adapted_objects = acted_objects;
                            } else if saving > 0 {
                                // Predicted to pay off eventually, just not
                                // fast enough yet — park it for a cheaper
                                // boundary.
                                ps.deferred = Some(cand);
                            }
                        }
                    }
                }
                prestage = Some(forecast);
            }
        }

        // Hot-object fast path: fold this epoch's demand into the windowed
        // EWMA, re-decide the hot set, and layer capacity-checked replica
        // boosts onto whatever target the policy just picked — fast-track
        // adaptation between (or on top of) retunes.
        let mut hot_promotions = 0u64;
        let mut hot_demotions = 0u64;
        if let Some((detector, boosted)) = hot_state.as_mut() {
            let hcfg = config.hot.as_ref().expect("hot state implies hot config");
            // The streaming driver offers exactly the truth's pattern and
            // demand is counted pre-shed, so the truth's per-object read
            // totals ARE the observed window's demand vector — no extra
            // observed-problem materialization needed. Predictive policies
            // feed the *forecast* vector instead, pre-staging boosts ahead
            // of predicted hot windows.
            let demand: Vec<u64> = match prestage {
                Some(forecast) => forecast,
                None => truth.objects().map(|k| truth.total_reads(k)).collect(),
            };
            let step = detector.observe(&demand);
            hot_promotions = step.promotions;
            hot_demotions = step.demotions;
            let boost = hotkey::apply_boosts(&truth, &realized, target, detector, boosted, hcfg);
            target = boost.target;
            *boosted = boost.boosted;
            recorder.add_counter("serve.hot_boosts_added", boost.added);
            recorder.add_counter("serve.hot_boosts_removed", boost.removed);
        }

        let c = outcome.counters;
        debug_assert_eq!(
            outcome.shed_by_site.iter().sum::<u64>(),
            c.shed,
            "per-site backpressure counters must total the epoch's shed count"
        );
        let report = EpochReport {
            epoch: e,
            night,
            adapted_objects,
            rebuilt,
            hot_promotions,
            hot_demotions,
            serving_ntc: outcome.serving_ntc,
            migration_ntc: outcome.migration_ntc,
            migration_planned: plan.as_ref().map_or(0, MigrationPlan::moves),
            migration_installed: c.installed,
            migration_deallocated: c.deallocated,
            migration_deferred: c.deferred,
            migration_retries: c.retries,
            offered: c.offered,
            admitted: c.admitted,
            shed: c.shed,
            reads_issued: c.reads_issued,
            reads_served: c.reads_served,
            reads_stale: c.reads_stale,
            reads_lost: c.reads_issued.saturating_sub(c.reads_served),
            writes_issued: c.writes_issued,
            writes_committed: c.writes_committed,
            writes_lost: c.writes_issued.saturating_sub(c.writes_committed),
            replicas: realized.replica_count(),
            savings_percent: truth.savings_percent(&realized),
            crashes: outcome.fault_stats.crashes,
            messages_lost: outcome.fault_stats.dropped_random
                + outcome.fault_stats.dropped_partition
                + outcome.fault_stats.lost_arrivals,
            sim_events: outcome.sim_events,
            completion_time: outcome.completion_time,
        };
        recorder.add_counter("serve.serving_ntc", report.serving_ntc);
        recorder.add_counter("serve.migration_ntc", report.migration_ntc);
        recorder.add_counter("serve.shed", report.shed);
        if adapted_objects > 0 {
            recorder.add_counter("serve.adaptations", 1);
        }
        if rebuilt {
            recorder.add_counter("serve.rebuilds", 1);
        }
        epochs.push(report);

        if let (Some(ctx), Some(epoch_report)) = (wal.as_deref_mut(), epochs.last()) {
            // Journal the epoch: drains and migration events for
            // observability, then the EpochEnd/Retune pair that makes the
            // epoch durable (Retune is the commit point).
            let mut batch: Vec<WalRecord> = Vec::new();
            for (site, (&admitted, &shed)) in outcome
                .admitted_by_site
                .iter()
                .zip(&outcome.shed_by_site)
                .enumerate()
            {
                if admitted + shed > 0 {
                    batch.push(WalRecord::AdmissionDrain {
                        epoch: e as u64,
                        site: site as u64,
                        admitted,
                        shed,
                    });
                }
            }
            if let Some(plan) = &plan {
                for addition in &plan.additions {
                    batch.push(WalRecord::MigrationStage {
                        epoch: e as u64,
                        site: addition.site.index() as u64,
                        object: addition.object.index() as u64,
                        source: addition.source.index() as u64,
                    });
                }
            }
            for event in &outcome.mig_events {
                batch.push(match *event {
                    MigEvent::Retry {
                        site,
                        object,
                        attempt,
                    } => WalRecord::MigrationRetry {
                        epoch: e as u64,
                        site: site as u64,
                        object: object as u64,
                        attempt: u64::from(attempt),
                    },
                    MigEvent::Install {
                        site,
                        object,
                        version,
                    } => WalRecord::MigrationInstall {
                        epoch: e as u64,
                        site: site as u64,
                        object: object as u64,
                        version,
                    },
                    MigEvent::Cutover { object, removals } => WalRecord::Cutover {
                        epoch: e as u64,
                        object: object as u64,
                        removals: removals as u64,
                    },
                });
            }
            batch.push(WalRecord::EpochEnd {
                epoch: e as u64,
                report: epoch_report.clone(),
                realized: write_scheme(&realized).into_bytes(),
            });
            let snapshot = if monitor_changed {
                Some(snapshot_monitor(&monitor)?)
            } else {
                None
            };
            batch.push(WalRecord::Retune {
                epoch: e as u64,
                kind,
                adapted_objects: adapted_objects as u64,
                target: write_scheme(&target).into_bytes(),
                monitor: snapshot,
                hot: hot_state.as_ref().map(|(d, b)| d.snapshot(b)),
                predictor: predict_state.as_ref().map(PredictState::snapshot),
            });
            ctx.append(&batch)?;
            ctx.since_checkpoint += 1;
            if ctx.since_checkpoint >= config.wal.checkpoint_every {
                ctx.checkpoint(Checkpoint {
                    next_epoch: e as u64 + 1,
                    adaptations,
                    rebuilds,
                    realized: write_scheme(&realized).into_bytes(),
                    target: write_scheme(&target).into_bytes(),
                    monitor: Some(snapshot_monitor(&monitor)?),
                    hot: hot_state.as_ref().map(|(d, b)| d.snapshot(b)),
                    predictor: predict_state.as_ref().map(PredictState::snapshot),
                    reports: epochs.clone(),
                })?;
            }
        }
    }

    let totals = ServiceReport::tally(&epochs, adaptations, rebuilds);
    Ok(ServiceReport {
        policy: config.policy.name().to_string(),
        seed: config.seed,
        period: config.period,
        admission_limit: config.admission_limit,
        night_every: config.night_every,
        epochs,
        totals,
        competitive_ratio: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_algo::GraConfig;
    use drp_core::telemetry::InMemoryRecorder;
    use drp_workload::{trace, TopologyKind, WorkloadSpec};

    fn monitor_config() -> MonitorConfig {
        MonitorConfig {
            gra: GraConfig {
                population_size: 12,
                generations: 20,
                ..GraConfig::default()
            },
            ..MonitorConfig::default()
        }
    }

    fn problem(seed: u64) -> Problem {
        let mut rng = StdRng::seed_from_u64(seed);
        WorkloadSpec::paper(6, 8, 5.0, 30.0)
            .generate(&mut rng)
            .unwrap()
    }

    fn drift() -> PatternChange {
        PatternChange {
            change_percent: 600.0,
            objects_percent: 50.0,
            read_share: 0.9,
        }
    }

    #[test]
    fn oversized_admission_limit_sheds_nothing() {
        // Regression (32-bit truncation): an admission limit past u32::MAX
        // must mean "admit everything", exactly like the 0 sentinel — a
        // plain `as usize` cast would wrap it to a tiny quota and shed
        // admitted requests on 32-bit targets.
        let problem = problem(7);
        let unlimited = ServeConfig {
            policy: Policy::Static,
            epochs: 2,
            seed: 7,
            admission_limit: 0,
            monitor: monitor_config(),
            ..ServeConfig::default()
        };
        let huge = ServeConfig {
            admission_limit: u64::from(u32::MAX) + 7,
            ..unlimited.clone()
        };
        let a = run_service(&problem, &unlimited).unwrap();
        let b = run_service(&problem, &huge).unwrap();
        assert_eq!(b.totals.shed, 0);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn monitor_snapshots_are_fallible_not_panicking() {
        // Regression (serve-path panic sweep): snapshotting a healthy
        // monitor succeeds through the typed-error path, and the overflow
        // case maps into `ServeError::FrameOverflow` rather than a panic.
        let problem = problem(3);
        let mut boot = StdRng::seed_from_u64(1);
        let monitor =
            ReplicationMonitor::bootstrap(problem.clone(), monitor_config(), &mut boot).unwrap();
        let snapshot = snapshot_monitor(&monitor).unwrap();
        assert!(!snapshot.population.is_empty());

        let err = CoreError::from(ServeError::FrameOverflow {
            what: "monitor genome bits",
            value: u64::from(u32::MAX) + 1,
            limit: u64::from(u32::MAX),
        });
        assert!(err.to_string().contains("exceeds the wal frame limit"));
    }

    #[test]
    fn static_epoch_ntc_matches_offline_replay() {
        let problem = problem(5);
        let config = ServeConfig {
            policy: Policy::Static,
            epochs: 1,
            seed: 5,
            monitor: monitor_config(),
            ..ServeConfig::default()
        };
        let report = run_service(&problem, &config).unwrap();

        // Replay the same window offline: identical scheme, identical
        // timestamps, so the epoch's serving NTC must match data-unit for
        // data-unit (and nothing may have been billed to migration).
        let mut boot = StdRng::seed_from_u64(mix(&[config.seed, TAG_BOOT]));
        let scheme = ReplicationMonitor::bootstrap(problem.clone(), monitor_config(), &mut boot)
            .unwrap()
            .scheme()
            .clone();
        let mut trace_rng = StdRng::seed_from_u64(mix(&[config.seed, TAG_TRACE, 0]));
        let requests = trace::expand(&problem, config.period, &mut trace_rng);
        let offline = trace::simulate(&problem, &scheme, &requests).unwrap();

        let e = &report.epochs[0];
        assert_eq!(e.serving_ntc, offline.transfer_cost);
        assert_eq!(e.completion_time, offline.completion_time);
        assert_eq!(e.migration_ntc, 0);
        assert_eq!(e.offered, requests.len() as u64);
        assert_eq!(e.shed, 0);
        assert_eq!(e.reads_lost, 0);
        assert_eq!(e.writes_lost, 0);
    }

    #[test]
    fn same_seed_is_bitwise_reproducible_with_and_without_telemetry() {
        let problem = problem(9);
        let config = ServeConfig {
            policy: Policy::Monitor,
            epochs: 3,
            seed: 9,
            night_every: 3,
            monitor: monitor_config(),
            drift: Some(drift()),
            faults: Some(FaultSpec {
                crashes: vec![(1, 10, 60)],
                drop_probability: 0.02,
                jitter: 2,
            }),
            ..ServeConfig::default()
        };
        let a = run_service(&problem, &config).unwrap();
        let b = run_service(&problem, &config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let recorder = Arc::new(InMemoryRecorder::default());
        let c = run_service_recorded(&problem, &config, recorder.clone()).unwrap();
        assert_eq!(a.fingerprint(), c.fingerprint());
        assert_eq!(recorder.span_count("serve.epoch"), 3);
        assert_eq!(recorder.span_count("serve.run"), 1);
        assert_eq!(recorder.counter("serve.serving_ntc"), a.totals.serving_ntc);
    }

    #[test]
    fn admission_limit_sheds_and_caps_issued_traffic() {
        let problem = problem(3);
        let base = ServeConfig {
            policy: Policy::Static,
            epochs: 1,
            seed: 3,
            monitor: monitor_config(),
            ..ServeConfig::default()
        };
        let open = run_service(&problem, &base).unwrap();
        let limited = run_service(
            &problem,
            &ServeConfig {
                admission_limit: 5,
                ..base
            },
        )
        .unwrap();
        let e = &limited.epochs[0];
        assert_eq!(e.offered, open.epochs[0].offered);
        assert!(e.shed > 0, "a 5-request cap must shed on a paper workload");
        assert_eq!(e.admitted + e.shed, e.offered);
        assert!(e.admitted <= 5 * problem.num_sites() as u64);
        assert!(e.serving_ntc < open.epochs[0].serving_ntc);
        // The observation window still sees the full offered pattern, so
        // backpressure never starves the monitor.
        assert_eq!(open.epochs[0].offered, e.offered);
    }

    #[test]
    fn monitor_beats_frozen_static_under_drift() {
        let problem = problem(21);
        let base = ServeConfig {
            policy: Policy::Static,
            epochs: 4,
            seed: 21,
            monitor: monitor_config(),
            drift: Some(drift()),
            ..ServeConfig::default()
        };
        let frozen = run_service(&problem, &base).unwrap();
        let adaptive = run_service(
            &problem,
            &ServeConfig {
                policy: Policy::Monitor,
                ..base
            },
        )
        .unwrap();
        assert!(
            adaptive.totals.adaptations > 0,
            "drift this strong must trigger AGRA"
        );
        assert!(
            adaptive.totals.total_ntc < frozen.totals.total_ntc,
            "monitor+AGRA (serving {} + migration {}) must beat frozen static ({})",
            adaptive.totals.serving_ntc,
            adaptive.totals.migration_ntc,
            frozen.totals.serving_ntc,
        );
    }

    #[test]
    fn adr_policy_requires_a_tree_metric() {
        let complete = problem(4);
        let config = ServeConfig {
            policy: Policy::Adr,
            epochs: 2,
            seed: 4,
            monitor: monitor_config(),
            ..ServeConfig::default()
        };
        let err = run_service(&complete, &config).unwrap_err();
        assert!(matches!(err, CoreError::InvalidInstance { .. }));

        let mut spec = WorkloadSpec::paper(7, 8, 5.0, 30.0);
        spec.topology = TopologyKind::Tree { arity: 2 };
        let mut rng = StdRng::seed_from_u64(4);
        let tree = spec.generate(&mut rng).unwrap();
        let report = run_service(&tree, &config).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.policy, "adr");
    }
}
