//! Hot-object detection and fast-track replica boosts.
//!
//! The monitor retunes on its own epoch cadence; between retunes a
//! disproportionately demanded ("hot") object keeps paying remote-read NTC
//! until the next AGRA pass notices it. The [`HotKeyDetector`] watches
//! per-object demand — an EWMA over a ring buffer of recent epoch windows —
//! and promotes objects whose smoothed demand stands far enough above the
//! fleet mean, with separate promotion and demotion thresholds so a key
//! oscillating near the line does not flap (hysteresis).
//!
//! Promotion does not bypass the cost model: [`apply_boosts`] turns the hot
//! set into *capacity-checked, NTC-improving* replica additions layered on
//! the policy's target scheme. A boost is taken only when the incremental
//! evaluator says the per-epoch saving at least covers the one-time fetch
//! cost from the nearest current holder, and the add itself goes through
//! [`CostEvaluator::apply_add`], which enforces storage capacity. Boosted
//! replicas are realized by the same staged-migration executor as any other
//! target change, and are retired when their object cools down — but only
//! when removal does not regress the modeled NTC.
//!
//! Everything is integer arithmetic in deterministic object/site order, so
//! the hot path preserves the runtime's bitwise-reproducibility discipline.

use drp_core::{CostEvaluator, ObjectId, Problem, ReplicationScheme, SiteId};

/// Fixed-point fractional bits of the demand EWMA.
const FP: u32 = 10;

/// Knobs of the hot-object detector and fast-track boost path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotKeyConfig {
    /// Ring-buffer depth: demand is summed over the last `window` epochs.
    pub window: usize,
    /// EWMA weight of the newest window, in percent (1..=100).
    pub alpha_pct: u64,
    /// Promote when `ewma * 100 >= promote_pct * mean_ewma`.
    pub promote_pct: u64,
    /// Demote when `ewma * 100 <= demote_pct * mean_ewma`; must sit below
    /// `promote_pct` (the hysteresis band).
    pub demote_pct: u64,
    /// Cap on simultaneously promoted objects.
    pub max_hot: usize,
    /// Fast-track replicas maintained per hot object.
    pub boost_replicas: usize,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        Self {
            window: 4,
            alpha_pct: 50,
            promote_pct: 200,
            demote_pct: 120,
            max_hot: 4,
            boost_replicas: 1,
        }
    }
}

impl HotKeyConfig {
    /// Rejects degenerate settings (empty window, out-of-range alpha,
    /// inverted hysteresis band, zero boost budget).
    ///
    /// # Errors
    ///
    /// Returns [`drp_core::CoreError::InvalidInstance`] naming the bad knob.
    pub fn validate(&self) -> drp_core::Result<()> {
        let bad = |reason: String| drp_core::CoreError::InvalidInstance { reason };
        if self.window == 0 {
            return Err(bad("HotKeyConfig::window must be at least 1".into()));
        }
        if self.alpha_pct == 0 || self.alpha_pct > 100 {
            return Err(bad(format!(
                "HotKeyConfig::alpha_pct must be in 1..=100, got {}",
                self.alpha_pct
            )));
        }
        if self.demote_pct >= self.promote_pct {
            return Err(bad(format!(
                "HotKeyConfig hysteresis requires demote_pct < promote_pct, got {} >= {}",
                self.demote_pct, self.promote_pct
            )));
        }
        if self.max_hot == 0 || self.boost_replicas == 0 {
            return Err(bad(
                "HotKeyConfig::max_hot and boost_replicas must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// What one [`HotKeyDetector::observe`] call changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotStep {
    /// Objects promoted to hot this epoch.
    pub promotions: u64,
    /// Objects demoted from hot this epoch.
    pub demotions: u64,
}

/// Serializable detector state, journaled into the WAL's retune records so
/// durable recovery restores the hot set exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotSnapshot {
    /// Ring windows, oldest first; each is a per-object demand vector.
    pub windows: Vec<Vec<u64>>,
    /// Fixed-point EWMA per object.
    pub ewma: Vec<u64>,
    /// Promotion flags per object.
    pub promoted: Vec<bool>,
    /// Fast-track replicas currently layered on the target: `(site, object)`.
    pub boosted: Vec<(u64, u64)>,
    /// Lifetime promotions.
    pub promotions: u64,
    /// Lifetime demotions.
    pub demotions: u64,
}

/// Windowed per-object demand EWMA with promotion/demotion hysteresis.
#[derive(Debug, Clone)]
pub struct HotKeyDetector {
    cfg: HotKeyConfig,
    /// Last `cfg.window` demand vectors, oldest first.
    ring: std::collections::VecDeque<Vec<u64>>,
    /// Per-object sum over the ring.
    window_sum: Vec<u64>,
    /// Fixed-point (`<< FP`) smoothed windowed demand per object.
    ewma: Vec<u64>,
    promoted: Vec<bool>,
    promotions: u64,
    demotions: u64,
}

impl HotKeyDetector {
    /// Creates a cold detector for `num_objects` objects.
    pub fn new(cfg: HotKeyConfig, num_objects: usize) -> Self {
        Self {
            cfg,
            ring: std::collections::VecDeque::with_capacity(cfg.window),
            window_sum: vec![0; num_objects],
            ewma: vec![0; num_objects],
            promoted: vec![false; num_objects],
            promotions: 0,
            demotions: 0,
        }
    }

    /// Folds one epoch's per-object demand into the window and re-decides
    /// the hot set. Deterministic: promotion candidates are ranked by
    /// `(ewma desc, object id asc)` and admitted up to `max_hot`.
    ///
    /// # Panics
    ///
    /// Panics if `demand.len()` differs from the detector's object count.
    pub fn observe(&mut self, demand: &[u64]) -> HotStep {
        let n = self.window_sum.len();
        assert_eq!(demand.len(), n, "demand vector shape");
        if self.ring.len() == self.cfg.window {
            let old = self.ring.pop_front().expect("non-empty ring");
            for (sum, v) in self.window_sum.iter_mut().zip(&old) {
                *sum -= v;
            }
        }
        for (sum, v) in self.window_sum.iter_mut().zip(demand) {
            *sum += v;
        }
        self.ring.push_back(demand.to_vec());

        let a = self.cfg.alpha_pct;
        for (e, &w) in self.ewma.iter_mut().zip(&self.window_sum) {
            *e = (a * (w << FP) + (100 - a) * *e) / 100;
        }

        let mean = self.ewma.iter().sum::<u64>() / n.max(1) as u64;
        let mut step = HotStep::default();
        if mean == 0 {
            // No signal: demote everything rather than divide by zero.
            for p in &mut self.promoted {
                if *p {
                    *p = false;
                    step.demotions += 1;
                }
            }
            self.demotions += step.demotions;
            return step;
        }

        for k in 0..n {
            if self.promoted[k] && self.ewma[k] * 100 <= self.cfg.demote_pct * mean {
                self.promoted[k] = false;
                step.demotions += 1;
            }
        }
        let hot_count = self.promoted.iter().filter(|&&p| p).count();
        let mut candidates: Vec<usize> = (0..n)
            .filter(|&k| !self.promoted[k] && self.ewma[k] * 100 >= self.cfg.promote_pct * mean)
            .collect();
        candidates.sort_by_key(|&k| (std::cmp::Reverse(self.ewma[k]), k));
        candidates.truncate(self.cfg.max_hot.saturating_sub(hot_count));
        for k in candidates {
            self.promoted[k] = true;
            step.promotions += 1;
        }
        self.promotions += step.promotions;
        self.demotions += step.demotions;
        step
    }

    /// Whether `object` is currently promoted.
    pub fn is_hot(&self, object: usize) -> bool {
        self.promoted[object]
    }

    /// Promoted objects in ascending id order.
    pub fn hot_objects(&self) -> impl Iterator<Item = usize> + '_ {
        self.promoted
            .iter()
            .enumerate()
            .filter_map(|(k, &p)| p.then_some(k))
    }

    /// Lifetime `(promotions, demotions)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.promotions, self.demotions)
    }

    /// Exports the full detector state (`boosted` is supplied by the
    /// runtime, which owns the overlay bookkeeping).
    pub fn snapshot(&self, boosted: &[(usize, usize)]) -> HotSnapshot {
        HotSnapshot {
            windows: self.ring.iter().cloned().collect(),
            ewma: self.ewma.clone(),
            promoted: self.promoted.clone(),
            boosted: boosted.iter().map(|&(i, k)| (i as u64, k as u64)).collect(),
            promotions: self.promotions,
            demotions: self.demotions,
        }
    }

    /// Rebuilds a detector (and the runtime's boosted list) from a
    /// journaled snapshot.
    pub fn restore(cfg: HotKeyConfig, snap: &HotSnapshot) -> (Self, Vec<(usize, usize)>) {
        let n = snap.ewma.len();
        let mut det = Self::new(cfg, n);
        for w in snap.windows.iter().take(cfg.window) {
            for (sum, v) in det.window_sum.iter_mut().zip(w) {
                *sum += v;
            }
            det.ring.push_back(w.clone());
        }
        det.ewma = snap.ewma.clone();
        det.promoted = snap.promoted.clone();
        det.promotions = snap.promotions;
        det.demotions = snap.demotions;
        let boosted = snap
            .boosted
            .iter()
            .map(|&(i, k)| (i as usize, k as usize))
            .collect();
        (det, boosted)
    }
}

/// What [`apply_boosts`] did to the target scheme.
#[derive(Debug, Clone)]
pub struct BoostOutcome {
    /// The target with the fast-track overlay applied.
    pub target: ReplicationScheme,
    /// Fast-track replicas now present in the target: `(site, object)`,
    /// in deterministic order.
    pub boosted: Vec<(usize, usize)>,
    /// Replicas added this boundary.
    pub added: u64,
    /// Previously boosted replicas retired this boundary.
    pub removed: u64,
}

/// One-time fetch NTC of installing `object` at `site`: object size times
/// the cheapest link from a current holder in the realized directory —
/// the same source choice the migration planner makes.
fn fetch_cost(
    problem: &Problem,
    realized: &ReplicationScheme,
    site: SiteId,
    object: ObjectId,
) -> u64 {
    let size = problem.object_size(object);
    let from = realized
        .replicators(object)
        .map(|j| problem.costs().cost(site.index(), j.index()))
        .min()
        .unwrap_or(u64::MAX);
    size.saturating_mul(from)
}

/// Layers the detector's hot set onto `target` as capacity-checked,
/// NTC-improving replica boosts, and retires stale boosts from previous
/// boundaries.
///
/// For each hot object, candidate sites are ranked by that object's read
/// demand (descending, site id ascending) and admitted while the object
/// has fewer than `cfg.boost_replicas` live boosts, the evaluator predicts
/// a strict NTC improvement that covers the fetch cost from the realized
/// directory, and the capacity-checked add succeeds. A boost whose object
/// cooled down is removed only when the removal does not increase the
/// modeled NTC; otherwise it is kept and retried at the next boundary.
pub fn apply_boosts(
    problem: &Problem,
    realized: &ReplicationScheme,
    target: ReplicationScheme,
    detector: &HotKeyDetector,
    prev_boosted: &[(usize, usize)],
    cfg: &HotKeyConfig,
) -> BoostOutcome {
    let mut eval = CostEvaluator::new(problem, target);
    let mut boosted: Vec<(usize, usize)> = Vec::new();
    let mut added = 0u64;
    let mut removed = 0u64;

    // Retire or carry forward the previous overlay.
    for &(i, k) in prev_boosted {
        let (site, object) = (SiteId::new(i), ObjectId::new(k));
        if !eval.scheme().holds(site, object) {
            continue; // the policy already dropped it
        }
        if detector.is_hot(k) {
            boosted.push((i, k));
            continue;
        }
        let removable = problem.primary(object) != site && eval.delta_remove(site, object) <= 0;
        if removable && eval.apply_remove(site, object).is_ok() {
            removed += 1;
        } else {
            // Still paying for itself (or pinned): keep serving it.
            boosted.push((i, k));
        }
    }

    // Fresh boosts for the current hot set, object order then demand order.
    for k in detector.hot_objects() {
        let object = ObjectId::new(k);
        let mut live = boosted.iter().filter(|&&(_, bk)| bk == k).count();
        if live >= cfg.boost_replicas {
            continue;
        }
        let reads = problem.object_reads(object);
        let mut sites: Vec<usize> = (0..problem.num_sites()).filter(|&i| reads[i] > 0).collect();
        sites.sort_by_key(|&i| (std::cmp::Reverse(reads[i]), i));
        for i in sites {
            if live >= cfg.boost_replicas {
                break;
            }
            let site = SiteId::new(i);
            if eval.scheme().holds(site, object) {
                continue;
            }
            let delta = eval.delta_add(site, object);
            if delta >= 0 {
                continue;
            }
            let saving = delta.unsigned_abs();
            if saving < fetch_cost(problem, realized, site, object) {
                continue; // would not pay for its own migration this epoch
            }
            if eval.apply_add(site, object).is_ok() {
                boosted.push((i, k));
                live += 1;
                added += 1;
            }
        }
    }

    boosted.sort_unstable();
    BoostOutcome {
        target: eval.into_scheme(),
        boosted,
        added,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation_names_bad_knobs() {
        assert!(HotKeyConfig::default().validate().is_ok());
        for bad in [
            HotKeyConfig {
                window: 0,
                ..HotKeyConfig::default()
            },
            HotKeyConfig {
                alpha_pct: 0,
                ..HotKeyConfig::default()
            },
            HotKeyConfig {
                alpha_pct: 101,
                ..HotKeyConfig::default()
            },
            HotKeyConfig {
                demote_pct: 300,
                ..HotKeyConfig::default()
            },
            HotKeyConfig {
                boost_replicas: 0,
                ..HotKeyConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn hysteresis_promotes_then_demotes_with_lag() {
        let cfg = HotKeyConfig {
            window: 2,
            alpha_pct: 100, // no smoothing: the windowed sum is the signal
            promote_pct: 200,
            demote_pct: 120,
            max_hot: 2,
            boost_replicas: 1,
        };
        let mut det = HotKeyDetector::new(cfg, 4);
        // Uniform demand: nothing promotes.
        let step = det.observe(&[10, 10, 10, 10]);
        assert_eq!(step, HotStep::default());
        // Object 2 spikes to well over 2x the mean.
        let step = det.observe(&[10, 10, 200, 10]);
        assert_eq!(step.promotions, 1);
        assert!(det.is_hot(2));
        // The spike leaves the window gradually; hysteresis keeps object 2
        // hot while its windowed demand is still above the demote line.
        let step = det.observe(&[10, 10, 10, 10]);
        assert_eq!(step.demotions, 0, "still hot inside the band");
        assert!(det.is_hot(2));
        // Spike fully out of the window: demand uniform again, demote.
        let step = det.observe(&[10, 10, 10, 10]);
        assert_eq!(step.demotions, 1);
        assert!(!det.is_hot(2));
        assert_eq!(det.counters(), (1, 1));
    }

    #[test]
    fn max_hot_caps_the_promoted_set_deterministically() {
        let cfg = HotKeyConfig {
            window: 1,
            alpha_pct: 100,
            promote_pct: 110,
            demote_pct: 50,
            max_hot: 2,
            boost_replicas: 1,
        };
        let mut det = HotKeyDetector::new(cfg, 5);
        det.observe(&[100, 90, 95, 1, 1]);
        let hot: Vec<usize> = det.hot_objects().collect();
        assert_eq!(hot, vec![0, 2], "two hottest by ewma, ids ascending");
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let cfg = HotKeyConfig::default();
        let mut det = HotKeyDetector::new(cfg, 6);
        for epoch in 0..5u64 {
            let demand: Vec<u64> = (0..6).map(|k| (k as u64 + 1) * (epoch + 1) % 37).collect();
            det.observe(&demand);
        }
        let boosted = vec![(3usize, 1usize), (0, 4)];
        let snap = det.snapshot(&boosted);
        let (back, boosted_back) = HotKeyDetector::restore(cfg, &snap);
        assert_eq!(boosted_back, boosted);
        assert_eq!(back.snapshot(&boosted_back), snap);
        // The restored detector evolves identically.
        let mut a = det;
        let mut b = back;
        let step_a = a.observe(&[5, 4, 3, 2, 1, 0]);
        let step_b = b.observe(&[5, 4, 3, 2, 1, 0]);
        assert_eq!(step_a, step_b);
        assert_eq!(a.snapshot(&[]), b.snapshot(&[]));
    }

    #[test]
    fn boosts_are_capacity_checked_and_ntc_improving() {
        let problem = WorkloadSpec::paper(6, 5, 10.0, 30.0)
            .generate(&mut StdRng::seed_from_u64(8))
            .unwrap();
        let target = ReplicationScheme::primary_only(&problem);
        let cfg = HotKeyConfig {
            window: 1,
            alpha_pct: 100,
            promote_pct: 101,
            demote_pct: 50,
            max_hot: 5,
            boost_replicas: 2,
        };
        let mut det = HotKeyDetector::new(cfg, problem.num_objects());
        let demand: Vec<u64> = problem.objects().map(|k| problem.total_reads(k)).collect();
        det.observe(&demand);

        let before = problem.total_cost(&target);
        let out = apply_boosts(&problem, &target, target.clone(), &det, &[], &cfg);
        let after = problem.total_cost(&out.target);
        assert!(after <= before, "boosts must never regress modeled NTC");
        assert_eq!(out.added as usize, out.boosted.len());
        out.target.validate(&problem).unwrap();
        // Every boost actually pays for its own fetch within one epoch.
        if out.added > 0 {
            assert!(before - after >= 1);
        }

        // A second pass with everything cooled down retires the overlay
        // only where removal doesn't hurt.
        let mut cold = det.clone();
        cold.observe(&[0; 5]);
        let retired = apply_boosts(
            &problem,
            &target,
            out.target.clone(),
            &cold,
            &out.boosted,
            &cfg,
        );
        let final_cost = problem.total_cost(&retired.target);
        assert!(final_cost <= after, "retirement must not regress NTC");
        retired.target.validate(&problem).unwrap();
    }
}
