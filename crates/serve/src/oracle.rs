//! The offline-optimal replay oracle: what would full knowledge of the
//! realized trace have cost?
//!
//! [`evaluate`] replays a finished run's epochs under a *clean* model —
//! the exact per-epoch truth the run saw (same TAG_DRIFT/scenario
//! streams), the exact request trace (same TAG_TRACE streams), no faults
//! and no admission shedding — and solves a small dynamic program over
//! per-epoch candidate schemes:
//!
//! * the scheme the online run actually served that epoch, and
//! * a hindsight GRA solution computed *on the realized truth* (seeded
//!   from the TAG_ORACLE stream, so the oracle itself is deterministic).
//!
//! Transitions between consecutive epochs are charged the migration
//! plan's transfer cost, exactly like the live executor charges its
//! fetches. The online trajectory is, by construction, one path through
//! this DP, so `OPT <= online` and the reported
//! [`competitive_ratio`](OracleReport::competitive_ratio) is always
//! `>= 1.0` — the gap is what foresight was worth on this trace.
//!
//! The oracle is an offline analysis pass, deliberately kept out of the
//! serving loop: durable runs never compute it, so crash/recovery
//! fingerprints are unaffected.

use drp_algo::Gra;
use drp_core::migration::plan_migration;
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme};
use drp_workload::trace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::runtime::{mix, ServeConfig, ShiftPlan, TAG_ORACLE, TAG_TRACE};

/// What the offline-optimal replay found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// Total NTC of the online trajectory under the oracle's clean replay
    /// model (serving + inter-epoch migration).
    pub online_ntc: u64,
    /// Total NTC of the cheapest trajectory through the candidate DP.
    pub opt_ntc: u64,
    /// `online_ntc / opt_ntc`, `>= 1.0` by construction (1.0 when OPT is
    /// zero-cost).
    pub competitive_ratio: f64,
    /// Epochs in which OPT served the hindsight scheme instead of the
    /// online one — where foresight actually changed the placement.
    pub hindsight_epochs: usize,
}

/// Scores a run's online trajectory against the offline optimum.
///
/// `online` holds the realized scheme at the start of every epoch, as
/// collected by [`crate::run_service_with_oracle`].
///
/// # Errors
///
/// Propagates shape errors from the truth replay and the simulator, and
/// solver errors from the hindsight GRA runs.
pub(crate) fn evaluate(
    problem: &Problem,
    config: &ServeConfig,
    online: &[ReplicationScheme],
) -> drp_core::Result<OracleReport> {
    if online.is_empty() {
        return Ok(OracleReport {
            online_ntc: 0,
            opt_ntc: 0,
            competitive_ratio: 1.0,
            hindsight_epochs: 0,
        });
    }

    // Replay the truth and the trace exactly as the run derived them.
    let shift_plan = ShiftPlan::new(problem, config)?;
    let mut truth = problem.clone();
    let serve_cost =
        |truth: &Problem, e: usize, scheme: &ReplicationScheme| -> drp_core::Result<u64> {
            let mut rng = StdRng::seed_from_u64(mix(&[config.seed, TAG_TRACE, e as u64]));
            let requests = trace::expand(truth, config.period, &mut rng);
            Ok(trace::simulate(truth, scheme, &requests)?.transfer_cost)
        };

    // DP over two candidates per epoch: 0 = the online scheme, 1 = the
    // hindsight GRA solution. `cost[j]` is the cheapest trajectory ending
    // in candidate j; online_ntc tracks the forced-online path.
    let mut candidates: Vec<[ReplicationScheme; 2]> = Vec::with_capacity(online.len());
    let mut cost = [0u64; 2];
    let mut online_ntc = 0u64;
    // Which predecessor each state came from, for the hindsight count.
    let mut back: Vec<[usize; 2]> = Vec::with_capacity(online.len());
    for (e, online_scheme) in online.iter().enumerate() {
        if e > 0 {
            shift_plan.advance(&mut truth, config, e)?;
        }
        let mut oracle_rng = StdRng::seed_from_u64(mix(&[config.seed, TAG_ORACLE, e as u64]));
        let hindsight =
            Gra::with_config(config.monitor.gra.clone()).solve(&truth, &mut oracle_rng)?;
        let cand = [online_scheme.clone(), hindsight];
        let serve = [
            serve_cost(&truth, e, &cand[0])?,
            serve_cost(&truth, e, &cand[1])?,
        ];
        if e == 0 {
            // Epoch 0 serves the bootstrap placement; both trajectories
            // start there free of migration charges (OPT may still swap at
            // the first boundary, paying the move).
            cost = serve;
            online_ntc = serve[0];
            back.push([0, 0]);
        } else {
            let prev = &candidates[e - 1];
            let mut next = [0u64; 2];
            let mut from = [0usize; 2];
            for j in 0..2 {
                let mut best = u64::MAX;
                for i in 0..2 {
                    let migration = plan_migration(&truth, &prev[i], &cand[j])?.transfer_cost();
                    let total = cost[i].saturating_add(migration).saturating_add(serve[j]);
                    if total < best {
                        best = total;
                        from[j] = i;
                    }
                }
                next[j] = best;
            }
            let online_migration = plan_migration(&truth, &prev[0], &cand[0])?.transfer_cost();
            online_ntc = online_ntc
                .saturating_add(online_migration)
                .saturating_add(serve[0]);
            cost = next;
            back.push(from);
        }
        candidates.push(cand);
    }

    let (mut state, opt_ntc) = if cost[1] < cost[0] {
        (1usize, cost[1])
    } else {
        (0usize, cost[0])
    };
    let mut hindsight_epochs = 0usize;
    for e in (0..online.len()).rev() {
        if state == 1 {
            hindsight_epochs += 1;
        }
        state = back[e][state];
    }

    debug_assert!(
        opt_ntc <= online_ntc,
        "online is a DP path, OPT can't exceed it"
    );
    let competitive_ratio = if opt_ntc == 0 {
        1.0
    } else {
        online_ntc as f64 / opt_ntc as f64
    };
    Ok(OracleReport {
        online_ntc,
        opt_ntc,
        competitive_ratio,
        hindsight_epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_service_with_oracle, Policy};
    use drp_algo::monitor::MonitorConfig;
    use drp_algo::GraConfig;
    use drp_workload::{Scenario, WorkloadSpec};

    fn monitor_config() -> MonitorConfig {
        MonitorConfig {
            gra: GraConfig {
                population_size: 12,
                generations: 20,
                ..GraConfig::default()
            },
            ..MonitorConfig::default()
        }
    }

    fn problem(seed: u64) -> Problem {
        let mut rng = StdRng::seed_from_u64(seed);
        WorkloadSpec::paper(6, 8, 5.0, 30.0)
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn static_run_under_drift_has_ratio_above_one() {
        let problem = problem(13);
        let config = ServeConfig {
            policy: Policy::Static,
            epochs: 4,
            seed: 13,
            monitor: monitor_config(),
            scenario: Some(Scenario::FlashCrowd),
            ..ServeConfig::default()
        };
        let (report, oracle) = run_service_with_oracle(&problem, &config).unwrap();
        assert!(oracle.competitive_ratio >= 1.0);
        assert_eq!(report.competitive_ratio, oracle.competitive_ratio);
        assert!(oracle.online_ntc >= oracle.opt_ntc);
        // A frozen scheme under a flash crowd leaves real money on the
        // table: OPT must find a strictly cheaper trajectory.
        assert!(
            oracle.competitive_ratio > 1.0,
            "frozen static under a flash crowd should be beatable, got {}",
            oracle.competitive_ratio
        );
    }

    #[test]
    fn oracle_is_deterministic() {
        let problem = problem(17);
        let config = ServeConfig {
            policy: Policy::Monitor,
            epochs: 3,
            seed: 17,
            monitor: monitor_config(),
            scenario: Some(Scenario::DiurnalCycle),
            ..ServeConfig::default()
        };
        let (a, oa) = run_service_with_oracle(&problem, &config).unwrap();
        let (b, ob) = run_service_with_oracle(&problem, &config).unwrap();
        assert_eq!(oa, ob);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_run_scores_ratio_one() {
        let problem = problem(1);
        let config = ServeConfig {
            epochs: 0,
            monitor: monitor_config(),
            ..ServeConfig::default()
        };
        let oracle = evaluate(&problem, &config, &[]).unwrap();
        assert_eq!(oracle.competitive_ratio, 1.0);
        assert_eq!(oracle.opt_ntc, 0);
    }
}
