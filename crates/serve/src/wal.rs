//! The serving runtime's write-ahead log: length-prefixed, CRC-guarded
//! records plus periodic compacting checkpoints.
//!
//! # Record grammar
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload := tag: u8, fields...
//! ```
//!
//! and the log is a `RunStart` header followed by per-epoch runs of
//!
//! ```text
//! EpochStart
//!   AdmissionDrain*          per-site admitted/shed counts of the window
//!   MigrationStage*          the staged plan (one per addition)
//!   (MigrationRetry | MigrationInstall | Cutover)*   executor events,
//!                            in deterministic simulator order
//! EpochEnd                   the epoch's report + realized directory
//! Retune                     the boundary decision + next target; carries
//!                            a monitor snapshot when the decision changed
//!                            monitor state (the durable commit point)
//! Checkpoint?                full state; everything before it may be
//!                            dropped (compaction)
//! ```
//!
//! An epoch is durable once its `Retune` record is on disk — that record
//! carries everything the next epoch's decision depends on. A crash at any
//! earlier byte re-runs the epoch from the previous commit point, which is
//! safe because epochs are deterministic functions of the committed state.
//!
//! Integrity is per-record: a CRC or structural failure at record `i`
//! drops records `i..` (reported as [`ServeError::WalCorrupt`]); a frame
//! that ends mid-bytes is a torn write and drops only the torn tail
//! ([`ServeError::WalTruncated`]). Recovery never panics on either.

use std::io;
use std::path::{Path, PathBuf};

use drp_core::{CoreError, ServeError};

use crate::hotkey::HotSnapshot;
use crate::predict::PredictSnapshot;
use crate::report::EpochReport;

/// On-disk format version inside `RunStart`.
///
/// v3 added the predictive policy family: an optional [`PredictSnapshot`]
/// (forecaster windows, EWMAs, and any deferred retune candidate) on
/// `Retune` and `Checkpoint`. v2 added the hot-object fast path:
/// `hot_promotions`/`hot_demotions` in every journaled [`EpochReport`] and
/// an optional [`HotSnapshot`] on `Retune` and `Checkpoint`. Older logs
/// are refused cleanly by recovery.
pub const WAL_VERSION: u32 = 3;

/// Durability knobs of the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalTuning {
    /// Write a compacting checkpoint every this many committed epochs.
    pub checkpoint_every: usize,
}

impl Default for WalTuning {
    fn default() -> Self {
        Self {
            checkpoint_every: 3,
        }
    }
}

impl WalTuning {
    /// Rejects configurations that would silently misbehave (a zero
    /// checkpoint interval means "never checkpoint, never compact" at
    /// best and a modulo-by-zero at worst).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] naming the bad knob.
    pub fn validate(&self) -> drp_core::Result<()> {
        if self.checkpoint_every == 0 {
            return Err(CoreError::InvalidInstance {
                reason: "WalTuning::checkpoint_every must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// How a boundary decision changed the target scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetuneKind {
    /// The scheme was kept (no drift past the threshold, or a static
    /// policy).
    Keep,
    /// A daytime AGRA adaptation replaced the target.
    Adapt,
    /// A nightly full GRA rebuild replaced the target.
    Rebuild,
}

impl RetuneKind {
    fn tag(self) -> u8 {
        match self {
            RetuneKind::Keep => 0,
            RetuneKind::Adapt => 1,
            RetuneKind::Rebuild => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, String> {
        Ok(match tag {
            0 => RetuneKind::Keep,
            1 => RetuneKind::Adapt,
            2 => RetuneKind::Rebuild,
            other => return Err(format!("unknown retune kind {other}")),
        })
    }
}

/// The replication monitor's internal state, serialized: the reference
/// instance (`drp-instance v1` text) and the carried GA population. The
/// monitor's scheme is not stored — it always equals the record's target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// `drp-instance v1` rendering of the reference statistics.
    pub problem: Vec<u8>,
    /// Population chromosomes as `(bit length, words)`.
    pub population: Vec<(u32, Vec<u64>)>,
}

/// A compacting checkpoint: the complete durable state at an epoch
/// boundary. Schemes are `drp-scheme v1` text.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The next epoch to run.
    pub next_epoch: u64,
    /// Daytime adaptations so far.
    pub adaptations: u64,
    /// Nightly rebuilds so far.
    pub rebuilds: u64,
    /// The realized directory.
    pub realized: Vec<u8>,
    /// The migration target.
    pub target: Vec<u8>,
    /// Monitor state (absent only if the run never snapshotted one —
    /// checkpoints written by the runtime always carry it).
    pub monitor: Option<MonitorSnapshot>,
    /// Hot-object detector state (present iff the hot path is enabled).
    pub hot: Option<HotSnapshot>,
    /// Demand forecaster state (present iff the policy is predictive).
    pub predictor: Option<PredictSnapshot>,
    /// Reports of every committed epoch, in order.
    pub reports: Vec<EpochReport>,
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Log header: binds the log to a run.
    RunStart {
        /// Format version ([`WAL_VERSION`]).
        version: u32,
        /// The run's master seed.
        seed: u64,
        /// FNV hash of the full `ServeConfig` debug rendering.
        config_hash: u64,
    },
    /// An epoch began executing (not yet durable).
    EpochStart {
        /// Epoch index.
        epoch: u64,
    },
    /// One site's admission-queue drain for the epoch's window.
    AdmissionDrain {
        /// Epoch index.
        epoch: u64,
        /// Site index.
        site: u64,
        /// Requests admitted at the site.
        admitted: u64,
        /// Requests shed by backpressure at the site.
        shed: u64,
    },
    /// One staged replica addition of the epoch's migration plan.
    MigrationStage {
        /// Epoch index.
        epoch: u64,
        /// Target site.
        site: u64,
        /// Object being replicated.
        object: u64,
        /// Planned fetch source.
        source: u64,
    },
    /// The executor re-sourced/retried a fetch.
    MigrationRetry {
        /// Epoch index.
        epoch: u64,
        /// Fetching site.
        site: u64,
        /// Object being fetched.
        object: u64,
        /// Retry attempt number (1-based).
        attempt: u64,
    },
    /// A fetched replica was installed at its target.
    MigrationInstall {
        /// Epoch index.
        epoch: u64,
        /// Installing site.
        site: u64,
        /// Installed object.
        object: u64,
        /// Version the replica landed at.
        version: u64,
    },
    /// An object's last pending addition landed; deferred removals applied.
    Cutover {
        /// Epoch index.
        epoch: u64,
        /// Object that cut over.
        object: u64,
        /// Deallocations applied at cutover.
        removals: u64,
    },
    /// The epoch finished serving; its report and realized directory.
    EpochEnd {
        /// Epoch index.
        epoch: u64,
        /// The epoch's full report.
        report: EpochReport,
        /// `drp-scheme v1` text of the realized directory.
        realized: Vec<u8>,
    },
    /// The boundary decision — the epoch's durable commit point.
    Retune {
        /// Epoch index.
        epoch: u64,
        /// What the decision did.
        kind: RetuneKind,
        /// Objects past the drift threshold.
        adapted_objects: u64,
        /// `drp-scheme v1` text of the next target scheme.
        target: Vec<u8>,
        /// New monitor state when the decision changed it.
        monitor: Option<MonitorSnapshot>,
        /// Hot-object detector state after this boundary's observe/boost
        /// step (present iff the hot path is enabled — the detector
        /// advances every boundary).
        hot: Option<HotSnapshot>,
        /// Demand forecaster state after this boundary's observe/forecast
        /// step (present iff the policy is predictive — the forecaster
        /// advances every boundary).
        predictor: Option<PredictSnapshot>,
    },
    /// A compacting checkpoint.
    Checkpoint(Checkpoint),
}

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 over `bytes` (IEEE polynomial, as used by zip/png).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ------------------------------------------------------- encode / decode

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("wal blob fits u32"));
        self.0.extend_from_slice(v);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(format!(
                "payload underrun: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ));
        };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, String> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn put_report(enc: &mut Enc, r: &EpochReport) {
    enc.u64(r.epoch as u64);
    enc.bool(r.night);
    enc.u64(r.adapted_objects as u64);
    enc.bool(r.rebuilt);
    enc.u64(r.hot_promotions);
    enc.u64(r.hot_demotions);
    enc.u64(r.serving_ntc);
    enc.u64(r.migration_ntc);
    enc.u64(r.migration_planned as u64);
    enc.u64(r.migration_installed as u64);
    enc.u64(r.migration_deallocated as u64);
    enc.u64(r.migration_deferred as u64);
    enc.u64(r.migration_retries);
    enc.u64(r.offered);
    enc.u64(r.admitted);
    enc.u64(r.shed);
    enc.u64(r.reads_issued);
    enc.u64(r.reads_served);
    enc.u64(r.reads_stale);
    enc.u64(r.reads_lost);
    enc.u64(r.writes_issued);
    enc.u64(r.writes_committed);
    enc.u64(r.writes_lost);
    enc.u64(r.replicas as u64);
    enc.f64(r.savings_percent);
    enc.u64(r.crashes);
    enc.u64(r.messages_lost);
    enc.u64(r.sim_events);
    enc.u64(r.completion_time);
}

fn take_report(dec: &mut Dec<'_>) -> Result<EpochReport, String> {
    Ok(EpochReport {
        epoch: dec.u64()? as usize,
        night: dec.bool()?,
        adapted_objects: dec.u64()? as usize,
        rebuilt: dec.bool()?,
        hot_promotions: dec.u64()?,
        hot_demotions: dec.u64()?,
        serving_ntc: dec.u64()?,
        migration_ntc: dec.u64()?,
        migration_planned: dec.u64()? as usize,
        migration_installed: dec.u64()? as usize,
        migration_deallocated: dec.u64()? as usize,
        migration_deferred: dec.u64()? as usize,
        migration_retries: dec.u64()?,
        offered: dec.u64()?,
        admitted: dec.u64()?,
        shed: dec.u64()?,
        reads_issued: dec.u64()?,
        reads_served: dec.u64()?,
        reads_stale: dec.u64()?,
        reads_lost: dec.u64()?,
        writes_issued: dec.u64()?,
        writes_committed: dec.u64()?,
        writes_lost: dec.u64()?,
        replicas: dec.u64()? as usize,
        savings_percent: dec.f64()?,
        crashes: dec.u64()?,
        messages_lost: dec.u64()?,
        sim_events: dec.u64()?,
        completion_time: dec.u64()?,
    })
}

fn put_monitor(enc: &mut Enc, snapshot: &Option<MonitorSnapshot>) {
    match snapshot {
        None => enc.bool(false),
        Some(s) => {
            enc.bool(true);
            enc.bytes(&s.problem);
            enc.u32(u32::try_from(s.population.len()).expect("population fits u32"));
            for (len, words) in &s.population {
                enc.u32(*len);
                enc.u32(u32::try_from(words.len()).expect("words fit u32"));
                for w in words {
                    enc.u64(*w);
                }
            }
        }
    }
}

fn take_monitor(dec: &mut Dec<'_>) -> Result<Option<MonitorSnapshot>, String> {
    if !dec.bool()? {
        return Ok(None);
    }
    let problem = dec.bytes()?;
    let count = dec.u32()? as usize;
    let mut population = Vec::with_capacity(count);
    for _ in 0..count {
        let len = dec.u32()?;
        let nwords = dec.u32()? as usize;
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(dec.u64()?);
        }
        population.push((len, words));
    }
    Ok(Some(MonitorSnapshot {
        problem,
        population,
    }))
}

fn put_hot(enc: &mut Enc, snapshot: &Option<HotSnapshot>) {
    match snapshot {
        None => enc.bool(false),
        Some(s) => {
            enc.bool(true);
            enc.u32(u32::try_from(s.windows.len()).expect("hot windows fit u32"));
            for w in &s.windows {
                enc.u32(u32::try_from(w.len()).expect("hot window fits u32"));
                for &v in w {
                    enc.u64(v);
                }
            }
            enc.u32(u32::try_from(s.ewma.len()).expect("hot ewma fits u32"));
            for &v in &s.ewma {
                enc.u64(v);
            }
            enc.u32(u32::try_from(s.promoted.len()).expect("hot flags fit u32"));
            for &p in &s.promoted {
                enc.bool(p);
            }
            enc.u32(u32::try_from(s.boosted.len()).expect("hot boosts fit u32"));
            for &(site, object) in &s.boosted {
                enc.u64(site);
                enc.u64(object);
            }
            enc.u64(s.promotions);
            enc.u64(s.demotions);
        }
    }
}

fn take_hot(dec: &mut Dec<'_>) -> Result<Option<HotSnapshot>, String> {
    if !dec.bool()? {
        return Ok(None);
    }
    let window_count = dec.u32()? as usize;
    let mut windows = Vec::with_capacity(window_count);
    for _ in 0..window_count {
        let len = dec.u32()? as usize;
        let mut w = Vec::with_capacity(len);
        for _ in 0..len {
            w.push(dec.u64()?);
        }
        windows.push(w);
    }
    let ewma_len = dec.u32()? as usize;
    let mut ewma = Vec::with_capacity(ewma_len);
    for _ in 0..ewma_len {
        ewma.push(dec.u64()?);
    }
    let flag_len = dec.u32()? as usize;
    let mut promoted = Vec::with_capacity(flag_len);
    for _ in 0..flag_len {
        promoted.push(dec.bool()?);
    }
    let boost_len = dec.u32()? as usize;
    let mut boosted = Vec::with_capacity(boost_len);
    for _ in 0..boost_len {
        let site = dec.u64()?;
        let object = dec.u64()?;
        boosted.push((site, object));
    }
    Ok(Some(HotSnapshot {
        windows,
        ewma,
        promoted,
        boosted,
        promotions: dec.u64()?,
        demotions: dec.u64()?,
    }))
}

fn put_u64_list(enc: &mut Enc, values: &[u64]) {
    enc.u32(u32::try_from(values.len()).expect("list fits u32"));
    for &v in values {
        enc.u64(v);
    }
}

fn take_u64_list(dec: &mut Dec<'_>) -> Result<Vec<u64>, String> {
    let len = dec.u32()? as usize;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(dec.u64()?);
    }
    Ok(values)
}

fn put_predictor(enc: &mut Enc, snapshot: &Option<PredictSnapshot>) {
    match snapshot {
        None => enc.bool(false),
        Some(s) => {
            enc.bool(true);
            enc.u32(u32::try_from(s.windows.len()).expect("predict windows fit u32"));
            for w in &s.windows {
                put_u64_list(enc, w);
            }
            put_u64_list(enc, &s.ewma);
            enc.u32(u32::try_from(s.site_windows.len()).expect("predict windows fit u32"));
            for w in &s.site_windows {
                put_u64_list(enc, w);
            }
            put_u64_list(enc, &s.site_ewma);
            match &s.deferred {
                None => enc.bool(false),
                Some(scheme) => {
                    enc.bool(true);
                    enc.bytes(scheme);
                }
            }
        }
    }
}

fn take_predictor(dec: &mut Dec<'_>) -> Result<Option<PredictSnapshot>, String> {
    if !dec.bool()? {
        return Ok(None);
    }
    let window_count = dec.u32()? as usize;
    let mut windows = Vec::with_capacity(window_count);
    for _ in 0..window_count {
        windows.push(take_u64_list(dec)?);
    }
    let ewma = take_u64_list(dec)?;
    let site_count = dec.u32()? as usize;
    let mut site_windows = Vec::with_capacity(site_count);
    for _ in 0..site_count {
        site_windows.push(take_u64_list(dec)?);
    }
    let site_ewma = take_u64_list(dec)?;
    let deferred = if dec.bool()? {
        Some(dec.bytes()?)
    } else {
        None
    };
    Ok(Some(PredictSnapshot {
        windows,
        ewma,
        site_windows,
        site_ewma,
        deferred,
    }))
}

const TAG_RUN_START: u8 = 1;
const TAG_EPOCH_START: u8 = 2;
const TAG_ADMISSION_DRAIN: u8 = 3;
const TAG_MIGRATION_STAGE: u8 = 4;
const TAG_MIGRATION_RETRY: u8 = 5;
const TAG_MIGRATION_INSTALL: u8 = 6;
const TAG_CUTOVER: u8 = 7;
const TAG_EPOCH_END: u8 = 8;
const TAG_RETUNE: u8 = 9;
const TAG_CHECKPOINT: u8 = 10;

impl WalRecord {
    /// Encodes the record payload (without the frame header).
    fn encode_payload(&self) -> Vec<u8> {
        let mut enc = Enc(Vec::new());
        match self {
            WalRecord::RunStart {
                version,
                seed,
                config_hash,
            } => {
                enc.u8(TAG_RUN_START);
                enc.u32(*version);
                enc.u64(*seed);
                enc.u64(*config_hash);
            }
            WalRecord::EpochStart { epoch } => {
                enc.u8(TAG_EPOCH_START);
                enc.u64(*epoch);
            }
            WalRecord::AdmissionDrain {
                epoch,
                site,
                admitted,
                shed,
            } => {
                enc.u8(TAG_ADMISSION_DRAIN);
                enc.u64(*epoch);
                enc.u64(*site);
                enc.u64(*admitted);
                enc.u64(*shed);
            }
            WalRecord::MigrationStage {
                epoch,
                site,
                object,
                source,
            } => {
                enc.u8(TAG_MIGRATION_STAGE);
                enc.u64(*epoch);
                enc.u64(*site);
                enc.u64(*object);
                enc.u64(*source);
            }
            WalRecord::MigrationRetry {
                epoch,
                site,
                object,
                attempt,
            } => {
                enc.u8(TAG_MIGRATION_RETRY);
                enc.u64(*epoch);
                enc.u64(*site);
                enc.u64(*object);
                enc.u64(*attempt);
            }
            WalRecord::MigrationInstall {
                epoch,
                site,
                object,
                version,
            } => {
                enc.u8(TAG_MIGRATION_INSTALL);
                enc.u64(*epoch);
                enc.u64(*site);
                enc.u64(*object);
                enc.u64(*version);
            }
            WalRecord::Cutover {
                epoch,
                object,
                removals,
            } => {
                enc.u8(TAG_CUTOVER);
                enc.u64(*epoch);
                enc.u64(*object);
                enc.u64(*removals);
            }
            WalRecord::EpochEnd {
                epoch,
                report,
                realized,
            } => {
                enc.u8(TAG_EPOCH_END);
                enc.u64(*epoch);
                put_report(&mut enc, report);
                enc.bytes(realized);
            }
            WalRecord::Retune {
                epoch,
                kind,
                adapted_objects,
                target,
                monitor,
                hot,
                predictor,
            } => {
                enc.u8(TAG_RETUNE);
                enc.u64(*epoch);
                enc.u8(kind.tag());
                enc.u64(*adapted_objects);
                enc.bytes(target);
                put_monitor(&mut enc, monitor);
                put_hot(&mut enc, hot);
                put_predictor(&mut enc, predictor);
            }
            WalRecord::Checkpoint(cp) => {
                enc.u8(TAG_CHECKPOINT);
                enc.u64(cp.next_epoch);
                enc.u64(cp.adaptations);
                enc.u64(cp.rebuilds);
                enc.bytes(&cp.realized);
                enc.bytes(&cp.target);
                put_monitor(&mut enc, &cp.monitor);
                put_hot(&mut enc, &cp.hot);
                put_predictor(&mut enc, &cp.predictor);
                enc.u32(u32::try_from(cp.reports.len()).expect("reports fit u32"));
                for r in &cp.reports {
                    put_report(&mut enc, r);
                }
            }
        }
        enc.0
    }

    /// Encodes the record as a complete frame (`len`, `crc`, payload).
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("payload fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, String> {
        let mut dec = Dec {
            buf: payload,
            pos: 0,
        };
        let record = match dec.u8()? {
            TAG_RUN_START => WalRecord::RunStart {
                version: dec.u32()?,
                seed: dec.u64()?,
                config_hash: dec.u64()?,
            },
            TAG_EPOCH_START => WalRecord::EpochStart { epoch: dec.u64()? },
            TAG_ADMISSION_DRAIN => WalRecord::AdmissionDrain {
                epoch: dec.u64()?,
                site: dec.u64()?,
                admitted: dec.u64()?,
                shed: dec.u64()?,
            },
            TAG_MIGRATION_STAGE => WalRecord::MigrationStage {
                epoch: dec.u64()?,
                site: dec.u64()?,
                object: dec.u64()?,
                source: dec.u64()?,
            },
            TAG_MIGRATION_RETRY => WalRecord::MigrationRetry {
                epoch: dec.u64()?,
                site: dec.u64()?,
                object: dec.u64()?,
                attempt: dec.u64()?,
            },
            TAG_MIGRATION_INSTALL => WalRecord::MigrationInstall {
                epoch: dec.u64()?,
                site: dec.u64()?,
                object: dec.u64()?,
                version: dec.u64()?,
            },
            TAG_CUTOVER => WalRecord::Cutover {
                epoch: dec.u64()?,
                object: dec.u64()?,
                removals: dec.u64()?,
            },
            TAG_EPOCH_END => WalRecord::EpochEnd {
                epoch: dec.u64()?,
                report: take_report(&mut dec)?,
                realized: dec.bytes()?,
            },
            TAG_RETUNE => WalRecord::Retune {
                epoch: dec.u64()?,
                kind: RetuneKind::from_tag(dec.u8()?)?,
                adapted_objects: dec.u64()?,
                target: dec.bytes()?,
                monitor: take_monitor(&mut dec)?,
                hot: take_hot(&mut dec)?,
                predictor: take_predictor(&mut dec)?,
            },
            TAG_CHECKPOINT => {
                let next_epoch = dec.u64()?;
                let adaptations = dec.u64()?;
                let rebuilds = dec.u64()?;
                let realized = dec.bytes()?;
                let target = dec.bytes()?;
                let monitor = take_monitor(&mut dec)?;
                let hot = take_hot(&mut dec)?;
                let predictor = take_predictor(&mut dec)?;
                let count = dec.u32()? as usize;
                let mut reports = Vec::with_capacity(count);
                for _ in 0..count {
                    reports.push(take_report(&mut dec)?);
                }
                WalRecord::Checkpoint(Checkpoint {
                    next_epoch,
                    adaptations,
                    rebuilds,
                    realized,
                    target,
                    monitor,
                    hot,
                    predictor,
                    reports,
                })
            }
            other => return Err(format!("unknown record tag {other}")),
        };
        dec.finish()?;
        Ok(record)
    }
}

/// What [`decode_stream`] recovered from raw log bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedWal {
    /// Every record up to the first damage, in order.
    pub records: Vec<WalRecord>,
    /// Bytes of intact log (frame-aligned prefix).
    pub valid_bytes: usize,
    /// The damage that stopped the reader, if any. `WalTruncated` for a
    /// torn tail, `WalCorrupt` for a CRC/structural failure.
    pub damage: Option<ServeError>,
}

/// Decodes a raw byte log, stopping at the first torn or corrupt frame.
/// Never fails: damage is reported, the valid prefix is returned.
pub fn decode_stream(bytes: &[u8]) -> DecodedWal {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return DecodedWal {
                records,
                valid_bytes: pos,
                damage: None,
            };
        }
        let index = records.len() as u64;
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            return DecodedWal {
                records,
                valid_bytes: pos,
                damage: Some(ServeError::WalTruncated {
                    record: index,
                    valid_bytes: pos as u64,
                    dropped_bytes: remaining as u64,
                }),
            };
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if remaining - 8 < len {
            return DecodedWal {
                records,
                valid_bytes: pos,
                damage: Some(ServeError::WalTruncated {
                    record: index,
                    valid_bytes: pos as u64,
                    dropped_bytes: remaining as u64,
                }),
            };
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return DecodedWal {
                records,
                valid_bytes: pos,
                damage: Some(ServeError::WalCorrupt {
                    record: index,
                    reason: "crc mismatch".into(),
                }),
            };
        }
        match WalRecord::decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                return DecodedWal {
                    records,
                    valid_bytes: pos,
                    damage: Some(ServeError::WalCorrupt {
                        record: index,
                        reason,
                    }),
                };
            }
        }
        pos += 8 + len;
    }
}

// --------------------------------------------------------------- stores

/// Where the log's bytes live. The runtime only needs three operations:
/// read everything back, append a blob, and atomically replace the whole
/// log (compaction after a checkpoint, tail truncation after recovery).
pub trait WalStore {
    /// Reads the full current contents.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the backing medium.
    fn load(&mut self) -> io::Result<Vec<u8>>;

    /// Appends `bytes` to the log.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the backing medium.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Replaces the whole log with `bytes`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the backing medium.
    fn reset(&mut self, bytes: &[u8]) -> io::Result<()>;
}

/// File-backed store: a single `wal.log` inside a directory.
#[derive(Debug)]
pub struct FileWalStore {
    path: PathBuf,
}

impl FileWalStore {
    /// Opens (creating the directory if needed) `<dir>/wal.log`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            path: dir.join("wal.log"),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl WalStore for FileWalStore {
    fn load(&mut self) -> io::Result<Vec<u8>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(bytes)?;
        file.sync_data()
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        // Write-then-rename so a crash mid-compaction leaves either the
        // old log or the new one, never a half-written file.
        let tmp = self.path.with_extension("log.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &self.path)
    }
}

/// In-memory store, used by tests and the crash simulator.
#[derive(Debug, Clone, Default)]
pub struct MemWalStore {
    bytes: Vec<u8>,
}

impl MemWalStore {
    /// A store pre-loaded with `bytes` — the durable state "found on disk"
    /// after a simulated crash.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }

    /// The current contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl WalStore for MemWalStore {
    fn load(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes = bytes.to_vec();
        Ok(())
    }
}

/// One durable operation a run performed, as seen by [`TracingStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOp {
    /// `true` for a [`WalStore::reset`] (compaction/truncation), `false`
    /// for an append.
    pub reset: bool,
    /// The bytes of the operation.
    pub bytes: Vec<u8>,
}

/// A store that records every durable operation: the crash simulator
/// replays the op history up to an arbitrary byte to reconstruct the
/// exact on-disk state a real crash would leave.
#[derive(Debug, Clone, Default)]
pub struct TracingStore {
    inner: MemWalStore,
    ops: Vec<WalOp>,
}

impl TracingStore {
    /// The recorded operation history.
    pub fn ops(&self) -> &[WalOp] {
        &self.ops
    }

    /// The final contents.
    pub fn bytes(&self) -> &[u8] {
        self.inner.bytes()
    }

    /// Reconstructs the store contents after `ops[..op]` completed fully
    /// and `ops[op]` wrote only its first `cut` bytes — the durable state
    /// at that crash point. A `reset` op that crashes mid-write keeps the
    /// *old* contents (the backing file store renames atomically).
    pub fn contents_at(&self, op: usize, cut: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        for done in &self.ops[..op] {
            if done.reset {
                bytes = done.bytes.clone();
            } else {
                bytes.extend_from_slice(&done.bytes);
            }
        }
        if let Some(partial) = self.ops.get(op) {
            let cut = cut.min(partial.bytes.len());
            if partial.reset {
                // Atomic replace: either nothing happened or all of it did.
                if cut == partial.bytes.len() {
                    bytes = partial.bytes.clone();
                }
            } else {
                bytes.extend_from_slice(&partial.bytes[..cut]);
            }
        }
        bytes
    }
}

impl WalStore for TracingStore {
    fn load(&mut self) -> io::Result<Vec<u8>> {
        self.inner.load()
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.ops.push(WalOp {
            reset: false,
            bytes: bytes.to_vec(),
        });
        self.inner.append(bytes)
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.ops.push(WalOp {
            reset: true,
            bytes: bytes.to_vec(),
        });
        self.inner.reset(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(epoch: usize) -> EpochReport {
        EpochReport {
            epoch,
            night: epoch % 2 == 1,
            adapted_objects: 2,
            rebuilt: false,
            hot_promotions: 1,
            hot_demotions: 0,
            serving_ntc: 1000 + epoch as u64,
            migration_ntc: 50,
            migration_planned: 3,
            migration_installed: 2,
            migration_deallocated: 1,
            migration_deferred: 1,
            migration_retries: 4,
            offered: 120,
            admitted: 100,
            shed: 20,
            reads_issued: 80,
            reads_served: 78,
            reads_stale: 1,
            reads_lost: 2,
            writes_issued: 20,
            writes_committed: 20,
            writes_lost: 0,
            replicas: 9,
            savings_percent: 33.25,
            crashes: 1,
            messages_lost: 3,
            sim_events: 500,
            completion_time: 412,
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RunStart {
                version: WAL_VERSION,
                seed: 7,
                config_hash: 0xdead_beef,
            },
            WalRecord::EpochStart { epoch: 0 },
            WalRecord::AdmissionDrain {
                epoch: 0,
                site: 2,
                admitted: 40,
                shed: 3,
            },
            WalRecord::MigrationStage {
                epoch: 0,
                site: 1,
                object: 4,
                source: 0,
            },
            WalRecord::MigrationRetry {
                epoch: 0,
                site: 1,
                object: 4,
                attempt: 1,
            },
            WalRecord::MigrationInstall {
                epoch: 0,
                site: 1,
                object: 4,
                version: 2,
            },
            WalRecord::Cutover {
                epoch: 0,
                object: 4,
                removals: 1,
            },
            WalRecord::EpochEnd {
                epoch: 0,
                report: sample_report(0),
                realized: b"drp-scheme v1\n".to_vec(),
            },
            WalRecord::Retune {
                epoch: 0,
                kind: RetuneKind::Adapt,
                adapted_objects: 2,
                target: b"drp-scheme v1\n".to_vec(),
                monitor: Some(MonitorSnapshot {
                    problem: b"drp-instance v1\n".to_vec(),
                    population: vec![(9, vec![0x1ff]), (9, vec![0x0aa])],
                }),
                hot: Some(HotSnapshot {
                    windows: vec![vec![3, 0, 9], vec![1, 1, 1]],
                    ewma: vec![4 << 10, 1 << 10, 7 << 10],
                    promoted: vec![false, false, true],
                    boosted: vec![(1, 2)],
                    promotions: 2,
                    demotions: 1,
                }),
                predictor: Some(PredictSnapshot {
                    windows: vec![vec![5, 0, 2], vec![6, 1, 2]],
                    ewma: vec![5 << 10, 1 << 10, 2 << 10],
                    site_windows: vec![vec![4, 3], vec![5, 4]],
                    site_ewma: vec![4 << 10, 3 << 10],
                    deferred: Some(b"drp-scheme v1\n".to_vec()),
                }),
            },
            WalRecord::Checkpoint(Checkpoint {
                next_epoch: 1,
                adaptations: 1,
                rebuilds: 0,
                realized: b"drp-scheme v1\n".to_vec(),
                target: b"drp-scheme v1\n".to_vec(),
                monitor: Some(MonitorSnapshot {
                    problem: b"drp-instance v1\n".to_vec(),
                    population: vec![],
                }),
                hot: None,
                predictor: Some(PredictSnapshot {
                    windows: vec![vec![5, 0, 2]],
                    ewma: vec![5 << 10, 0, 2 << 10],
                    site_windows: vec![vec![4, 3]],
                    site_ewma: vec![4 << 10, 3 << 10],
                    deferred: None,
                }),
                reports: vec![sample_report(0)],
            }),
        ]
    }

    fn stream(records: &[WalRecord]) -> Vec<u8> {
        records.iter().flat_map(WalRecord::frame).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_round_trips() {
        let records = sample_records();
        let decoded = decode_stream(&stream(&records));
        assert_eq!(decoded.damage, None);
        assert_eq!(decoded.records, records);
        assert_eq!(decoded.valid_bytes, stream(&records).len());
    }

    #[test]
    fn torn_tail_is_reported_and_prefix_kept() {
        let records = sample_records();
        let bytes = stream(&records);
        // Cut mid-way through the last record's payload.
        let torn = &bytes[..bytes.len() - 5];
        let decoded = decode_stream(torn);
        assert_eq!(decoded.records.len(), records.len() - 1);
        match decoded.damage {
            Some(ServeError::WalTruncated {
                record,
                valid_bytes,
                dropped_bytes,
            }) => {
                assert_eq!(record, records.len() as u64 - 1);
                assert_eq!(valid_bytes as usize, decoded.valid_bytes);
                assert!(dropped_bytes > 0);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_record_is_reported_and_prefix_kept() {
        let records = sample_records();
        let mut bytes = stream(&records);
        // Flip a payload byte inside the third record.
        let offset: usize = records[..2].iter().map(|r| r.frame().len()).sum();
        bytes[offset + 8] ^= 0xff;
        let decoded = decode_stream(&bytes);
        assert_eq!(decoded.records.len(), 2);
        assert!(matches!(
            decoded.damage,
            Some(ServeError::WalCorrupt { record: 2, .. })
        ));
    }

    #[test]
    fn tracing_store_reconstructs_crash_states() {
        let mut store = TracingStore::default();
        store.append(b"aaaa").unwrap();
        store.append(b"bbbb").unwrap();
        store.reset(b"cc").unwrap();
        store.append(b"dd").unwrap();
        assert_eq!(store.bytes(), b"ccdd");
        assert_eq!(store.contents_at(0, 2), b"aa");
        assert_eq!(store.contents_at(1, 0), b"aaaa");
        assert_eq!(store.contents_at(2, 1), b"aaaabbbb"); // torn reset keeps old
        assert_eq!(store.contents_at(2, 2), b"cc"); // complete reset replaces
        assert_eq!(store.contents_at(3, 1), b"ccd");
        assert_eq!(store.contents_at(4, 0), b"ccdd");
    }

    #[test]
    fn wal_tuning_rejects_zero_interval() {
        assert!(WalTuning {
            checkpoint_every: 0
        }
        .validate()
        .is_err());
        assert!(WalTuning::default().validate().is_ok());
    }

    #[test]
    fn file_store_round_trips_and_appends() {
        let dir = std::env::temp_dir().join(format!("drp_wal_{}", std::process::id()));
        let mut store = FileWalStore::open(&dir).unwrap();
        assert_eq!(store.load().unwrap(), Vec::<u8>::new());
        store.append(b"one").unwrap();
        store.append(b"two").unwrap();
        assert_eq!(store.load().unwrap(), b"onetwo");
        store.reset(b"three").unwrap();
        assert_eq!(store.load().unwrap(), b"three");
        let _ = std::fs::remove_dir_all(dir);
    }
}
