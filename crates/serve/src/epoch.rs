//! One serving epoch on the discrete-event simulator.
//!
//! An epoch mounts the current replica *directory* (the realized scheme
//! plus per-replica versions) on [`drp_net::sim::Simulator`] and drives it
//! with two interleaved workloads:
//!
//! * **Serving** — the streaming request driver's admitted reads and
//!   writes, replayed per site at their timestamps with the Eq. 4 message
//!   conventions (control-sized read requests and replicator write ships,
//!   primary update broadcasts). With no faults and no migration the
//!   epoch's serving NTC equals [`Problem::total_cost`] exactly.
//! * **Migration** — a [`MigrationPlan`] executed live: each addition's
//!   target fetches the object from the plan's source (nearest old
//!   holder), installs it at the source's version and cuts it into the
//!   directory; an object's deallocations apply only after all its
//!   additions have landed, so a planned source keeps serving fetches
//!   until cutover. Fetch data is charged to a separate migration-NTC
//!   ledger. A crashed source is tolerated by timer-driven retries that
//!   re-source the fetch from the remaining holders in cost order;
//!   additions still pending when the retry budget runs out are reported
//!   as deferred and re-planned by the caller.
//!
//! Everything is deterministic: the simulator's event order is seeded, the
//! shared directory is only touched from the single-threaded event loop,
//! and the streaming driver's timestamps come from a caller-provided
//! stream seed.

use std::sync::{Arc, Mutex};

use drp_core::migration::MigrationPlan;
use drp_core::telemetry::Recorder;
use drp_core::{DenseMatrix, ObjectId, Problem, ReplicationScheme};
use drp_net::sim::{Context, FaultPlan, FaultStats, Message, Node, Simulator};

use crate::ingest::{self, IngestScratch};

/// Timer/retry knobs of the migration executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationTuning {
    /// Extra slack beyond the round-trip added to every fetch timeout.
    pub rpc_timeout: u64,
    /// Cap on the exponential retry backoff.
    pub backoff_cap: u64,
    /// Fetch attempts per addition within one epoch before deferring.
    pub max_attempts: u32,
}

impl Default for MigrationTuning {
    fn default() -> Self {
        Self {
            rpc_timeout: 16,
            backoff_cap: 512,
            max_attempts: 10,
        }
    }
}

impl MigrationTuning {
    /// Rejects degenerate timer settings: a zero-length RPC timeout makes
    /// every fetch "time out" instantly (retry storms), and a zero retry
    /// budget can never recover from a single lost fetch.
    ///
    /// # Errors
    ///
    /// Returns [`drp_core::CoreError::InvalidInstance`] naming the bad knob.
    pub fn validate(&self) -> drp_core::Result<()> {
        if self.rpc_timeout == 0 {
            return Err(drp_core::CoreError::InvalidInstance {
                reason: "MigrationTuning::rpc_timeout must be at least 1".into(),
            });
        }
        if self.max_attempts == 0 {
            return Err(drp_core::CoreError::InvalidInstance {
                reason: "MigrationTuning::max_attempts must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Counters harvested from one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Counters {
    pub offered: u64,
    pub admitted: u64,
    pub shed: u64,
    pub reads_issued: u64,
    pub reads_served: u64,
    pub reads_stale: u64,
    pub writes_issued: u64,
    pub writes_committed: u64,
    pub installed: usize,
    pub deallocated: usize,
    pub deferred: usize,
    pub retries: u64,
}

/// A migration-executor event in deterministic simulator order, harvested
/// so the durable runtime can journal the epoch's stage/retry/cutover
/// history into its write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MigEvent {
    /// A fetch timer fired and the addition was retried (possibly
    /// re-sourced).
    Retry {
        site: usize,
        object: usize,
        attempt: u32,
    },
    /// A fetched replica was installed at its target.
    Install {
        site: usize,
        object: usize,
        version: u64,
    },
    /// An object's last pending addition landed; its deferred removals
    /// were applied.
    Cutover { object: usize, removals: usize },
}

/// What one epoch run produced.
#[derive(Debug, Clone)]
pub(crate) struct EpochOutcome {
    /// The directory at epoch end, as a scheme.
    pub scheme: ReplicationScheme,
    /// Observed per-(site, object) read counts — the statistics window.
    pub observed_reads: DenseMatrix<u64>,
    /// Observed per-(site, object) write counts.
    pub observed_writes: DenseMatrix<u64>,
    pub counters: Counters,
    /// Per-site backpressure: requests shed at each site's admission gate.
    pub shed_by_site: Vec<u64>,
    /// Per-site admitted requests (the drained queue depths).
    pub admitted_by_site: Vec<u64>,
    /// Migration events in simulator order.
    pub mig_events: Vec<MigEvent>,
    pub serving_ntc: u64,
    pub migration_ntc: u64,
    pub fault_stats: FaultStats,
    pub sim_events: u64,
    pub completion_time: u64,
}

/// Inputs of one epoch run.
pub(crate) struct EpochSpec<'a> {
    pub problem: &'a Problem,
    pub scheme: &'a ReplicationScheme,
    pub plan: Option<&'a MigrationPlan>,
    pub period: u64,
    /// Per-site admitted-request cap (0 = unlimited).
    pub admission_limit: u64,
    pub tuning: MigrationTuning,
    pub faults: Option<FaultPlan>,
    /// Stream seed for the request timestamps.
    pub seed: u64,
    /// `false` runs migration only (no serving traffic).
    pub traffic: bool,
    /// Ingestion worker threads (1 = inline on the caller's thread).
    pub threads: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Msg {
    /// Fire one queued request (timer payload carries its index).
    Fire {
        index: usize,
    },
    ReadReq {
        object: usize,
    },
    ReadData {
        object: usize,
        stale: bool,
    },
    WriteShip {
        object: usize,
    },
    Update {
        object: usize,
        version: u64,
    },
    /// Start this site's pending fetches (timer at epoch start).
    MigrateKick,
    FetchReq {
        object: usize,
    },
    FetchData {
        object: usize,
        version: u64,
    },
    FetchRetry {
        object: usize,
        attempt: u32,
    },
}

/// One outstanding replica addition at its target site.
#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    object: usize,
    source: usize,
}

/// The live replica directory plus the epoch's mutable ledgers. Only the
/// single-threaded event loop touches it, the mutex just satisfies `Sync`.
struct LiveState {
    /// Row-major `m x n` holder flags.
    holds: Vec<bool>,
    /// Row-major `m x n` installed versions.
    version: Vec<u64>,
    /// Per-object committed version at the primary.
    committed: Vec<u64>,
    /// Outstanding additions per target site.
    pending: Vec<Vec<PendingFetch>>,
    /// Outstanding additions per object (gates deallocation).
    pending_by_object: Vec<usize>,
    /// Removals deferred until their object's cutover.
    removals_by_object: Vec<Vec<usize>>,
    /// Migration events in simulator order.
    events: Vec<MigEvent>,
    counters: Counters,
    migration_ntc: u64,
}

struct Shared<'a> {
    problem: &'a Problem,
    /// Per-site admitted request queues: `(time, object, is_write)`,
    /// borrowed from the caller's reusable [`IngestScratch`].
    queues: &'a [Vec<(u64, usize, bool)>],
    tuning: MigrationTuning,
    state: Mutex<LiveState>,
}

impl Shared<'_> {
    fn cost(&self, a: usize, b: usize) -> u64 {
        self.problem.costs().cost(a, b)
    }

    fn n(&self) -> usize {
        self.problem.num_objects()
    }
}

struct ServeNode<'a> {
    shared: Arc<Shared<'a>>,
}

impl ServeNode<'_> {
    /// Nearest current holder of `object` as seen from `me`: min link cost,
    /// site id as the deterministic tie-break.
    fn nearest_holder(&self, state: &LiveState, me: usize, object: usize) -> Option<usize> {
        let n = self.shared.n();
        (0..self.shared.problem.num_sites())
            .filter(|&j| state.holds[j * n + object])
            .min_by_key(|&j| (self.shared.cost(me, j), j))
    }

    /// Current holders other than `me`, cheapest link first — the failover
    /// order for re-sourcing a fetch.
    fn fetch_candidates(&self, state: &LiveState, me: usize, object: usize) -> Vec<usize> {
        let n = self.shared.n();
        let mut holders: Vec<usize> = (0..self.shared.problem.num_sites())
            .filter(|&j| j != me && state.holds[j * n + object])
            .collect();
        holders.sort_by_key(|&j| (self.shared.cost(me, j), j));
        holders
    }

    fn commit_write(&self, state: &mut LiveState, committer: usize, object: usize) -> u64 {
        let n = self.shared.n();
        state.committed[object] += 1;
        let version = state.committed[object];
        state.version[committer * n + object] = version;
        state.counters.writes_committed += 1;
        version
    }

    /// Primary's update broadcast to every other current holder.
    fn broadcast(
        &self,
        ctx: &mut Context<'_, Msg>,
        state: &LiveState,
        object: usize,
        version: u64,
    ) {
        let n = self.shared.n();
        let size = self.shared.problem.object_size(ObjectId::new(object));
        let me = ctx.node_id();
        for j in 0..self.shared.problem.num_sites() {
            if j != me && state.holds[j * n + object] {
                ctx.send(j, size, Msg::Update { object, version });
            }
        }
    }

    fn issue(&self, ctx: &mut Context<'_, Msg>, object: usize, is_write: bool) {
        let me = ctx.node_id();
        let n = self.shared.n();
        let k = ObjectId::new(object);
        let mut state = self.shared.state.lock().expect("state lock");
        if is_write {
            let sp = self.shared.problem.primary(k).index();
            if sp == me {
                let version = self.commit_write(&mut state, me, object);
                self.broadcast(ctx, &state, object, version);
            } else {
                let size = if state.holds[me * n + object] {
                    0
                } else {
                    self.shared.problem.object_size(k)
                };
                ctx.send(sp, size, Msg::WriteShip { object });
            }
        } else {
            match self.nearest_holder(&state, me, object) {
                Some(j) if j == me => {
                    state.counters.reads_served += 1;
                    if state.version[me * n + object] < state.committed[object] {
                        state.counters.reads_stale += 1;
                    }
                }
                Some(j) => ctx.send(j, 0, Msg::ReadReq { object }),
                // Unreachable while primaries stay pinned; drop the read
                // (it counts as lost) rather than panic mid-epoch.
                None => {}
            }
        }
    }

    /// Installs a fetched replica and, once its object has no more pending
    /// additions, applies the deferred deallocations — the cutover step.
    fn install(&self, state: &mut LiveState, me: usize, object: usize, version: u64) {
        let n = self.shared.n();
        state.pending[me].retain(|p| p.object != object);
        state.holds[me * n + object] = true;
        let slot = &mut state.version[me * n + object];
        *slot = (*slot).max(version);
        let installed_version = *slot;
        state.counters.installed += 1;
        state.events.push(MigEvent::Install {
            site: me,
            object,
            version: installed_version,
        });
        state.pending_by_object[object] -= 1;
        if state.pending_by_object[object] == 0 {
            let removals = std::mem::take(&mut state.removals_by_object[object]);
            let count = removals.len();
            for site in removals {
                state.holds[site * n + object] = false;
                state.counters.deallocated += 1;
            }
            state.events.push(MigEvent::Cutover {
                object,
                removals: count,
            });
        }
    }

    /// Retry delay covering the request + data round trip plus backoff.
    fn fetch_deadline(&self, me: usize, source: usize, attempt: u32) -> u64 {
        let rtt = 2 * self.shared.cost(me, source);
        let backoff =
            (self.shared.tuning.rpc_timeout << attempt.min(16)).min(self.shared.tuning.backoff_cap);
        rtt + self.shared.tuning.rpc_timeout + backoff
    }
}

impl Node<Msg> for ServeNode<'_> {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        for (index, &(time, _, _)) in self.shared.queues[ctx.node_id()].iter().enumerate() {
            ctx.set_timer(time, Msg::Fire { index });
        }
        let has_pending = {
            let state = self.shared.state.lock().expect("state lock");
            !state.pending[ctx.node_id()].is_empty()
        };
        if has_pending {
            ctx.set_timer(0, Msg::MigrateKick);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, payload: Msg) {
        match payload {
            Msg::Fire { index } => {
                let (_, object, is_write) = self.shared.queues[ctx.node_id()][index];
                self.issue(ctx, object, is_write);
            }
            Msg::MigrateKick => {
                let me = ctx.node_id();
                // Take the pending list instead of cloning it; `ctx` calls
                // only enqueue events (no reentrant state access), so the
                // list can be put back untouched after the sends.
                let fetches = {
                    let mut state = self.shared.state.lock().expect("state lock");
                    std::mem::take(&mut state.pending[me])
                };
                for fetch in &fetches {
                    ctx.send(
                        fetch.source,
                        0,
                        Msg::FetchReq {
                            object: fetch.object,
                        },
                    );
                    ctx.set_timer(
                        self.fetch_deadline(me, fetch.source, 0),
                        Msg::FetchRetry {
                            object: fetch.object,
                            attempt: 1,
                        },
                    );
                }
                self.shared.state.lock().expect("state lock").pending[me] = fetches;
            }
            Msg::FetchRetry { object, attempt } => {
                let me = ctx.node_id();
                let candidate = {
                    let mut state = self.shared.state.lock().expect("state lock");
                    if !state.pending[me].iter().any(|p| p.object == object) {
                        return; // already installed
                    }
                    state.counters.retries += 1;
                    state.events.push(MigEvent::Retry {
                        site: me,
                        object,
                        attempt,
                    });
                    let candidates = self.fetch_candidates(&state, me, object);
                    candidates
                        .get(attempt as usize % candidates.len().max(1))
                        .copied()
                };
                let Some(source) = candidate else { return };
                ctx.send(source, 0, Msg::FetchReq { object });
                if attempt < self.shared.tuning.max_attempts {
                    ctx.set_timer(
                        self.fetch_deadline(me, source, attempt),
                        Msg::FetchRetry {
                            object,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, msg: Message<Msg>) {
        let me = ctx.node_id();
        let n = self.shared.n();
        match msg.payload {
            Msg::ReadReq { object } => {
                let stale = {
                    let state = self.shared.state.lock().expect("state lock");
                    state.version[me * n + object] < state.committed[object]
                };
                let size = self.shared.problem.object_size(ObjectId::new(object));
                ctx.send(msg.src, size, Msg::ReadData { object, stale });
            }
            Msg::ReadData { stale, .. } => {
                let mut state = self.shared.state.lock().expect("state lock");
                state.counters.reads_served += 1;
                if stale {
                    state.counters.reads_stale += 1;
                }
            }
            Msg::WriteShip { object } => {
                let mut state = self.shared.state.lock().expect("state lock");
                let version = self.commit_write(&mut state, me, object);
                self.broadcast(ctx, &state, object, version);
            }
            Msg::Update { object, version } => {
                let mut state = self.shared.state.lock().expect("state lock");
                let slot = &mut state.version[me * n + object];
                *slot = (*slot).max(version);
            }
            Msg::FetchReq { object } => {
                // Serve the fetch even after a local deallocation: the data
                // stays on disk until overwritten, and refusing would only
                // stall a migration that re-sourced late.
                let (version, size) = {
                    let mut state = self.shared.state.lock().expect("state lock");
                    let size = self.shared.problem.object_size(ObjectId::new(object));
                    state.migration_ntc += size * self.shared.cost(me, msg.src);
                    (state.version[me * n + object], size)
                };
                ctx.send(msg.src, size, Msg::FetchData { object, version });
            }
            Msg::FetchData { object, version } => {
                let mut state = self.shared.state.lock().expect("state lock");
                if state.pending[me].iter().any(|p| p.object == object) {
                    self.install(&mut state, me, object, version);
                }
            }
            Msg::Fire { .. } | Msg::MigrateKick | Msg::FetchRetry { .. } => {}
        }
    }
}

/// Runs one epoch and harvests its outcome. The caller owns the
/// [`IngestScratch`] so its buffers amortize across epochs; the admitted
/// queues it holds stay valid (and borrowed) for the whole epoch.
pub(crate) fn run_epoch(
    spec: &EpochSpec<'_>,
    scratch: &mut IngestScratch,
    recorder: Arc<dyn Recorder>,
) -> drp_core::Result<EpochOutcome> {
    let problem = spec.problem;
    let m = problem.num_sites();
    let n = problem.num_objects();

    // Ingestion front end: stream this period's requests in batches
    // through the sharded admission pipeline (see [`crate::ingest`]),
    // leaving the admitted per-site queues in the scratch.
    let mut observed_reads = DenseMatrix::zeros(m, n);
    let mut observed_writes = DenseMatrix::zeros(m, n);
    let mut counters = Counters::default();
    let mut shed_by_site = vec![0u64; m];
    let mut admitted_by_site = vec![0u64; m];
    if spec.traffic {
        let ingested = ingest::ingest_epoch(
            &ingest::IngestSpec {
                problem,
                period: spec.period,
                seed: spec.seed,
                admission_limit: spec.admission_limit,
                threads: spec.threads,
                batch: 0,
                depth: 0,
            },
            scratch,
            &mut observed_reads,
            &mut observed_writes,
        );
        counters.offered = ingested.report.offered();
        counters.shed = ingested.report.shed();
        counters.reads_issued = ingested.admitted_reads;
        counters.writes_issued = ingested.admitted_writes;
        counters.admitted = ingested.admitted_reads + ingested.admitted_writes;
        shed_by_site.copy_from_slice(&ingested.report.shed_by_site);
        admitted_by_site.copy_from_slice(&ingested.report.admitted_by_site);
        if recorder.enabled() {
            recorder.add_counter("ingest.offered", counters.offered);
            recorder.add_counter("ingest.admitted", counters.admitted);
            recorder.add_counter("ingest.shed", counters.shed);
            recorder.add_counter("ingest.batches", ingested.report.batches);
        }
    } else {
        // Migration-only epoch: make sure no stale queues from a previous
        // epoch leak into the simulator.
        scratch.reset(m);
    }

    // Directory bootstrap: current holders, plus the migration plan staged
    // as pending fetches. Objects with removals but no additions cut over
    // immediately (there is nothing to wait for).
    let mut holds = vec![false; m * n];
    for k in problem.objects() {
        for i in problem.sites() {
            holds[i.index() * n + k.index()] = spec.scheme.holds(i, k);
        }
    }
    let mut pending: Vec<Vec<PendingFetch>> = vec![Vec::new(); m];
    let mut pending_by_object = vec![0usize; n];
    let mut removals_by_object: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut events: Vec<MigEvent> = Vec::new();
    if let Some(plan) = spec.plan {
        for addition in &plan.additions {
            pending[addition.site.index()].push(PendingFetch {
                object: addition.object.index(),
                source: addition.source.index(),
            });
            pending_by_object[addition.object.index()] += 1;
        }
        for &(site, object) in &plan.removals {
            removals_by_object[object.index()].push(site.index());
        }
        for (object, removals) in removals_by_object.iter_mut().enumerate() {
            if pending_by_object[object] == 0 && !removals.is_empty() {
                let count = removals.len();
                for site in removals.drain(..) {
                    holds[site * n + object] = false;
                    counters.deallocated += 1;
                }
                events.push(MigEvent::Cutover {
                    object,
                    removals: count,
                });
            }
        }
    }

    let shared = Arc::new(Shared {
        problem,
        queues: &scratch.queues,
        tuning: spec.tuning,
        state: Mutex::new(LiveState {
            holds,
            version: vec![0u64; m * n],
            committed: vec![0u64; n],
            pending,
            pending_by_object,
            removals_by_object,
            events,
            counters,
            migration_ntc: 0,
        }),
    });
    let nodes: Vec<Box<dyn Node<Msg> + '_>> = (0..m)
        .map(|_| {
            Box::new(ServeNode {
                shared: Arc::clone(&shared),
            }) as Box<dyn Node<Msg> + '_>
        })
        .collect();
    let mut sim = Simulator::new(problem.costs(), nodes).map_err(drp_core::CoreError::from)?;
    sim.set_recorder(recorder);
    if let Some(plan) = spec.faults.clone() {
        sim.set_fault_plan(plan);
    }
    sim.run_to_completion().map_err(drp_core::CoreError::from)?;

    let stats = sim.stats();
    let fault_stats = sim.fault_stats();
    let sim_events = sim.events_processed();
    let completion_time = sim.now();
    drop(sim);
    let shared = Arc::into_inner(shared).expect("epoch nodes dropped with the simulator");
    let state = shared.state.into_inner().expect("state lock");
    let mut counters = state.counters;
    counters.deferred = state.pending.iter().map(Vec::len).sum();
    let mut holds = state.holds;
    let scheme = match ReplicationScheme::from_fn(problem, |i, k| holds[i.index() * n + k.index()])
    {
        Ok(scheme) => scheme,
        Err(drp_core::CoreError::InsufficientCapacity { .. }) => {
            // A deferred cutover left some site holding both its old replica
            // and a freshly installed one. Reclaim capacity by applying the
            // outstanding deallocations early: what remains is a subset of
            // the migration target plus the old scheme's survivors, which
            // both fit. The unfinished additions stay deferred and are
            // re-planned by the caller.
            for (object, removals) in state.removals_by_object.iter().enumerate() {
                for &site in removals {
                    if holds[site * n + object] {
                        holds[site * n + object] = false;
                        counters.deallocated += 1;
                    }
                }
            }
            ReplicationScheme::from_fn(problem, |i, k| holds[i.index() * n + k.index()])?
        }
        Err(other) => return Err(other),
    };
    Ok(EpochOutcome {
        scheme,
        observed_reads,
        observed_writes,
        counters,
        shed_by_site,
        admitted_by_site,
        mig_events: state.events,
        serving_ntc: stats.transfer_cost.saturating_sub(state.migration_ntc),
        migration_ntc: state.migration_ntc,
        fault_stats,
        sim_events,
        completion_time,
    })
}
