//! # drp-serve — the closed-loop online adaptation runtime
//!
//! The other crates in this workspace answer *"where should replicas go?"*
//! for a known access pattern. This crate closes the loop the paper's
//! Section 5 sketches around AGRA: a long-running replication **service**
//! that only learns the pattern by serving it.
//!
//! ```text
//!             ┌────────────────────────── epoch e ───────────────────────────┐
//!  streaming  │  ┌─────────┐ requests ┌────────────┐ fetches  ┌───────────┐  │
//!  driver ───▶│  │admission│ ───────▶ │ simulator  │ ◀──────▶ │ migration │  │
//!  (trace::   │  │  gate   │          │ (serving)  │          │ executor  │  │
//!   stream)   │  └─────────┘          └─────┬──────┘          └───────────┘  │
//!             └─────────────────────────────┼──────────────────────────────-─┘
//!                                           │ observed (site, object) counts
//!                                           ▼
//!                        ┌───────────────────────────────────┐
//!                        │ boundary decision (Policy)        │
//!                        │  day:   monitor + AGRA re-tune    │
//!                        │  night: full GRA rebuild          │
//!                        └────────────────┬──────────────────┘
//!                                         │ target scheme
//!                                         ▼
//!                        migration plan for epoch e + 1
//! ```
//!
//! Each epoch streams one period of timed requests (generated lazily by
//! [`drp_workload::trace::stream`]) through per-site admission gates into
//! the deterministic discrete-event simulator, which serves them against
//! the current replica directory under the paper's Eq. 4 message
//! conventions. Concurrently, the migration executor fetches any replicas
//! the previous boundary decided to add — from the nearest old holder,
//! with crash-tolerant retry/re-sourcing — and cuts them into the
//! directory before applying deallocations. Serving NTC and migration NTC
//! are charged to separate ledgers.
//!
//! At each boundary the observed counters become a fresh [`Problem`]
//! snapshot and the [`Policy`] picks the next target scheme; the resulting
//! [`MigrationPlan`] executes *live* during the next epoch while serving
//! continues on the old replicas.
//!
//! The whole run is summarized in a serde-serializable [`ServiceReport`]
//! whose [`fingerprint`](ServiceReport::fingerprint) is bitwise-stable
//! across thread counts and the `parallel` feature — the determinism
//! contract CI enforces.
//!
//! [`Problem`]: drp_core::Problem
//! [`MigrationPlan`]: drp_core::migration::MigrationPlan
//!
//! # Examples
//!
//! Serve a paper-style instance for three epochs under pattern drift and
//! compare the monitor against the frozen baseline:
//!
//! ```
//! use drp_serve::{run_service, Policy, ServeConfig};
//! use drp_workload::{PatternChange, WorkloadSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(11);
//! let problem = WorkloadSpec::paper(6, 8, 5.0, 25.0).generate(&mut rng)?;
//! let drift = PatternChange { change_percent: 400.0, objects_percent: 40.0, read_share: 0.9 };
//!
//! let config = ServeConfig {
//!     policy: Policy::Monitor,
//!     epochs: 3,
//!     seed: 11,
//!     drift: Some(drift),
//!     ..ServeConfig::default()
//! };
//! let adaptive = run_service(&problem, &config)?;
//! let frozen = run_service(&problem, &ServeConfig { policy: Policy::Static, ..config.clone() })?;
//!
//! // Same seed ⇒ the two runs saw identical traffic; only adaptation differs.
//! assert_eq!(adaptive.epochs[0].offered, frozen.epochs[0].offered);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod epoch;
pub mod hotkey;
pub mod ingest;
pub mod model;
pub mod oracle;
pub mod predict;
pub mod recovery;
pub mod report;
pub mod runtime;
pub mod wal;

pub use epoch::MigrationTuning;
pub use hotkey::{HotKeyConfig, HotKeyDetector, HotSnapshot};
pub use ingest::{ingest_epoch, IngestOutcome, IngestScratch, IngestSpec};
pub use oracle::OracleReport;
pub use predict::{DemandPredictor, PredictConfig, PredictSnapshot, Predictor, PredictorKind};
pub use recovery::{crash_points, RecoveryInfo};
pub use report::{EpochReport, ServiceReport, ServiceTotals};
pub use runtime::{
    execute_migration, run_service, run_service_durable, run_service_durable_recorded,
    run_service_recorded, run_service_with_oracle, DurableOutcome, FaultSpec, MigrationOutcome,
    Policy, ServeConfig,
};
pub use wal::{FileWalStore, MemWalStore, TracingStore, WalStore, WalTuning};
