//! Thread-per-core ingestion front end for the serving runtime.
//!
//! One epoch's request trace is pulled from [`drp_workload::trace::stream`]
//! in fixed-size batches by a single producer (the rng draw order is the
//! serial, determinism-bearing part) and routed to shard workers over
//! *bounded* channels — a worker that falls behind blocks the producer,
//! which is the backpressure contract. Sites are partitioned into
//! contiguous shard ranges, so each worker owns a disjoint set of per-site
//! queues and a disjoint block of rows in the observed-traffic matrices:
//! no locks anywhere on the hot path.
//!
//! Determinism: a site's arrival buffer receives exactly the producer's
//! sub-sequence for that site, in producer order, no matter how many
//! workers run (each site has one owner, and the per-worker channel is
//! FIFO). Sorting by `(time, per-site sequence)` therefore reproduces the
//! single-threaded `(time, global sequence)` order restricted to the site,
//! and the admitted queues — and everything downstream of them — are
//! bitwise-identical across `threads` ∈ {1, 2, 4, …}. The shed accounting
//! satisfies `offered == admitted + shed` per site, asserted by property
//! tests.
//!
//! With `threads == 1` the whole pipeline runs inline on the caller's
//! thread: no channels, no spawns, same code for counting and finalizing.

use drp_core::{DenseMatrix, IngestReport, Problem};
use drp_workload::trace::{self, Request, RequestKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Requests per producer pull from the trace stream.
pub const DEFAULT_BATCH: usize = 8_192;
/// Bounded-channel depth, in batches, before the producer blocks.
pub const DEFAULT_DEPTH: usize = 4;

/// Inputs of one ingested epoch.
#[derive(Debug, Clone, Copy)]
pub struct IngestSpec<'a> {
    /// The instance whose aggregate pattern is streamed.
    pub problem: &'a Problem,
    /// Period length in simulator time units.
    pub period: u64,
    /// Stream seed for the request timestamps.
    pub seed: u64,
    /// Per-site admitted-request cap (0 = unlimited).
    pub admission_limit: u64,
    /// Ingestion worker threads (values < 1 mean 1; capped at the site
    /// count). Any value yields bitwise-identical queues and reports.
    pub threads: usize,
    /// Requests per producer batch (0 = [`DEFAULT_BATCH`]).
    pub batch: usize,
    /// Channel depth in batches (0 = [`DEFAULT_DEPTH`]).
    pub depth: usize,
}

/// One routed arrival in a site's buffer. `seq` is the site-local arrival
/// index — the restriction of the producer's global order to this site —
/// which makes the admission sort thread-count-independent.
#[derive(Debug, Clone, Copy)]
struct SiteReq {
    time: u64,
    seq: u32,
    object: u32,
    write: bool,
}

/// Reusable per-epoch buffers: arrival staging per site, the admitted
/// queues the epoch engine mounts, and the producer's pull buffer. Hold
/// one per serving loop and every epoch reuses the allocations.
#[derive(Debug, Default)]
pub struct IngestScratch {
    sites: Vec<Vec<SiteReq>>,
    /// Admitted per-site queues: `(time, object, is_write)`, time-ordered.
    /// Valid until the next [`ingest_epoch`] call overwrites them.
    pub queues: Vec<Vec<(u64, usize, bool)>>,
    pull: Vec<Request>,
}

impl IngestScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn reset(&mut self, num_sites: usize) {
        self.sites.resize_with(num_sites, Vec::new);
        self.queues.resize_with(num_sites, Vec::new);
        for buf in &mut self.sites {
            buf.clear();
        }
        for q in &mut self.queues {
            q.clear();
        }
        self.pull.clear();
    }
}

/// What one ingested epoch produced, besides the queues in the scratch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Per-site admission accounting (`offered == admitted + shed`).
    pub report: IngestReport,
    /// Reads among the admitted requests.
    pub admitted_reads: u64,
    /// Writes among the admitted requests.
    pub admitted_writes: u64,
}

/// The per-site admission cap as a queue length, saturating so an
/// oversized u64 limit means "admit everything" on every target width.
fn site_limit(admission_limit: u64, offered: usize) -> usize {
    if admission_limit == 0 {
        offered
    } else {
        usize::try_from(admission_limit).unwrap_or(usize::MAX)
    }
}

/// Routes one request into its site buffer and the observation window.
/// `base` is the first site of the owning shard; `reads`/`writes` are that
/// shard's rows of the observed matrices.
#[inline]
fn absorb(
    r: &Request,
    base: usize,
    n: usize,
    sites: &mut [Vec<SiteReq>],
    reads: &mut [u64],
    writes: &mut [u64],
) {
    let local = r.site.index() - base;
    let object = r.object.index();
    let is_write = r.kind == RequestKind::Write;
    if is_write {
        writes[local * n + object] += 1;
    } else {
        reads[local * n + object] += 1;
    }
    let buf = &mut sites[local];
    let seq = buf.len() as u32;
    buf.push(SiteReq {
        time: r.time,
        seq,
        object: object as u32,
        write: is_write,
    });
}

/// Sorts, sheds and drains one site's arrivals into its admitted queue.
/// Returns `(offered, shed, admitted_reads, admitted_writes)`.
fn finalize_site(
    buf: &mut Vec<SiteReq>,
    queue: &mut Vec<(u64, usize, bool)>,
    admission_limit: u64,
) -> (u64, u64, u64, u64) {
    buf.sort_unstable_by_key(|r| (r.time, r.seq));
    let offered = buf.len();
    let limit = site_limit(admission_limit, offered);
    let shed = offered.saturating_sub(limit);
    buf.truncate(limit);
    let (mut reads, mut writes) = (0u64, 0u64);
    queue.reserve(buf.len());
    for r in buf.drain(..) {
        if r.write {
            writes += 1;
        } else {
            reads += 1;
        }
        queue.push((r.time, r.object as usize, r.write));
    }
    (offered as u64, shed as u64, reads, writes)
}

/// Contiguous site ranges: shard `w` of `t` owns `[lo, hi)`.
fn shard_ranges(num_sites: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.max(1).min(num_sites.max(1));
    (0..t)
        .map(|w| (w * num_sites / t, (w + 1) * num_sites / t))
        .collect()
}

/// Splits a row-major matrix slice into per-shard row blocks.
fn split_rows<'x>(
    mut slice: &'x mut [u64],
    ranges: &[(usize, usize)],
    cols: usize,
) -> Vec<&'x mut [u64]> {
    let mut out = Vec::with_capacity(ranges.len());
    for &(lo, hi) in ranges {
        let (head, tail) = slice.split_at_mut((hi - lo) * cols);
        out.push(head);
        slice = tail;
    }
    out
}

/// Splits a per-site vector into per-shard blocks.
fn split_sites<'x, T>(mut slice: &'x mut [T], ranges: &[(usize, usize)]) -> Vec<&'x mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    for &(lo, hi) in ranges {
        let (head, tail) = slice.split_at_mut(hi - lo);
        out.push(head);
        slice = tail;
    }
    out
}

/// Streams one period's trace into per-site admitted queues (left in
/// `scratch.queues`) and the observed-traffic matrices, using up to
/// `spec.threads` shard workers. The matrices must be `m x n` and are
/// *incremented*, not cleared — pass zeroed matrices for a fresh window.
///
/// Every offered request lands in the observation window; only admitted
/// ones survive into the queues. All outputs are bitwise-identical for
/// any `threads` value.
pub fn ingest_epoch(
    spec: &IngestSpec<'_>,
    scratch: &mut IngestScratch,
    observed_reads: &mut DenseMatrix<u64>,
    observed_writes: &mut DenseMatrix<u64>,
) -> IngestOutcome {
    let problem = spec.problem;
    let m = problem.num_sites();
    let n = problem.num_objects();
    assert_eq!(observed_reads.rows(), m, "observed_reads shape");
    assert_eq!(observed_writes.rows(), m, "observed_writes shape");
    scratch.reset(m);

    let batch = if spec.batch == 0 {
        DEFAULT_BATCH
    } else {
        spec.batch
    };
    let depth = if spec.depth == 0 {
        DEFAULT_DEPTH
    } else {
        spec.depth
    };
    let threads = spec.threads.max(1).min(m.max(1));
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut stream = trace::stream(problem, spec.period, &mut rng);
    let mut batches = 0u64;

    if threads == 1 {
        let reads = observed_reads.as_mut_slice();
        let writes = observed_writes.as_mut_slice();
        loop {
            scratch.pull.clear();
            if stream.fill(&mut scratch.pull, batch) == 0 {
                break;
            }
            batches += 1;
            for r in &scratch.pull {
                absorb(r, 0, n, &mut scratch.sites, reads, writes);
            }
        }
    } else {
        let ranges = shard_ranges(m, threads);
        let read_blocks = split_rows(observed_reads.as_mut_slice(), &ranges, n);
        let write_blocks = split_rows(observed_writes.as_mut_slice(), &ranges, n);
        let site_blocks = split_sites(&mut scratch.sites, &ranges);

        let mut senders = Vec::with_capacity(ranges.len());
        let mut workers = Vec::with_capacity(ranges.len());
        for (((&(lo, _), sites), reads), writes) in ranges
            .iter()
            .zip(site_blocks)
            .zip(read_blocks)
            .zip(write_blocks)
        {
            let (tx, rx) = crossbeam::channel::bounded::<Vec<Request>>(depth);
            senders.push(tx);
            workers.push((lo, rx, sites, reads, writes));
        }

        std::thread::scope(|scope| {
            for (lo, rx, sites, reads, writes) in workers {
                scope.spawn(move || {
                    while let Ok(sub) = rx.recv() {
                        for r in &sub {
                            absorb(r, lo, n, sites, reads, writes);
                        }
                    }
                });
            }

            // Producer: pull a batch, partition it by shard, send each
            // shard its sub-batch. `send` blocks while a shard's channel
            // is full — bounded-queue backpressure.
            let mut subs: Vec<Vec<Request>> = ranges.iter().map(|_| Vec::new()).collect();
            loop {
                scratch.pull.clear();
                if stream.fill(&mut scratch.pull, batch) == 0 {
                    break;
                }
                batches += 1;
                for sub in &mut subs {
                    sub.clear();
                }
                for &r in &scratch.pull {
                    // Contiguous equal ranges: the owner index is direct.
                    let w = (r.site.index() * ranges.len()) / m;
                    let w = if r.site.index() < ranges[w].0 {
                        w - 1
                    } else if r.site.index() >= ranges[w].1 {
                        w + 1
                    } else {
                        w
                    };
                    subs[w].push(r);
                }
                for (sub, tx) in subs.iter_mut().zip(&senders) {
                    if !sub.is_empty() {
                        tx.send(std::mem::take(sub)).expect("worker alive");
                    }
                }
            }
            drop(senders); // hang up: workers drain and exit
        });
    }

    // Finalize per site on the caller's thread, in site order, so the
    // report's aggregation order never depends on worker scheduling.
    let mut report = IngestReport::zeros(m);
    report.batches = batches;
    let mut outcome = IngestOutcome::default();
    for site in 0..m {
        let (offered, shed, reads, writes) = finalize_site(
            &mut scratch.sites[site],
            &mut scratch.queues[site],
            spec.admission_limit,
        );
        report.offered_by_site[site] = offered;
        report.shed_by_site[site] = shed;
        report.admitted_by_site[site] = offered - shed;
        outcome.admitted_reads += reads;
        outcome.admitted_writes += writes;
    }
    outcome.report = report;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::WorkloadSpec;

    fn problem(m: usize, n: usize, seed: u64) -> Problem {
        WorkloadSpec::paper(m, n, 10.0, 25.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    fn spec(problem: &Problem, threads: usize, admission_limit: u64) -> IngestSpec<'_> {
        IngestSpec {
            problem,
            period: 500,
            seed: 42,
            admission_limit,
            threads,
            batch: 64, // small batches so multi-batch paths are exercised
            depth: 2,
        }
    }

    #[test]
    fn single_thread_matches_the_legacy_materialized_path() {
        // Reference: the old run_epoch ingestion — materialize the whole
        // stream with global sequence numbers, sort, shed.
        let p = problem(7, 5, 3);
        let s = spec(&p, 1, 6);
        let mut rng = StdRng::seed_from_u64(s.seed);
        let mut arrivals: Vec<Vec<(u64, u64, usize, bool)>> = vec![Vec::new(); 7];
        for (seq, r) in trace::stream(&p, s.period, &mut rng).enumerate() {
            arrivals[r.site.index()].push((
                r.time,
                seq as u64,
                r.object.index(),
                r.kind == RequestKind::Write,
            ));
        }
        let mut want: Vec<Vec<(u64, usize, bool)>> = Vec::new();
        for mut list in arrivals {
            list.sort_unstable();
            list.truncate(6);
            want.push(list.into_iter().map(|(t, _, o, w)| (t, o, w)).collect());
        }

        let mut scratch = IngestScratch::new();
        let mut reads = DenseMatrix::zeros(7, 5);
        let mut writes = DenseMatrix::zeros(7, 5);
        let out = ingest_epoch(&s, &mut scratch, &mut reads, &mut writes);
        assert_eq!(scratch.queues, want);
        assert!(out.report.balanced());
    }

    #[test]
    fn queues_and_reports_are_identical_across_thread_counts() {
        type Snapshot = (Vec<Vec<(u64, usize, bool)>>, IngestOutcome, Vec<u64>);
        let p = problem(9, 6, 4);
        let mut base: Option<Snapshot> = None;
        for threads in [1usize, 2, 4, 9, 16] {
            let s = spec(&p, threads, 11);
            let mut scratch = IngestScratch::new();
            let mut reads = DenseMatrix::zeros(9, 6);
            let mut writes = DenseMatrix::zeros(9, 6);
            let out = ingest_epoch(&s, &mut scratch, &mut reads, &mut writes);
            assert!(out.report.balanced());
            let observed: Vec<u64> = reads.iter().chain(writes.iter()).copied().collect();
            match &base {
                None => base = Some((scratch.queues.clone(), out, observed)),
                Some((q, o, obs)) => {
                    assert_eq!(&scratch.queues, q, "queues differ at threads={threads}");
                    assert_eq!(&out, o, "outcome differs at threads={threads}");
                    assert_eq!(&observed, obs, "window differs at threads={threads}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bitwise_stable() {
        let p = problem(5, 4, 7);
        let s = spec(&p, 3, 0);
        let mut scratch = IngestScratch::new();
        let mut first = None;
        for _ in 0..3 {
            let mut reads = DenseMatrix::zeros(5, 4);
            let mut writes = DenseMatrix::zeros(5, 4);
            let out = ingest_epoch(&s, &mut scratch, &mut reads, &mut writes);
            match &first {
                None => first = Some((scratch.queues.clone(), out)),
                Some((q, o)) => {
                    assert_eq!(&scratch.queues, q);
                    assert_eq!(&out, o);
                }
            }
        }
    }

    #[test]
    fn unlimited_admission_sheds_nothing_and_counts_everything() {
        let p = problem(6, 4, 9);
        let s = spec(&p, 2, 0);
        let mut scratch = IngestScratch::new();
        let mut reads = DenseMatrix::zeros(6, 4);
        let mut writes = DenseMatrix::zeros(6, 4);
        let out = ingest_epoch(&s, &mut scratch, &mut reads, &mut writes);
        let total: u64 = p
            .objects()
            .map(|k| p.total_reads(k) + p.total_writes(k))
            .sum();
        assert_eq!(out.report.offered(), total);
        assert_eq!(out.report.shed(), 0);
        assert_eq!(out.admitted_reads + out.admitted_writes, total);
        let window: u64 = reads.iter().chain(writes.iter()).sum();
        assert_eq!(window, total);
    }
}
