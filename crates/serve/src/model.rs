//! An explicit-state model checker for the staged-migration cutover
//! protocol.
//!
//! The live migration executor in this crate stages replica additions,
//! fetches them from surviving holders with retry/re-sourcing, and only
//! applies an object's deallocations once every addition for that object
//! has installed (the *cutover*). This module checks that protocol — as a
//! small abstract model, not the simulator code — by exhaustive
//! breadth-first enumeration of every interleaving of:
//!
//! * write issue/commit at the primary and asynchronous update delivery,
//! * fetch start/complete/re-source for each planned addition,
//! * site crash/recovery (storage survives a crash; only liveness is
//!   affected),
//! * per-object cutover.
//!
//! Three invariants are checked in every reachable state:
//!
//! 1. **No lost acknowledged write** — an acked version exists on some
//!    site's storage.
//! 2. **Never serve from a pre-cutover replica** — the serving directory
//!    only points at sites that actually hold data.
//! 3. **Capacity respected mid-migration** — staged copies never push a
//!    site past its capacity.
//!
//! [`Bug`] seeds deliberate protocol mutations (cutover before fetch-ack,
//! ack before commit, unguarded fetch) so tests can confirm the checker
//! actually *catches* what it claims to check: each bug must produce a
//! counterexample trace, and [`Bug::None`] must explore clean.
//!
//! The checker is hand-rolled (no external model-checking dependency):
//! a BFS over canonically hashed states with parent pointers for
//! counterexample reconstruction, in the style of stateright's
//! `Model::check`.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// A deliberately seeded protocol mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Bug {
    /// The correct protocol.
    #[default]
    None,
    /// Cutover fires as soon as every addition has *started* fetching,
    /// instead of waiting for the fetch acknowledgements.
    CutoverBeforeAck,
    /// A write is acknowledged at issue time, before the primary commits.
    AckBeforeCommit,
    /// Fetch completion skips the capacity guard.
    SkipCapacityGuard,
}

/// The migration scenario to check.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of sites.
    pub sites: usize,
    /// Number of objects.
    pub objects: usize,
    /// Per-site storage capacity.
    pub capacity: Vec<u32>,
    /// Per-object size.
    pub size: Vec<u32>,
    /// Per-object primary site (its copy is never removed).
    pub primary: Vec<usize>,
    /// Initial holder matrix, row-major `sites x objects`. Must include
    /// the primaries.
    pub initial: Vec<bool>,
    /// Planned additions `(site, object, source)`.
    pub additions: Vec<(usize, usize, usize)>,
    /// Planned removals `(site, object)`, applied at the object's cutover.
    pub removals: Vec<(usize, usize)>,
    /// Total writes the clients may issue across the exploration.
    pub max_writes: u8,
    /// Total crash transitions to explore.
    pub max_crashes: u8,
    /// Seeded protocol mutation.
    pub bug: Bug,
}

impl ModelConfig {
    /// The canonical checking scenario: 2 objects on 3 sites, one staged
    /// addition whose cutover removes the old replica, one migration that
    /// must reclaim capacity, a write racing the migration and one crash.
    ///
    /// Site capacities are tight: site 2 can hold object 1 only after its
    /// copy of object 0 is deallocated at cutover, so the capacity guard
    /// is actually load-bearing.
    pub fn canonical() -> Self {
        Self {
            sites: 3,
            objects: 2,
            capacity: vec![4, 2, 3],
            size: vec![2, 2],
            primary: vec![0, 1],
            initial: vec![
                true, true, // site 0: primary of 0, replica of 1
                false, true, // site 1: primary of 1
                true, false, // site 2: replica of 0
            ],
            // Move object 1's replica from site 0 to site 2; site 2 only
            // fits it once its object-0 replica is removed at cutover of
            // the *other* migration — so also move object 0 off site 2.
            additions: vec![(2, 1, 1)],
            removals: vec![(0, 1), (2, 0)],
            max_writes: 2,
            max_crashes: 1,
            bug: Bug::None,
        }
    }

    fn validate(&self) -> Result<(), String> {
        let (m, n) = (self.sites, self.objects);
        if self.capacity.len() != m
            || self.size.len() != n
            || self.primary.len() != n
            || self.initial.len() != m * n
        {
            return Err("config vectors do not match sites x objects".into());
        }
        for (k, &p) in self.primary.iter().enumerate() {
            if p >= m {
                return Err(format!("primary of object {k} out of range"));
            }
            if !self.initial[p * n + k] {
                return Err(format!("object {k}'s primary does not hold it"));
            }
            if self.removals.contains(&(p, k)) {
                return Err(format!("object {k}'s primary copy is marked for removal"));
            }
        }
        for &(site, object, source) in &self.additions {
            if site >= m || object >= n || source >= m {
                return Err("addition out of range".into());
            }
            if self.initial[site * n + object] {
                return Err(format!("addition target {site} already holds {object}"));
            }
            if !self.initial[source * n + object] {
                return Err(format!("addition source {source} does not hold {object}"));
            }
        }
        for &(site, object) in &self.removals {
            if site >= m || object >= n {
                return Err("removal out of range".into());
            }
            if !self.initial[site * n + object] {
                return Err(format!("removal site {site} does not hold {object}"));
            }
        }
        Ok(())
    }
}

/// Phase of one planned addition's fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Fetch {
    Idle,
    /// Requested from the current source.
    Requested,
    Done,
}

/// One canonical protocol state. Everything is small fixed-width data so
/// the derived `Hash`/`Eq` give exact state identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Row-major `sites x objects`: stored version, or `None` (no data).
    stored: Vec<Option<u64>>,
    /// Row-major `sites x objects`: the serving directory.
    serving: Vec<bool>,
    /// Per-object committed version at the primary.
    committed: Vec<u64>,
    /// Per-object highest acknowledged write version.
    acked: Vec<u64>,
    /// Per-object write in flight (issued, not committed).
    write_inflight: Vec<bool>,
    /// Per-addition fetch phase.
    fetch: Vec<Fetch>,
    /// Per-addition current source (re-pointed by re-sourcing).
    source: Vec<usize>,
    /// Per-object cutover applied.
    cutover: Vec<bool>,
    /// Update messages in flight: `(site, object, version)`, sorted.
    updates: Vec<(usize, usize, u64)>,
    /// Per-site liveness.
    up: Vec<bool>,
    writes_used: u8,
    crashes_used: u8,
}

/// Which invariant a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// An acknowledged write version exists on no site's storage.
    NoLostAckedWrite,
    /// The serving directory points at a site without data.
    NoServeWithoutData,
    /// A site's stored bytes exceed its capacity.
    CapacityRespected,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Invariant::NoLostAckedWrite => write!(f, "no lost acknowledged write"),
            Invariant::NoServeWithoutData => write!(f, "never serve without data"),
            Invariant::CapacityRespected => write!(f, "capacity respected"),
        }
    }
}

/// A minimal counterexample: the action trace from the initial state to
/// the violating state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Human-readable detail of the violation in the final state.
    pub detail: String,
    /// Action names from the initial state to the violation, in order.
    pub trace: Vec<String>,
}

/// What an exhaustive check found.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Distinct states explored.
    pub states: usize,
    /// Transitions taken (including ones leading to known states).
    pub transitions: usize,
    /// The first (shallowest) violation, if any.
    pub violation: Option<Violation>,
}

struct Checker<'a> {
    config: &'a ModelConfig,
}

impl Checker<'_> {
    fn initial(&self) -> State {
        let c = self.config;
        let (m, n) = (c.sites, c.objects);
        State {
            stored: (0..m * n)
                .map(|i| if c.initial[i] { Some(0) } else { None })
                .collect(),
            serving: c.initial.clone(),
            committed: vec![0; n],
            acked: vec![0; n],
            write_inflight: vec![false; n],
            fetch: vec![Fetch::Idle; c.additions.len()],
            source: c.additions.iter().map(|&(_, _, s)| s).collect(),
            cutover: vec![false; n],
            updates: Vec::new(),
            up: vec![true; m],
            writes_used: 0,
            crashes_used: 0,
        }
    }

    fn stored_bytes(&self, s: &State, site: usize) -> u32 {
        let n = self.config.objects;
        (0..n)
            .filter(|&k| s.stored[site * n + k].is_some())
            .map(|k| self.config.size[k])
            .sum()
    }

    fn check_invariants(&self, s: &State) -> Option<(Invariant, String)> {
        let c = self.config;
        let n = c.objects;
        for k in 0..n {
            if s.acked[k] > 0 {
                let exists = (0..c.sites).any(|i| s.stored[i * n + k] >= Some(s.acked[k]));
                if !exists {
                    return Some((
                        Invariant::NoLostAckedWrite,
                        format!("acked version {} of object {k} is on no site", s.acked[k]),
                    ));
                }
            }
        }
        for i in 0..c.sites {
            for k in 0..n {
                if s.serving[i * n + k] && s.stored[i * n + k].is_none() {
                    return Some((
                        Invariant::NoServeWithoutData,
                        format!("directory serves object {k} from site {i}, which has no data"),
                    ));
                }
            }
            let used = self.stored_bytes(s, i);
            if used > c.capacity[i] {
                return Some((
                    Invariant::CapacityRespected,
                    format!("site {i} stores {used} bytes, capacity {}", c.capacity[i]),
                ));
            }
        }
        None
    }

    /// All enabled actions from `s`, as `(name, successor)` in a fixed
    /// deterministic order.
    fn successors(&self, s: &State) -> Vec<(String, State)> {
        let c = self.config;
        let n = c.objects;
        let mut out = Vec::new();

        // WriteIssue(k): one write in flight per object, global budget.
        for k in 0..n {
            if s.writes_used < c.max_writes && !s.write_inflight[k] {
                let mut t = s.clone();
                t.write_inflight[k] = true;
                t.writes_used += 1;
                if c.bug == Bug::AckBeforeCommit {
                    t.acked[k] = t.committed[k] + 1;
                }
                out.push((format!("WriteIssue(obj={k})"), t));
            }
        }
        // WriteCommit(k): primary commits, acks, broadcasts updates.
        for k in 0..n {
            let p = c.primary[k];
            if s.write_inflight[k] && s.up[p] {
                let mut t = s.clone();
                t.write_inflight[k] = false;
                t.committed[k] += 1;
                let version = t.committed[k];
                t.stored[p * n + k] = Some(version);
                t.acked[k] = t.acked[k].max(version);
                for i in 0..c.sites {
                    if i != p && t.stored[i * n + k].is_some() {
                        t.updates.push((i, k, version));
                    }
                }
                t.updates.sort_unstable();
                out.push((format!("WriteCommit(obj={k})"), t));
            }
        }
        // DeliverUpdate: any in-flight update to an up site.
        for (index, &(site, object, version)) in s.updates.iter().enumerate() {
            if s.up[site] {
                let mut t = s.clone();
                t.updates.remove(index);
                if let Some(v) = t.stored[site * n + object] {
                    t.stored[site * n + object] = Some(v.max(version));
                }
                out.push((
                    format!("DeliverUpdate(site={site}, obj={object}, v={version})"),
                    t,
                ));
            }
        }
        // Fetch actions per addition.
        for (a, &(site, object, _)) in c.additions.iter().enumerate() {
            match s.fetch[a] {
                Fetch::Idle => {
                    let src = s.source[a];
                    if s.up[site] && s.up[src] && s.stored[src * n + object].is_some() {
                        let mut t = s.clone();
                        t.fetch[a] = Fetch::Requested;
                        out.push((
                            format!("FetchStart(site={site}, obj={object}, src={src})"),
                            t,
                        ));
                    }
                }
                Fetch::Requested => {
                    let src = s.source[a];
                    // FetchComplete: the data lands, capacity-guarded.
                    if s.up[site] && s.up[src] {
                        if let Some(version) = s.stored[src * n + object] {
                            let fits =
                                self.stored_bytes(s, site) + c.size[object] <= c.capacity[site];
                            if fits || c.bug == Bug::SkipCapacityGuard {
                                let mut t = s.clone();
                                t.stored[site * n + object] = Some(version);
                                t.fetch[a] = Fetch::Done;
                                out.push((
                                    format!(
                                        "FetchComplete(site={site}, obj={object}, v={version})"
                                    ),
                                    t,
                                ));
                            }
                        }
                    }
                    // FetchResource: the source crashed; re-point to any
                    // other up holder (the executor's failover, abstracted
                    // from its cost-ordered retry).
                    if !s.up[src] {
                        for alt in 0..c.sites {
                            if alt != src
                                && alt != site
                                && s.up[alt]
                                && s.stored[alt * n + object].is_some()
                            {
                                let mut t = s.clone();
                                t.source[a] = alt;
                                out.push((
                                    format!("FetchResource(site={site}, obj={object}, src={alt})"),
                                    t,
                                ));
                            }
                        }
                    }
                }
                Fetch::Done => {}
            }
        }
        // Cutover(k): all of k's additions done (or merely started, under
        // the seeded bug) — flip the directory, apply removals.
        for k in 0..n {
            if s.cutover[k] {
                continue;
            }
            let ready = c
                .additions
                .iter()
                .enumerate()
                .filter(|&(_, &(_, object, _))| object == k)
                .all(|(a, _)| match c.bug {
                    Bug::CutoverBeforeAck => s.fetch[a] != Fetch::Idle,
                    _ => s.fetch[a] == Fetch::Done,
                });
            if !ready {
                continue;
            }
            let mut t = s.clone();
            t.cutover[k] = true;
            for &(site, object, _) in &c.additions {
                if object == k {
                    t.serving[site * n + k] = true;
                }
            }
            for &(site, object) in &c.removals {
                if object == k {
                    t.serving[site * n + k] = false;
                    t.stored[site * n + k] = None;
                }
            }
            out.push((format!("Cutover(obj={k})"), t));
        }
        // Crash / Recover.
        for i in 0..c.sites {
            if s.up[i] && s.crashes_used < c.max_crashes {
                let mut t = s.clone();
                t.up[i] = false;
                t.crashes_used += 1;
                out.push((format!("Crash(site={i})"), t));
            }
            if !s.up[i] {
                let mut t = s.clone();
                t.up[i] = true;
                out.push((format!("Recover(site={i})"), t));
            }
        }
        out
    }
}

/// Exhaustively explores `config`'s state space and checks every reachable
/// state against the three invariants. Returns the first (shallowest)
/// violation with its counterexample trace, or a clean report.
///
/// # Errors
///
/// Returns a description of the malformed scenario (shape mismatches,
/// out-of-range plan entries, a primary marked for removal).
pub fn check(config: &ModelConfig) -> Result<CheckReport, String> {
    config.validate()?;
    let checker = Checker { config };

    // BFS arena: states by discovery index, parent pointers for traces.
    let initial = checker.initial();
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut arena: Vec<State> = Vec::new();
    let mut parent: Vec<Option<(usize, String)>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut transitions = 0usize;

    index.insert(initial.clone(), 0);
    arena.push(initial);
    parent.push(None);
    queue.push_back(0);

    let trace_of = |parent: &[Option<(usize, String)>], mut at: usize| {
        let mut actions = Vec::new();
        while let Some((from, action)) = &parent[at] {
            actions.push(action.clone());
            at = *from;
        }
        actions.reverse();
        actions
    };

    if let Some((invariant, detail)) = checker.check_invariants(&arena[0]) {
        return Ok(CheckReport {
            states: 1,
            transitions: 0,
            violation: Some(Violation {
                invariant,
                detail,
                trace: Vec::new(),
            }),
        });
    }

    while let Some(at) = queue.pop_front() {
        let successors = checker.successors(&arena[at]);
        for (action, next) in successors {
            transitions += 1;
            let entry = match index.entry(next) {
                Entry::Occupied(_) => continue,
                Entry::Vacant(v) => v,
            };
            let id = arena.len();
            arena.push(entry.key().clone());
            entry.insert(id);
            parent.push(Some((at, action)));
            if let Some((invariant, detail)) = checker.check_invariants(&arena[id]) {
                let trace = trace_of(&parent, id);
                return Ok(CheckReport {
                    states: arena.len(),
                    transitions,
                    violation: Some(Violation {
                        invariant,
                        detail,
                        trace,
                    }),
                });
            }
            queue.push_back(id);
        }
    }

    Ok(CheckReport {
        states: arena.len(),
        transitions,
        violation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenario_is_clean_and_nontrivial() {
        let report = check(&ModelConfig::canonical()).unwrap();
        assert!(
            report.violation.is_none(),
            "correct protocol must verify: {:?}",
            report.violation
        );
        // ≥ 2 sites x 2 objects x 1 crash, exhaustively: the space must be
        // big enough to mean something.
        assert!(
            report.states > 1000,
            "only {} states — scenario too trivial",
            report.states
        );
    }

    #[test]
    fn cutover_before_ack_is_caught() {
        let config = ModelConfig {
            bug: Bug::CutoverBeforeAck,
            ..ModelConfig::canonical()
        };
        let report = check(&config).unwrap();
        let violation = report.violation.expect("seeded bug must be caught");
        assert_eq!(violation.invariant, Invariant::NoServeWithoutData);
        // The counterexample must actually exhibit the bug: a cutover with
        // no completed fetch anywhere before it.
        assert!(
            violation.trace.iter().any(|a| a.starts_with("Cutover")),
            "trace: {:?}",
            violation.trace
        );
        assert!(
            !violation
                .trace
                .iter()
                .any(|a| a.starts_with("FetchComplete")),
            "shallowest trace should cut over before any fetch completes: {:?}",
            violation.trace
        );
    }

    #[test]
    fn ack_before_commit_is_caught() {
        let config = ModelConfig {
            bug: Bug::AckBeforeCommit,
            ..ModelConfig::canonical()
        };
        let violation = check(&config).unwrap().violation.expect("must be caught");
        assert_eq!(violation.invariant, Invariant::NoLostAckedWrite);
    }

    #[test]
    fn skipping_the_capacity_guard_is_caught() {
        let config = ModelConfig {
            bug: Bug::SkipCapacityGuard,
            ..ModelConfig::canonical()
        };
        let violation = check(&config).unwrap().violation.expect("must be caught");
        assert_eq!(violation.invariant, Invariant::CapacityRespected);
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        let mut bad = ModelConfig::canonical();
        bad.removals.push((0, 0)); // object 0's primary
        assert!(check(&bad).is_err());

        let mut bad = ModelConfig::canonical();
        bad.capacity.pop();
        assert!(check(&bad).is_err());

        let mut bad = ModelConfig::canonical();
        bad.additions.push((9, 0, 0));
        assert!(check(&bad).is_err());
    }
}
