//! Crash recovery: rebuilding the serving loop from its write-ahead log.
//!
//! Recovery is *commit-point truncation plus deterministic re-run*:
//!
//! 1. [`crate::wal::decode_stream`] reads the log up to the first torn or
//!    corrupt frame (the damage is reported, never panicked on);
//! 2. the valid records are scanned for the last **commit point** — the
//!    `RunStart` header, the latest `Checkpoint`, or the `Retune` record
//!    completing an epoch's `EpochEnd`/`Retune` pair. Everything after it
//!    (a partially journaled epoch) is dropped;
//! 3. the loop state at that commit point is reconstructed: committed
//!    epoch reports verbatim from the log, the realized/target schemes
//!    from their `drp-scheme v1` payloads, the monitor from its latest
//!    snapshot (or a deterministic bootstrap re-run when it never
//!    changed), and the drifting truth by replaying the seeded drift
//!    stream — no epoch is ever re-served from ambiguous state;
//! 4. the runtime re-runs the dropped partial epoch from scratch. Epochs
//!    are deterministic functions of the committed state, so the re-run
//!    is bitwise-identical to what the crashed run would have produced —
//!    the property the crash-simulation suite certifies.

use drp_algo::monitor::ReplicationMonitor;
use drp_core::format::{read_instance, read_scheme};
use drp_core::{CoreError, Problem, ReplicationScheme, ServeError};
use drp_ga::BitString;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hotkey::HotSnapshot;
use crate::predict::PredictSnapshot;
use crate::report::EpochReport;
use crate::runtime::{config_hash, mix, ServeConfig, ShiftPlan, TAG_BOOT};
use crate::wal::{MonitorSnapshot, RetuneKind, WalOp, WalRecord, WAL_VERSION};

/// What recovery found in the log, reported alongside the resumed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The epoch the run resumed at (== committed epochs in the log).
    pub resumed_epoch: usize,
    /// Records past the last commit point that were dropped (the partial
    /// epoch re-run deterministically).
    pub dropped_records: usize,
    /// Damage found at the log's tail, if any.
    pub damage: Option<ServeError>,
}

/// The reconstructed loop state at the last commit point.
pub(crate) struct Resume {
    pub start_epoch: usize,
    pub truth: Problem,
    pub monitor: ReplicationMonitor,
    pub realized: ReplicationScheme,
    pub target: ReplicationScheme,
    pub epochs: Vec<EpochReport>,
    pub adaptations: u64,
    pub rebuilds: u64,
    /// Hot-object detector state at the commit point (present iff the run
    /// journaled the hot path).
    pub hot: Option<HotSnapshot>,
    /// Demand forecaster state at the commit point (present iff the policy
    /// is predictive).
    pub predictor: Option<PredictSnapshot>,
}

/// [`Resume`] plus the log bookkeeping the durable runtime needs.
pub(crate) struct Recovered {
    pub resume: Resume,
    /// Records kept (`records[..kept]` ends at the commit point); the
    /// runtime truncates the store to exactly these before resuming.
    pub kept: usize,
    /// Epochs committed since the latest checkpoint, so the resumed run
    /// checkpoints on the original cadence.
    pub since_checkpoint: usize,
    pub info: RecoveryInfo,
}

fn mismatch(reason: String) -> CoreError {
    ServeError::WalMismatch { reason }.into()
}

fn bits_from_words(len: u32, words: &[u64]) -> BitString {
    let len = len as usize;
    BitString::from_fn(len, |i| {
        words.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1)
    })
}

fn parse_scheme(text: &[u8], problem: &Problem, what: &str) -> drp_core::Result<ReplicationScheme> {
    let text = std::str::from_utf8(text)
        .map_err(|e| mismatch(format!("{what} scheme is not utf-8: {e}")))?;
    read_scheme(text, problem).map_err(|e| mismatch(format!("{what} scheme: {e}")))
}

fn rebuild_monitor(
    snapshot: &MonitorSnapshot,
    config: &ServeConfig,
    target: &ReplicationScheme,
) -> drp_core::Result<ReplicationMonitor> {
    let text = std::str::from_utf8(&snapshot.problem)
        .map_err(|e| mismatch(format!("monitor snapshot is not utf-8: {e}")))?;
    let reference = read_instance(text).map_err(|e| mismatch(format!("monitor snapshot: {e}")))?;
    let population = snapshot
        .population
        .iter()
        .map(|(len, words)| bits_from_words(*len, words))
        .collect();
    // The monitor's scheme always equals the journaled target under the
    // only policy that consults it after bootstrap (`Policy::Monitor`).
    ReplicationMonitor::from_parts(
        reference,
        config.monitor.clone(),
        target.clone(),
        population,
    )
}

/// Reconstructs the loop state from decoded WAL records.
///
/// # Errors
///
/// Returns [`ServeError::WalMismatch`] (wrapped in [`CoreError::Serve`])
/// when the log does not belong to `(problem, config)` or its record
/// sequence is inconsistent; propagates payload-parse failures the same
/// way. Tail damage is NOT an error — it arrives pre-classified in
/// `damage` and is passed through in the result's [`RecoveryInfo`].
pub(crate) fn recover(
    problem: &Problem,
    config: &ServeConfig,
    records: &[WalRecord],
    damage: Option<ServeError>,
) -> drp_core::Result<Recovered> {
    let Some(WalRecord::RunStart {
        version,
        seed,
        config_hash: hash,
    }) = records.first()
    else {
        return Err(mismatch("log does not begin with a RunStart header".into()));
    };
    if *version != WAL_VERSION {
        return Err(mismatch(format!(
            "log format v{version}, this runtime reads v{WAL_VERSION}"
        )));
    }
    if *seed != config.seed {
        return Err(mismatch(format!(
            "log was written by seed {seed}, resuming with seed {}",
            config.seed
        )));
    }
    let expected = config_hash(problem, config);
    if *hash != expected {
        return Err(mismatch(format!(
            "log config hash {hash:016x} != this run's {expected:016x}"
        )));
    }

    // Scan for the last commit point, collecting the committed epochs
    // after the latest checkpoint.
    let mut checkpoint: Option<&crate::wal::Checkpoint> = None;
    let mut committed: Vec<(&EpochReport, &[u8], &WalRecord)> = Vec::new();
    let mut pending_end: Option<(u64, &EpochReport, &[u8])> = None;
    let mut kept = 1usize;
    for (index, record) in records.iter().enumerate().skip(1) {
        match record {
            WalRecord::Checkpoint(cp) => {
                checkpoint = Some(cp);
                committed.clear();
                pending_end = None;
                kept = index + 1;
            }
            WalRecord::EpochEnd {
                epoch,
                report,
                realized,
            } => pending_end = Some((*epoch, report, realized)),
            WalRecord::Retune { epoch, .. } => {
                let Some((end_epoch, report, realized)) = pending_end.take() else {
                    return Err(mismatch(format!(
                        "Retune for epoch {epoch} without a matching EpochEnd"
                    )));
                };
                if end_epoch != *epoch {
                    return Err(mismatch(format!(
                        "Retune for epoch {epoch} follows EpochEnd for epoch {end_epoch}"
                    )));
                }
                committed.push((report, realized, record));
                kept = index + 1;
            }
            WalRecord::RunStart { .. } => {
                return Err(mismatch(format!("duplicate RunStart at record {index}")));
            }
            // Admission/migration journal entries: observability only.
            _ => {}
        }
    }

    // Fold checkpoint + committed epochs into the resume state.
    let mut epochs: Vec<EpochReport> = Vec::new();
    let mut adaptations = 0u64;
    let mut rebuilds = 0u64;
    let mut realized_text: Option<&[u8]> = None;
    let mut target_text: Option<&[u8]> = None;
    let mut snapshot: Option<&MonitorSnapshot> = None;
    let mut hot_snap: Option<&HotSnapshot> = None;
    let mut pred_snap: Option<&PredictSnapshot> = None;
    let mut next_epoch = 0usize;
    if let Some(cp) = checkpoint {
        epochs = cp.reports.clone();
        adaptations = cp.adaptations;
        rebuilds = cp.rebuilds;
        realized_text = Some(&cp.realized);
        target_text = Some(&cp.target);
        snapshot = cp.monitor.as_ref();
        hot_snap = cp.hot.as_ref();
        pred_snap = cp.predictor.as_ref();
        next_epoch = usize::try_from(cp.next_epoch)
            .map_err(|_| mismatch("checkpoint next_epoch overflows usize".into()))?;
    }
    let since_checkpoint = committed.len();
    for (report, realized, retune) in committed {
        let WalRecord::Retune {
            epoch,
            kind,
            target,
            monitor,
            hot,
            predictor,
            ..
        } = retune
        else {
            unreachable!("committed list only holds Retune records");
        };
        if *epoch as usize != next_epoch || report.epoch != next_epoch {
            return Err(mismatch(format!(
                "epoch {epoch} committed out of order, expected {next_epoch}"
            )));
        }
        epochs.push(report.clone());
        realized_text = Some(realized);
        target_text = Some(target);
        match kind {
            RetuneKind::Keep => {}
            RetuneKind::Adapt => adaptations += 1,
            RetuneKind::Rebuild => rebuilds += 1,
        }
        if let Some(snap) = monitor {
            snapshot = Some(snap);
        }
        if let Some(h) = hot {
            hot_snap = Some(h);
        }
        if let Some(p) = predictor {
            pred_snap = Some(p);
        }
        next_epoch += 1;
    }
    if epochs.len() != next_epoch {
        return Err(mismatch(format!(
            "log holds {} epoch reports but commits {next_epoch} epochs",
            epochs.len()
        )));
    }

    // Re-derive the drifting truth: drift (plain or scenario-compiled) is
    // a seeded per-epoch stream, so replaying it is exact. Epoch
    // `next_epoch`'s own drift is applied by the loop itself.
    let shift_plan = ShiftPlan::new(problem, config)?;
    let mut truth = problem.clone();
    for e in 1..next_epoch {
        shift_plan.advance(&mut truth, config, e)?;
    }

    // Monitor: from its latest snapshot if the run ever changed it, else a
    // bootstrap re-run (same seed stream ⇒ bitwise-identical result).
    let (monitor, realized, target) = match (snapshot, realized_text, target_text) {
        (Some(snap), Some(realized), Some(target)) => {
            let target = parse_scheme(target, &truth, "target")?;
            let monitor = rebuild_monitor(snap, config, &target)?;
            (monitor, parse_scheme(realized, &truth, "realized")?, target)
        }
        (None, realized, target) => {
            let mut boot = StdRng::seed_from_u64(mix(&[config.seed, TAG_BOOT]));
            let monitor =
                ReplicationMonitor::bootstrap(problem.clone(), config.monitor.clone(), &mut boot)?;
            let bootstrap = monitor.scheme().clone();
            let realized = match realized {
                Some(text) => parse_scheme(text, &truth, "realized")?,
                None => bootstrap.clone(),
            };
            let target = match target {
                Some(text) => parse_scheme(text, &truth, "target")?,
                None => bootstrap,
            };
            (monitor, realized, target)
        }
        (Some(_), _, _) => {
            return Err(mismatch(
                "monitor snapshot present without realized/target schemes".into(),
            ));
        }
    };

    Ok(Recovered {
        resume: Resume {
            start_epoch: next_epoch,
            truth,
            monitor,
            realized,
            target,
            epochs,
            adaptations,
            rebuilds,
            hot: hot_snap.cloned(),
            predictor: pred_snap.cloned(),
        },
        kept,
        since_checkpoint,
        info: RecoveryInfo {
            resumed_epoch: next_epoch,
            dropped_records: records.len() - kept,
            damage,
        },
    })
}

/// Enumerates the deterministic crash points of a journaled run: for every
/// durable operation in `ops`, each WAL-record boundary within the op
/// (including "nothing written" and "all written"). Torn *mid-record*
/// prefixes are the other axis — any `(op, cut)` with `cut` off a
/// boundary — which the property tests sample.
///
/// Each point is `(op, cut)` as consumed by
/// [`TracingStore::contents_at`](crate::wal::TracingStore::contents_at).
pub fn crash_points(ops: &[WalOp]) -> Vec<(usize, usize)> {
    let mut points = Vec::new();
    for (index, op) in ops.iter().enumerate() {
        points.push((index, 0));
        if op.reset {
            // Atomic replace: the only other observable state is "all".
            points.push((index, op.bytes.len()));
            continue;
        }
        // Record boundaries inside the appended blob.
        let mut pos = 0usize;
        while pos + 8 <= op.bytes.len() {
            let len =
                u32::from_le_bytes(op.bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let end = pos + 8 + len;
            if end > op.bytes.len() {
                break;
            }
            points.push((index, end));
            pos = end;
        }
    }
    points.sort_unstable();
    points.dedup();
    points
}
