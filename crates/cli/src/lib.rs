//! Command-line front end for the DRP reproduction.
//!
//! All logic lives here (the `drp` binary is a thin shell) so the test
//! suite can drive commands in-process. Instances and schemes travel in the
//! plain-text formats of [`drp_core::format`].
//!
//! ```text
//! drp generate --sites 20 --objects 50 --update 5 --capacity 15 -o net.drp
//! drp solve    --instance net.drp --algorithm gra -o scheme.drp
//! drp evaluate --instance net.drp --scheme scheme.drp
//! drp adapt    --instance net.drp --new-instance shifted.drp --scheme scheme.drp
//! drp faults   --instance net.drp --crash 2@80..380 --seed 17
//! drp serve    --instance net.drp --policy monitor --epochs 4 --drift 600:30:0.8
//! drp inspect  --instance net.drp
//! ```

mod args;
mod commands;

pub use args::{parse, CliError, Command, ServePolicy};
pub use commands::run_command;

/// Usage banner printed on argument errors.
pub const USAGE: &str = "\
usage:
  drp generate --sites M --objects N [--update U%] [--capacity C%]
               [--topology complete|ring|tree|grid|er|waxman|hier] [--zipf S]
               [--seed N] [-o FILE]
  drp solve    --instance FILE --algorithm sra|gra|hill|random|optimal|primary
               [--seed N] [--pop N] [--gens N] [--shards K] [-o FILE]
               [--trace-out FILE]
  drp evaluate --instance FILE --scheme FILE
  drp inspect  --instance FILE
  drp distributed --instance FILE [-o FILE]
  drp faults   --instance FILE [--scheme FILE] [--crash SITE@FROM..UNTIL]...
               [--drop P] [--jitter J] [--seed N] [--min-degree D]
               [--horizon T] [--trace-out FILE]
  drp adapt    --instance FILE --new-instance FILE --scheme FILE
               [--mini N] [--threshold PCT] [--seed N] [-o FILE]
  drp serve    --instance FILE [--policy static|monitor|adr] [--epochs N]
               [--period T] [--seed N] [--night-every K] [--admission-limit N]
               [--threads N]
               [--drift CHANGE%:OBJECTS%:READSHARE] [--crash SITE@FROM..UNTIL]...
               [--drop P] [--jitter J] [--report-out FILE] [--trace-out FILE]
               [--wal-dir DIR [--recover] [--checkpoint-every K]]";

/// Parses and executes one command line, returning its stdout text.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, unreadable files or solver
/// failures, with a message suitable for the terminal.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let command = parse(args)?;
    run_command(command)
}
