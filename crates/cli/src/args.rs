use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use drp_workload::{Scenario, TopologyKind};

/// CLI-level errors with human-readable messages.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file failed to parse.
    Format(drp_core::format::FormatError),
    /// A solver or generator failed.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CliError::Format(e) => write!(f, "parse error: {e}"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drp_core::format::FormatError> for CliError {
    fn from(e: drp_core::format::FormatError) -> Self {
        CliError::Format(e)
    }
}

/// Which adaptation policy `drp serve` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// Freeze the bootstrap scheme.
    Static,
    /// Monitor + AGRA by day, GRA by night.
    Monitor,
    /// Re-run ADR every boundary (tree metrics only).
    Adr,
    /// Monitor loop driven by EWMA demand forecasts.
    PredictiveEwma,
    /// Monitor loop driven by windowed linear-regression forecasts.
    PredictiveRegression,
}

/// Which solver `drp solve` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Greedy SRA.
    Sra,
    /// Genetic GRA.
    Gra,
    /// Steepest-ascent hill climbing.
    Hill,
    /// Random valid placement.
    Random,
    /// Exact branch and bound (small instances only).
    Optimal,
    /// Primary-only baseline.
    Primary,
}

/// A parsed command.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Generate a synthetic instance.
    Generate {
        /// Number of sites.
        sites: usize,
        /// Number of objects.
        objects: usize,
        /// Update ratio, percent.
        update: f64,
        /// Capacity percentage.
        capacity: f64,
        /// Topology.
        topology: TopologyKind,
        /// Optional Zipf read skew.
        zipf: Option<f64>,
        /// Seed.
        seed: u64,
        /// Output file (stdout when absent).
        output: Option<PathBuf>,
    },
    /// Solve an instance.
    Solve {
        /// Instance file.
        instance: PathBuf,
        /// Which solver.
        solver: SolverKind,
        /// Seed.
        seed: u64,
        /// GRA population size.
        population: usize,
        /// GRA generations.
        generations: usize,
        /// Scheme output file (omitted = report only).
        output: Option<PathBuf>,
        /// Telemetry JSONL output file.
        trace_out: Option<PathBuf>,
        /// Number of shards for the hierarchical driver (0 = flat solve).
        shards: usize,
    },
    /// Evaluate a scheme against an instance.
    Evaluate {
        /// Instance file.
        instance: PathBuf,
        /// Scheme file.
        scheme: PathBuf,
    },
    /// Summarize an instance.
    Inspect {
        /// Instance file.
        instance: PathBuf,
    },
    /// Run the distributed token-passing SRA and report protocol costs.
    Distributed {
        /// Instance file.
        instance: PathBuf,
        /// Scheme output file.
        output: Option<PathBuf>,
    },
    /// Replay an instance under injected faults with self-healing repair.
    Faults {
        /// Instance file.
        instance: PathBuf,
        /// Optional scheme file (defaults to primary-only topped up to the
        /// degree floor).
        scheme: Option<PathBuf>,
        /// Crash windows as `(site, from, until)`.
        crashes: Vec<(usize, u64, u64)>,
        /// Per-message drop probability.
        drop: f64,
        /// Maximum extra delivery delay.
        jitter: u64,
        /// Fault-plan seed.
        seed: u64,
        /// Min-degree floor for the repair loop.
        min_degree: usize,
        /// Client workload horizon.
        horizon: u64,
        /// Telemetry JSONL output file.
        trace_out: Option<PathBuf>,
    },
    /// Run the closed-loop online adaptation service.
    Serve {
        /// Instance file.
        instance: PathBuf,
        /// Adaptation policy.
        policy: ServePolicy,
        /// Serving epochs.
        epochs: usize,
        /// Simulated time units per epoch.
        period: u64,
        /// Master seed.
        seed: u64,
        /// Every k-th boundary rebuilds with GRA (0 = never).
        night_every: usize,
        /// Per-site admitted-request cap per epoch (0 = unlimited).
        admission_limit: u64,
        /// Ingestion worker threads (0 = auto from `DRP_THREADS`/cores).
        threads: usize,
        /// Pattern drift as `(change%, objects%, read share)`.
        drift: Option<(f64, f64, f64)>,
        /// Named workload scenario (mutually exclusive with drift/faults).
        scenario: Option<Scenario>,
        /// Score the run against the offline-optimal replay oracle.
        oracle: bool,
        /// Crash windows as `(site, from, until)`.
        crashes: Vec<(usize, u64, u64)>,
        /// Per-message drop probability.
        drop: f64,
        /// Maximum extra delivery delay.
        jitter: u64,
        /// Service report JSON output file.
        report_out: Option<PathBuf>,
        /// Telemetry JSONL output file.
        trace_out: Option<PathBuf>,
        /// Directory for the write-ahead log (None = in-memory run).
        wal_dir: Option<PathBuf>,
        /// Resume from an existing WAL instead of refusing it.
        recover: bool,
        /// Compact the WAL into a checkpoint every `n` epochs.
        checkpoint_every: usize,
    },
    /// Adapt a scheme to a shifted instance with AGRA.
    Adapt {
        /// Old instance file.
        instance: PathBuf,
        /// New (shifted) instance file.
        new_instance: PathBuf,
        /// Current scheme file.
        scheme: PathBuf,
        /// Mini-GRA generations.
        mini: usize,
        /// Change-detection threshold, percent.
        threshold: f64,
        /// Seed.
        seed: u64,
        /// Output scheme file.
        output: Option<PathBuf>,
    },
}

struct ArgStream<'a> {
    args: &'a [String],
    index: usize,
}

impl<'a> ArgStream<'a> {
    fn next_value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.index += 1;
        self.args
            .get(self.index)
            .map(|s| {
                self.index += 1;
                s.as_str()
            })
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("bad value `{value}` for {flag}")))
}

fn parse_topology(value: &str) -> Result<TopologyKind, CliError> {
    Ok(match value {
        "complete" => TopologyKind::Complete,
        "ring" => TopologyKind::Ring,
        "tree" => TopologyKind::Tree { arity: 2 },
        "grid" => TopologyKind::Grid,
        "er" => TopologyKind::ErdosRenyi { p: 0.3 },
        "waxman" => TopologyKind::Waxman {
            alpha: 0.8,
            beta: 0.4,
        },
        "hier" => TopologyKind::Hierarchical {
            clusters: 8,
            wan_factor: 10,
        },
        other => {
            return Err(CliError::Usage(format!(
                "unknown topology `{other}` (complete|ring|tree|grid|er|waxman|hier)"
            )))
        }
    })
}

fn parse_solver(value: &str) -> Result<SolverKind, CliError> {
    Ok(match value {
        "sra" => SolverKind::Sra,
        "gra" => SolverKind::Gra,
        "hill" => SolverKind::Hill,
        "random" => SolverKind::Random,
        "optimal" => SolverKind::Optimal,
        "primary" => SolverKind::Primary,
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm `{other}` (sra|gra|hill|random|optimal|primary)"
            )))
        }
    })
}

/// Parses one `--crash SITE@FROM..UNTIL` window.
fn parse_policy(value: &str) -> Result<ServePolicy, CliError> {
    Ok(match value {
        "static" => ServePolicy::Static,
        "monitor" => ServePolicy::Monitor,
        "adr" => ServePolicy::Adr,
        "predictive-ewma" => ServePolicy::PredictiveEwma,
        "predictive-regression" => ServePolicy::PredictiveRegression,
        other => {
            return Err(CliError::Usage(format!(
                "unknown policy `{other}` (expected static, monitor, adr, \
                 predictive-ewma or predictive-regression)"
            )))
        }
    })
}

fn parse_scenario(value: &str) -> Result<Scenario, CliError> {
    Scenario::parse(value).map_err(|e| CliError::Usage(e.to_string()))
}

fn parse_drift(value: &str) -> Result<(f64, f64, f64), CliError> {
    let usage = || {
        CliError::Usage(format!(
            "bad drift `{value}` (expected CHANGE%:OBJECTS%:READSHARE, e.g. 600:30:0.8)"
        ))
    };
    let mut parts = value.split(':');
    let change = parts
        .next()
        .ok_or_else(usage)?
        .parse()
        .map_err(|_| usage())?;
    let objects = parts
        .next()
        .ok_or_else(usage)?
        .parse()
        .map_err(|_| usage())?;
    let read_share = parts
        .next()
        .ok_or_else(usage)?
        .parse()
        .map_err(|_| usage())?;
    if parts.next().is_some() {
        return Err(usage());
    }
    Ok((change, objects, read_share))
}

fn parse_crash(value: &str) -> Result<(usize, u64, u64), CliError> {
    let usage = || {
        CliError::Usage(format!(
            "bad crash window `{value}` (expected SITE@FROM..UNTIL, e.g. 3@100..400)"
        ))
    };
    let (site, window) = value.split_once('@').ok_or_else(usage)?;
    let (from, until) = window.split_once("..").ok_or_else(usage)?;
    let site = site.parse().map_err(|_| usage())?;
    let from = from.parse().map_err(|_| usage())?;
    let until = until.parse().map_err(|_| usage())?;
    if until <= from {
        return Err(CliError::Usage(format!(
            "empty crash window `{value}` (UNTIL must exceed FROM)"
        )));
    }
    Ok((site, from, until))
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the first problem.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(verb) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    let mut stream = ArgStream { args, index: 0 };
    match verb.as_str() {
        "generate" => {
            let (mut sites, mut objects) = (None, None);
            let (mut update, mut capacity) = (5.0f64, 15.0f64);
            let mut topology = TopologyKind::Complete;
            let mut zipf = None;
            let mut seed = 0u64;
            let mut output = None;
            stream.index = 1;
            while let Some(flag) = stream.args.get(stream.index).map(|s| s.as_str()) {
                match flag {
                    "--sites" => sites = Some(parse_num(stream.next_value(flag)?, flag)?),
                    "--objects" => objects = Some(parse_num(stream.next_value(flag)?, flag)?),
                    "--update" => update = parse_num(stream.next_value(flag)?, flag)?,
                    "--capacity" => capacity = parse_num(stream.next_value(flag)?, flag)?,
                    "--topology" => topology = parse_topology(stream.next_value(flag)?)?,
                    "--zipf" => zipf = Some(parse_num(stream.next_value(flag)?, flag)?),
                    "--seed" => seed = parse_num(stream.next_value(flag)?, flag)?,
                    "-o" | "--output" => {
                        output = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Generate {
                sites: sites.ok_or_else(|| CliError::Usage("--sites is required".into()))?,
                objects: objects.ok_or_else(|| CliError::Usage("--objects is required".into()))?,
                update,
                capacity,
                topology,
                zipf,
                seed,
                output,
            })
        }
        "solve" => {
            let mut instance = None;
            let mut solver = None;
            let mut seed = 0u64;
            let mut population = 50usize;
            let mut generations = 80usize;
            let mut output = None;
            let mut trace_out = None;
            let mut shards = 0usize;
            stream.index = 1;
            while let Some(flag) = stream.args.get(stream.index).map(|s| s.as_str()) {
                match flag {
                    "--instance" => instance = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--algorithm" => solver = Some(parse_solver(stream.next_value(flag)?)?),
                    "--seed" => seed = parse_num(stream.next_value(flag)?, flag)?,
                    "--pop" => population = parse_num(stream.next_value(flag)?, flag)?,
                    "--gens" => generations = parse_num(stream.next_value(flag)?, flag)?,
                    "--shards" => shards = parse_num(stream.next_value(flag)?, flag)?,
                    "-o" | "--output" => {
                        output = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Solve {
                instance: instance
                    .ok_or_else(|| CliError::Usage("--instance is required".into()))?,
                solver: solver.ok_or_else(|| CliError::Usage("--algorithm is required".into()))?,
                seed,
                population,
                generations,
                output,
                trace_out,
                shards,
            })
        }
        "faults" => {
            let mut instance = None;
            let mut scheme = None;
            let mut crashes = Vec::new();
            let mut drop = 0.0f64;
            let mut jitter = 0u64;
            let mut seed = 0u64;
            let mut min_degree = 2usize;
            let mut horizon = 1_000u64;
            let mut trace_out = None;
            stream.index = 1;
            while let Some(flag) = stream.args.get(stream.index).map(|s| s.as_str()) {
                match flag {
                    "--instance" => instance = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--scheme" => scheme = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--crash" => crashes.push(parse_crash(stream.next_value(flag)?)?),
                    "--drop" => drop = parse_num(stream.next_value(flag)?, flag)?,
                    "--jitter" => jitter = parse_num(stream.next_value(flag)?, flag)?,
                    "--seed" => seed = parse_num(stream.next_value(flag)?, flag)?,
                    "--min-degree" => min_degree = parse_num(stream.next_value(flag)?, flag)?,
                    "--horizon" => horizon = parse_num(stream.next_value(flag)?, flag)?,
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            if !(0.0..=1.0).contains(&drop) {
                return Err(CliError::Usage(format!(
                    "--drop must be a probability in [0, 1], got {drop}"
                )));
            }
            Ok(Command::Faults {
                instance: instance
                    .ok_or_else(|| CliError::Usage("--instance is required".into()))?,
                scheme,
                crashes,
                drop,
                jitter,
                seed,
                min_degree,
                horizon,
                trace_out,
            })
        }
        "serve" => {
            let mut instance = None;
            let mut policy = ServePolicy::Monitor;
            let mut epochs = 3usize;
            let mut period = 256u64;
            let mut seed = 0u64;
            let mut night_every = 0usize;
            let mut admission_limit = 0u64;
            let mut threads = 0usize;
            let mut drift = None;
            let mut scenario = None;
            let mut oracle = false;
            let mut crashes = Vec::new();
            let mut drop = 0.0f64;
            let mut jitter = 0u64;
            let mut report_out = None;
            let mut trace_out = None;
            let mut wal_dir = None;
            let mut recover = false;
            let mut checkpoint_every = drp_serve::WalTuning::default().checkpoint_every;
            stream.index = 1;
            while let Some(flag) = stream.args.get(stream.index).map(|s| s.as_str()) {
                match flag {
                    "--instance" => instance = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--policy" => policy = parse_policy(stream.next_value(flag)?)?,
                    "--epochs" => epochs = parse_num(stream.next_value(flag)?, flag)?,
                    "--period" => period = parse_num(stream.next_value(flag)?, flag)?,
                    "--seed" => seed = parse_num(stream.next_value(flag)?, flag)?,
                    "--night-every" => night_every = parse_num(stream.next_value(flag)?, flag)?,
                    "--admission-limit" => {
                        admission_limit = parse_num(stream.next_value(flag)?, flag)?;
                    }
                    "--threads" => threads = parse_num(stream.next_value(flag)?, flag)?,
                    "--drift" => drift = Some(parse_drift(stream.next_value(flag)?)?),
                    "--scenario" => scenario = Some(parse_scenario(stream.next_value(flag)?)?),
                    "--oracle" => {
                        oracle = true;
                        stream.index += 1;
                    }
                    "--crash" => crashes.push(parse_crash(stream.next_value(flag)?)?),
                    "--drop" => drop = parse_num(stream.next_value(flag)?, flag)?,
                    "--jitter" => jitter = parse_num(stream.next_value(flag)?, flag)?,
                    "--report-out" => {
                        report_out = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    "--trace-out" => {
                        trace_out = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    "--wal-dir" => wal_dir = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--recover" => {
                        recover = true;
                        stream.index += 1;
                    }
                    "--checkpoint-every" => {
                        checkpoint_every = parse_num(stream.next_value(flag)?, flag)?;
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            if epochs == 0 {
                return Err(CliError::Usage("--epochs must be at least 1".into()));
            }
            if !(0.0..=1.0).contains(&drop) {
                return Err(CliError::Usage(format!(
                    "--drop must be a probability in [0, 1], got {drop}"
                )));
            }
            if checkpoint_every == 0 {
                return Err(CliError::Usage(
                    "--checkpoint-every must be at least 1".into(),
                ));
            }
            if recover && wal_dir.is_none() {
                return Err(CliError::Usage("--recover needs --wal-dir".into()));
            }
            if scenario.is_some()
                && (drift.is_some() || !crashes.is_empty() || drop > 0.0 || jitter > 0)
            {
                return Err(CliError::Usage(
                    "--scenario is mutually exclusive with --drift/--crash/--drop/--jitter \
                     (the scenario supplies its own drift and faults)"
                        .into(),
                ));
            }
            if oracle && wal_dir.is_some() {
                return Err(CliError::Usage(
                    "--oracle is an offline analysis and cannot run with --wal-dir \
                     (durable reports must stay bitwise across crash/recover)"
                        .into(),
                ));
            }
            Ok(Command::Serve {
                instance: instance
                    .ok_or_else(|| CliError::Usage("--instance is required".into()))?,
                policy,
                epochs,
                period,
                seed,
                night_every,
                admission_limit,
                threads,
                drift,
                scenario,
                oracle,
                crashes,
                drop,
                jitter,
                report_out,
                trace_out,
                wal_dir,
                recover,
                checkpoint_every,
            })
        }
        "evaluate" | "inspect" | "adapt" | "distributed" => {
            let mut instance = None;
            let mut new_instance = None;
            let mut scheme = None;
            let mut mini = 5usize;
            let mut threshold = 100.0f64;
            let mut seed = 0u64;
            let mut output = None;
            stream.index = 1;
            while let Some(flag) = stream.args.get(stream.index).map(|s| s.as_str()) {
                match flag {
                    "--instance" => instance = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--new-instance" => {
                        new_instance = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    "--scheme" => scheme = Some(PathBuf::from(stream.next_value(flag)?)),
                    "--mini" => mini = parse_num(stream.next_value(flag)?, flag)?,
                    "--threshold" => threshold = parse_num(stream.next_value(flag)?, flag)?,
                    "--seed" => seed = parse_num(stream.next_value(flag)?, flag)?,
                    "-o" | "--output" => {
                        output = Some(PathBuf::from(stream.next_value(flag)?));
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            let instance =
                instance.ok_or_else(|| CliError::Usage("--instance is required".into()))?;
            match verb.as_str() {
                "evaluate" => Ok(Command::Evaluate {
                    instance,
                    scheme: scheme.ok_or_else(|| CliError::Usage("--scheme is required".into()))?,
                }),
                "inspect" => Ok(Command::Inspect { instance }),
                "distributed" => Ok(Command::Distributed { instance, output }),
                _ => Ok(Command::Adapt {
                    instance,
                    new_instance: new_instance
                        .ok_or_else(|| CliError::Usage("--new-instance is required".into()))?,
                    scheme: scheme.ok_or_else(|| CliError::Usage("--scheme is required".into()))?,
                    mini,
                    threshold,
                    seed,
                    output,
                }),
            }
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cmd = parse(&argv("generate --sites 5 --objects 7")).unwrap();
        match cmd {
            Command::Generate {
                sites,
                objects,
                update,
                capacity,
                topology,
                zipf,
                seed,
                output,
            } => {
                assert_eq!((sites, objects), (5, 7));
                assert_eq!((update, capacity), (5.0, 15.0));
                assert_eq!(topology, TopologyKind::Complete);
                assert_eq!(zipf, None);
                assert_eq!(seed, 0);
                assert_eq!(output, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_solve_with_gra_options() {
        let cmd = parse(&argv(
            "solve --instance net.drp --algorithm gra --pop 10 --gens 20 -o s.drp",
        ))
        .unwrap();
        match cmd {
            Command::Solve {
                solver,
                population,
                generations,
                output,
                shards,
                ..
            } => {
                assert_eq!(solver, SolverKind::Gra);
                assert_eq!((population, generations), (10, 20));
                assert_eq!(output, Some(PathBuf::from("s.drp")));
                assert_eq!(shards, 0, "flat solve is the default");
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_solve_with_shards() {
        let cmd = parse(&argv(
            "solve --instance net.drp --algorithm gra --shards 8 --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Solve { shards, seed, .. } => {
                assert_eq!(shards, 8);
                assert_eq!(seed, 7);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("solve --instance a.drp --algorithm gra --shards x")).is_err());
    }

    #[test]
    fn parses_adapt() {
        let cmd = parse(&argv(
            "adapt --instance a.drp --new-instance b.drp --scheme s.drp --mini 10 --threshold 50",
        ))
        .unwrap();
        match cmd {
            Command::Adapt {
                mini, threshold, ..
            } => {
                assert_eq!(mini, 10);
                assert_eq!(threshold, 50.0);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_faults() {
        let cmd = parse(&argv(
            "faults --instance net.drp --crash 2@80..380 --crash 5@120..450 \
             --drop 0.05 --jitter 2 --seed 9 --min-degree 3 --horizon 500",
        ))
        .unwrap();
        match cmd {
            Command::Faults {
                crashes,
                drop,
                jitter,
                seed,
                min_degree,
                horizon,
                scheme,
                ..
            } => {
                assert_eq!(crashes, vec![(2, 80, 380), (5, 120, 450)]);
                assert_eq!(drop, 0.05);
                assert_eq!(jitter, 2);
                assert_eq!(seed, 9);
                assert_eq!(min_degree, 3);
                assert_eq!(horizon, 500);
                assert_eq!(scheme, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_trace_out_on_solve_and_faults() {
        let cmd = parse(&argv(
            "solve --instance net.drp --algorithm sra --trace-out t.jsonl",
        ))
        .unwrap();
        match cmd {
            Command::Solve { trace_out, .. } => {
                assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cmd = parse(&argv("faults --instance net.drp --trace-out t.jsonl")).unwrap();
        match cmd {
            Command::Faults { trace_out, .. } => {
                assert_eq!(trace_out, Some(PathBuf::from("t.jsonl")));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("solve --instance a.drp --algorithm sra --trace-out")).is_err());
    }

    #[test]
    fn parses_serve_threads_round_trip() {
        let cmd = parse(&argv(
            "serve --instance net.drp --policy monitor --epochs 4 --threads 3",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                epochs, threads, ..
            } => {
                assert_eq!(epochs, 4);
                assert_eq!(threads, 3);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Omitted flag means 0 = auto-detect from DRP_THREADS / core count.
        match parse(&argv("serve --instance net.drp")).unwrap() {
            Command::Serve { threads, .. } => assert_eq!(threads, 0),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("serve --instance net.drp --threads")).is_err());
        assert!(parse(&argv("serve --instance net.drp --threads x")).is_err());
    }

    #[test]
    fn parses_serve_policy_and_scenario_round_trip() {
        for (name, want) in [
            ("static", ServePolicy::Static),
            ("monitor", ServePolicy::Monitor),
            ("adr", ServePolicy::Adr),
            ("predictive-ewma", ServePolicy::PredictiveEwma),
            ("predictive-regression", ServePolicy::PredictiveRegression),
        ] {
            let line = format!("serve --instance net.drp --policy {name}");
            match parse(&argv(&line)).unwrap() {
                Command::Serve { policy, .. } => assert_eq!(policy, want, "{name}"),
                other => panic!("wrong command: {other:?}"),
            }
        }
        for name in [
            "diurnal",
            "flash-crowd",
            "regional-failover",
            "partition-drift",
            "read-write-inversion",
        ] {
            let line = format!("serve --instance net.drp --scenario {name}");
            match parse(&argv(&line)).unwrap() {
                Command::Serve { scenario, .. } => {
                    assert_eq!(scenario.unwrap().name(), name, "{name}");
                }
                other => panic!("wrong command: {other:?}"),
            }
        }
        // Omitted flags keep their defaults.
        match parse(&argv("serve --instance net.drp")).unwrap() {
            Command::Serve {
                scenario, oracle, ..
            } => {
                assert_eq!(scenario, None);
                assert!(!oracle);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // --oracle is a boolean flag like --recover.
        match parse(&argv("serve --instance net.drp --oracle --seed 3")).unwrap() {
            Command::Serve { oracle, seed, .. } => {
                assert!(oracle);
                assert_eq!(seed, 3);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_policy_and_scenario() {
        let err = parse(&argv("serve --instance net.drp --policy warp")).unwrap_err();
        assert!(err.to_string().contains("predictive-ewma"), "{err}");
        let err = parse(&argv("serve --instance net.drp --scenario tsunami")).unwrap_err();
        assert!(err.to_string().contains("flash-crowd"), "{err}");
        assert!(err.to_string().contains("diurnal"), "{err}");
        // A scenario brings its own drift and faults.
        assert!(parse(&argv(
            "serve --instance net.drp --scenario diurnal --drift 600:30:0.8"
        ))
        .is_err());
        assert!(parse(&argv(
            "serve --instance net.drp --scenario diurnal --crash 1@2..9"
        ))
        .is_err());
        // The oracle re-scores the run offline; durable runs must not see it.
        assert!(parse(&argv("serve --instance net.drp --oracle --wal-dir w")).is_err());
    }

    #[test]
    fn rejects_bad_crash_windows() {
        assert!(parse(&argv("faults --instance a.drp --crash 2")).is_err());
        assert!(parse(&argv("faults --instance a.drp --crash 2@80")).is_err());
        assert!(parse(&argv("faults --instance a.drp --crash 2@80..80")).is_err());
        assert!(parse(&argv("faults --instance a.drp --crash x@1..2")).is_err());
        assert!(parse(&argv("faults --instance a.drp --drop 1.5")).is_err());
        assert!(parse(&argv("faults --crash 1@2..3")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("generate --objects 5")).is_err());
        assert!(parse(&argv("generate --sites x --objects 5")).is_err());
        assert!(parse(&argv("solve --instance a.drp --algorithm warp")).is_err());
        assert!(parse(&argv("generate --sites 5 --objects 5 --topology donut")).is_err());
        assert!(parse(&argv("evaluate --instance a.drp")).is_err());
        assert!(parse(&argv("adapt --instance a.drp --scheme s.drp")).is_err());
        assert!(parse(&argv("generate --sites")).is_err());
    }

    #[test]
    fn all_topologies_parse() {
        for topo in ["complete", "ring", "tree", "grid", "er", "waxman", "hier"] {
            let line = format!("generate --sites 5 --objects 5 --topology {topo}");
            assert!(parse(&argv(&line)).is_ok(), "{topo}");
        }
    }
}
