use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match drp_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("drp: {e}");
            eprintln!("{}", drp_cli::USAGE);
            ExitCode::from(2)
        }
    }
}
