use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use drp_algo::baselines::{HillClimb, PrimaryOnly, RandomFill};
use drp_algo::exact::BranchBound;
use drp_algo::fault_tolerance::ensure_min_degree;
use drp_algo::repair::{run_faulted, run_faulted_recorded, RepairConfig};
use drp_algo::shard::ShardedSolver;
use drp_algo::{detect_changed_objects, Agra, AgraConfig, Gra, GraConfig, Sra};
use drp_core::format::{read_instance, read_scheme, write_instance, write_scheme};
use drp_core::telemetry::{InMemoryRecorder, Recorder};
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme, SparseProblem};
use drp_net::sim::FaultPlan;
use drp_serve::{
    run_service, run_service_durable, run_service_durable_recorded, run_service_recorded,
    run_service_with_oracle, FaultSpec, FileWalStore, Policy, ServeConfig, WalStore, WalTuning,
};
use drp_workload::{PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::args::{CliError, Command, ServePolicy, SolverKind};

fn read_file(path: &Path) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn write_file(path: &Path, body: &str) -> Result<(), CliError> {
    std::fs::write(path, body).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn load_instance(path: &Path) -> Result<Problem, CliError> {
    Ok(read_instance(&read_file(path)?)?)
}

fn emit_scheme(
    out: &mut String,
    scheme: &ReplicationScheme,
    output: Option<&PathBuf>,
) -> Result<(), CliError> {
    let body = write_scheme(scheme);
    match output {
        Some(path) => {
            write_file(path, &body)?;
            let _ = writeln!(out, "scheme written to {}", path.display());
        }
        None => out.push_str(&body),
    }
    Ok(())
}

/// Runs the sharded hierarchical driver (`--shards K`): rebuild the sparse
/// graph view of the instance, cluster the sites, solve each shard as a
/// small dense sub-problem and reconcile into one global placement.
fn solve_sharded(
    out: &mut String,
    problem: &Problem,
    shards: usize,
    seed: u64,
    output: Option<&PathBuf>,
) -> Result<(), CliError> {
    let sp = SparseProblem::from_problem(problem).map_err(|e| CliError::Run(e.to_string()))?;
    let outcome = ShardedSolver::new(shards)
        .solve(&sp, seed)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let _ = writeln!(
        out,
        "algorithm        : SHARD ({} clusters)",
        outcome.report.clusters
    );
    let _ = writeln!(out, "NTC              : {}", outcome.ntc);
    let _ = writeln!(out, "D_prime          : {}", outcome.d_prime);
    let _ = writeln!(out, "savings          : {:.2}%", outcome.savings_percent());
    let _ = writeln!(out, "shard sites      : {:?}", outcome.report.shard_sites);
    let _ = writeln!(
        out,
        "border replicas  : {} granted / {} requested",
        outcome.report.border_placed, outcome.report.border_requested
    );
    let _ = writeln!(out, "refine moves     : {}", outcome.report.refine_moves);
    let _ = writeln!(out, "fingerprint      : {:016x}", outcome.fingerprint());
    let scheme = ReplicationScheme::from_fn(problem, |site, object| {
        outcome.placement[object.index()]
            .binary_search(&site.index())
            .is_ok()
    })
    .map_err(|e| CliError::Run(e.to_string()))?;
    emit_scheme(out, &scheme, output)
}

/// Dumps a recorder as JSONL and notes the path in the report.
fn write_trace(out: &mut String, recorder: &InMemoryRecorder, path: &Path) -> Result<(), CliError> {
    recorder.write_jsonl(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let _ = writeln!(out, "trace written to {}", path.display());
    Ok(())
}

/// Lets the trait-object dispatch in `solve` record SRA telemetry:
/// [`Sra`] is `Copy` and keeps no recorder, so this pairs one with it.
struct RecordedSra {
    inner: Sra,
    recorder: Arc<InMemoryRecorder>,
}

impl ReplicationAlgorithm for RecordedSra {
    fn name(&self) -> &str {
        "SRA"
    }

    fn solve(
        &self,
        problem: &Problem,
        rng: &mut dyn RngCore,
    ) -> drp_core::Result<ReplicationScheme> {
        self.inner
            .solve_recorded(problem, rng, self.recorder.as_ref())
    }
}

/// Executes a parsed [`Command`], returning its stdout text.
///
/// # Errors
///
/// Returns [`CliError`] for file, parse or solver failures.
pub fn run_command(command: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match command {
        Command::Generate {
            sites,
            objects,
            update,
            capacity,
            topology,
            zipf,
            seed,
            output,
        } => {
            let mut spec = WorkloadSpec::paper(sites, objects, update, capacity);
            spec.topology = topology;
            spec.zipf_skew = zipf;
            let mut rng = StdRng::seed_from_u64(seed);
            let problem = spec
                .generate(&mut rng)
                .map_err(|e| CliError::Run(e.to_string()))?;
            let body = write_instance(&problem);
            match output {
                Some(path) => {
                    write_file(&path, &body)?;
                    let _ = writeln!(
                        out,
                        "instance {}x{} (D_prime = {}) written to {}",
                        sites,
                        objects,
                        problem.d_prime(),
                        path.display()
                    );
                }
                None => out.push_str(&body),
            }
        }
        Command::Solve {
            instance,
            solver,
            seed,
            population,
            generations,
            output,
            trace_out,
            shards,
        } => {
            let problem = load_instance(&instance)?;
            if shards > 0 {
                solve_sharded(&mut out, &problem, shards, seed, output.as_ref())?;
                return Ok(out);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            // Armed only when --trace-out asks for it; SRA and GRA are the
            // instrumented solvers, the baselines leave the trace empty.
            let trace = trace_out
                .as_ref()
                .map(|_| Arc::new(InMemoryRecorder::new()));
            let algorithm: Box<dyn ReplicationAlgorithm> = match solver {
                SolverKind::Sra => match &trace {
                    Some(rec) => Box::new(RecordedSra {
                        inner: Sra::new(),
                        recorder: Arc::clone(rec),
                    }),
                    None => Box::new(Sra::new()),
                },
                SolverKind::Gra => {
                    let mut gra = Gra::with_config(GraConfig {
                        population_size: population,
                        generations,
                        ..GraConfig::default()
                    });
                    if let Some(rec) = &trace {
                        gra = gra.with_recorder(Arc::clone(rec) as Arc<dyn Recorder>);
                    }
                    Box::new(gra)
                }
                SolverKind::Hill => Box::new(HillClimb::default()),
                SolverKind::Random => Box::new(RandomFill::default()),
                SolverKind::Optimal => Box::new(BranchBound::default()),
                SolverKind::Primary => Box::new(PrimaryOnly),
            };
            let (scheme, report) = algorithm
                .solve_report(&problem, &mut rng)
                .map_err(|e| CliError::Run(e.to_string()))?;
            let _ = writeln!(out, "{report}");
            emit_scheme(&mut out, &scheme, output.as_ref())?;
            if let (Some(rec), Some(path)) = (&trace, &trace_out) {
                write_trace(&mut out, rec, path)?;
            }
        }
        Command::Evaluate { instance, scheme } => {
            let problem = load_instance(&instance)?;
            let scheme = read_scheme(&read_file(&scheme)?, &problem)?;
            let _ = writeln!(out, "NTC              : {}", problem.total_cost(&scheme));
            let _ = writeln!(out, "D_prime          : {}", problem.d_prime());
            let _ = writeln!(
                out,
                "savings          : {:.2}%",
                problem.savings_percent(&scheme)
            );
            let _ = writeln!(out, "extra replicas   : {}", scheme.extra_replica_count());
            let _ = writeln!(out, "per-site storage :");
            for site in problem.sites() {
                let used = scheme.used_capacity(site);
                let cap = problem.capacity(site);
                let _ = writeln!(
                    out,
                    "  site {site:>3}: {used:>8} / {cap:>8} data units ({:.1}%)",
                    100.0 * used as f64 / cap.max(1) as f64
                );
            }
        }
        Command::Inspect { instance } => {
            let problem = load_instance(&instance)?;
            let m = problem.num_sites();
            let n = problem.num_objects();
            let total_reads: u64 = problem.objects().map(|k| problem.total_reads(k)).sum();
            let total_writes: u64 = problem.objects().map(|k| problem.total_writes(k)).sum();
            let total_capacity: u64 = problem.sites().map(|i| problem.capacity(i)).sum();
            let _ = writeln!(out, "sites            : {m}");
            let _ = writeln!(out, "objects          : {n}");
            let _ = writeln!(out, "total object size: {}", problem.total_object_size());
            let _ = writeln!(out, "total capacity   : {total_capacity}");
            let _ = writeln!(out, "total reads      : {total_reads}");
            let _ = writeln!(out, "total writes     : {total_writes}");
            let _ = writeln!(
                out,
                "update ratio     : {:.2}%",
                100.0 * total_writes as f64 / total_reads.max(1) as f64
            );
            let _ = writeln!(out, "D_prime          : {}", problem.d_prime());
            let mut hottest: Vec<_> = problem
                .objects()
                .map(|k| (problem.total_reads(k), k))
                .collect();
            hottest.sort_unstable_by_key(|&(r, _)| std::cmp::Reverse(r));
            let _ = writeln!(out, "hottest objects  :");
            for (reads, k) in hottest.into_iter().take(5) {
                let _ = writeln!(
                    out,
                    "  object {k:>3}: {reads} reads, {} writes, size {}, primary at {}",
                    problem.total_writes(k),
                    problem.object_size(k),
                    problem.primary(k)
                );
            }
        }
        Command::Distributed { instance, output } => {
            let problem = load_instance(&instance)?;
            let run = drp_algo::distributed::distributed_sra(&problem)
                .map_err(|e| CliError::Run(e.to_string()))?;
            let _ = writeln!(
                out,
                "savings          : {:.2}%",
                problem.savings_percent(&run.scheme)
            );
            let _ = writeln!(
                out,
                "replicas created : {}",
                run.scheme.extra_replica_count()
            );
            let _ = writeln!(out, "protocol messages: {}", run.stats.messages);
            let _ = writeln!(out, "migration NTC    : {}", run.stats.transfer_cost);
            let _ = writeln!(out, "completion time  : {}", run.completion_time);
            emit_scheme(&mut out, &run.scheme, output.as_ref())?;
        }
        Command::Faults {
            instance,
            scheme,
            crashes,
            drop,
            jitter,
            seed,
            min_degree,
            horizon,
            trace_out,
        } => {
            let problem = load_instance(&instance)?;
            for &(site, _, _) in &crashes {
                if site >= problem.num_sites() {
                    return Err(CliError::Run(format!(
                        "crash site {site} out of range for {} sites",
                        problem.num_sites()
                    )));
                }
            }
            let mut scheme = match scheme {
                Some(path) => read_scheme(&read_file(&path)?, &problem)?,
                None => ReplicationScheme::primary_only(&problem),
            };
            let top_up = ensure_min_degree(&problem, &mut scheme, min_degree)
                .map_err(|e| CliError::Run(e.to_string()))?;
            if !top_up.is_complete() {
                let _ = writeln!(
                    out,
                    "warning: {} object(s) cannot reach degree {min_degree} under capacity",
                    top_up.unsatisfiable.len()
                );
            }
            // An all-default plan means "injector off": the same workload
            // runs with the fault machinery disarmed.
            let plan = if crashes.is_empty() && drop == 0.0 && jitter == 0 {
                None
            } else {
                let mut plan = FaultPlan::new(seed).drop_probability(drop).jitter(jitter);
                for (site, from, until) in crashes {
                    plan = plan.crash(site, from, until);
                }
                Some(plan)
            };
            let config = RepairConfig {
                min_degree,
                horizon,
                ..RepairConfig::default()
            };
            let trace = trace_out
                .as_ref()
                .map(|_| Arc::new(InMemoryRecorder::new()));
            let run = match &trace {
                Some(rec) => run_faulted_recorded(
                    &problem,
                    &scheme,
                    plan,
                    config,
                    Arc::clone(rec) as Arc<dyn Recorder>,
                ),
                None => run_faulted(&problem, &scheme, plan, config),
            }
            .map_err(|e| CliError::Run(e.to_string()))?;
            let _ = writeln!(out, "{}", run.report);
            let fs = run.fault_stats;
            let _ = writeln!(
                out,
                "faults: crashes={} recoveries={} dropped-random={} dropped-partition={} \
                 lost-arrivals={} lost-timers={} extra-delay={}",
                fs.crashes,
                fs.recoveries,
                fs.dropped_random,
                fs.dropped_partition,
                fs.lost_arrivals,
                fs.lost_timers,
                fs.extra_delay
            );
            let _ = writeln!(
                out,
                "sim: events={} messages={} data-units={} transfer-cost={}",
                run.events, run.stats.messages, run.stats.data_units, run.stats.transfer_cost
            );
            if let (Some(rec), Some(path)) = (&trace, &trace_out) {
                write_trace(&mut out, rec, path)?;
            }
        }
        Command::Serve {
            instance,
            policy,
            epochs,
            period,
            seed,
            night_every,
            admission_limit,
            threads,
            drift,
            scenario,
            oracle,
            crashes,
            drop,
            jitter,
            report_out,
            trace_out,
            wal_dir,
            recover,
            checkpoint_every,
        } => {
            let problem = load_instance(&instance)?;
            for &(site, _, _) in &crashes {
                if site >= problem.num_sites() {
                    return Err(CliError::Run(format!(
                        "crash site {site} out of range for {} sites",
                        problem.num_sites()
                    )));
                }
            }
            let faults = if crashes.is_empty() && drop == 0.0 && jitter == 0 {
                None
            } else {
                Some(FaultSpec {
                    crashes,
                    drop_probability: drop,
                    jitter,
                })
            };
            let config = ServeConfig {
                policy: match policy {
                    ServePolicy::Static => Policy::Static,
                    ServePolicy::Monitor => Policy::Monitor,
                    ServePolicy::Adr => Policy::Adr,
                    ServePolicy::PredictiveEwma => Policy::PredictiveEwma,
                    ServePolicy::PredictiveRegression => Policy::PredictiveRegression,
                },
                epochs,
                period,
                seed,
                night_every,
                admission_limit,
                threads,
                drift: drift.map(
                    |(change_percent, objects_percent, read_share)| PatternChange {
                        change_percent,
                        objects_percent,
                        read_share,
                    },
                ),
                faults,
                scenario,
                wal: WalTuning { checkpoint_every },
                ..ServeConfig::default()
            };
            let trace = trace_out
                .as_ref()
                .map(|_| Arc::new(InMemoryRecorder::new()));
            let mut oracle_info = None;
            let report = if let Some(dir) = &wal_dir {
                let mut store =
                    FileWalStore::open(dir).map_err(|e| CliError::Run(e.to_string()))?;
                let existing = store.load().map_err(|e| CliError::Run(e.to_string()))?;
                if !existing.is_empty() && !recover {
                    return Err(CliError::Run(format!(
                        "{} already holds a WAL; pass --recover to resume it or remove the file",
                        store.path().display()
                    )));
                }
                let outcome = match &trace {
                    Some(rec) => run_service_durable_recorded(
                        &problem,
                        &config,
                        &mut store,
                        Arc::clone(rec) as Arc<dyn Recorder>,
                    ),
                    None => run_service_durable(&problem, &config, &mut store),
                }
                .map_err(|e| CliError::Run(e.to_string()))?;
                match &outcome.recovery {
                    Some(info) => {
                        let _ = writeln!(
                            out,
                            "recovered from {}: resumed at epoch {}, {} uncommitted record(s) dropped",
                            store.path().display(),
                            info.resumed_epoch,
                            info.dropped_records
                        );
                        if let Some(damage) = &info.damage {
                            let _ = writeln!(out, "wal damage: {damage}");
                        }
                    }
                    None => {
                        let _ = writeln!(out, "journaling to {}", store.path().display());
                    }
                }
                outcome.report
            } else if oracle {
                let (report, oracle_report) = run_service_with_oracle(&problem, &config)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                oracle_info = Some(oracle_report);
                report
            } else {
                match &trace {
                    Some(rec) => run_service_recorded(
                        &problem,
                        &config,
                        Arc::clone(rec) as Arc<dyn Recorder>,
                    ),
                    None => run_service(&problem, &config),
                }
                .map_err(|e| CliError::Run(e.to_string()))?
            };
            let _ = writeln!(
                out,
                "policy {} | seed {} | {} epoch(s) x {} time units",
                report.policy, report.seed, epochs, period
            );
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>12} {:>7} {:>7} {:>6} {:>6} {:>8} {:>9}",
                "epoch",
                "serve-ntc",
                "migr-ntc",
                "moves",
                "shed",
                "stale",
                "lost",
                "replicas",
                "savings%"
            );
            for e in &report.epochs {
                let mark = if e.rebuilt {
                    " night:GRA"
                } else if e.adapted_objects > 0 {
                    " day:AGRA"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "{:>5} {:>12} {:>12} {:>7} {:>7} {:>6} {:>6} {:>8} {:>9.2}{}",
                    e.epoch,
                    e.serving_ntc,
                    e.migration_ntc,
                    e.migration_planned,
                    e.shed,
                    e.reads_stale,
                    e.reads_lost + e.writes_lost,
                    e.replicas,
                    e.savings_percent,
                    mark,
                );
            }
            let t = &report.totals;
            let _ = writeln!(
                out,
                "totals: serving NTC {} + migration NTC {} = {} | {} adaptation(s), {} rebuild(s), {} move(s)",
                t.serving_ntc, t.migration_ntc, t.total_ntc, t.adaptations, t.rebuilds, t.migration_moves
            );
            if let Some(o) = &oracle_info {
                let _ = writeln!(
                    out,
                    "oracle: online NTC {} vs OPT {} | competitive ratio {:.4} | hindsight won {} epoch(s)",
                    o.online_ntc, o.opt_ntc, o.competitive_ratio, o.hindsight_epochs
                );
            }
            let _ = writeln!(out, "fingerprint: {:016x}", report.fingerprint());
            if let Some(path) = &report_out {
                write_file(path, &report.render_json())?;
                let _ = writeln!(out, "report written to {}", path.display());
            }
            if let (Some(rec), Some(path)) = (&trace, &trace_out) {
                write_trace(&mut out, rec, path)?;
            }
        }
        Command::Adapt {
            instance,
            new_instance,
            scheme,
            mini,
            threshold,
            seed,
            output,
        } => {
            let old_problem = load_instance(&instance)?;
            let new_problem = load_instance(&new_instance)?;
            if old_problem.num_objects() != new_problem.num_objects()
                || old_problem.num_sites() != new_problem.num_sites()
            {
                return Err(CliError::Run(
                    "old and new instances must have the same shape".into(),
                ));
            }
            let current = read_scheme(&read_file(&scheme)?, &old_problem)?;
            let changed = detect_changed_objects(&old_problem, &new_problem, threshold);
            let _ = writeln!(
                out,
                "{} of {} objects shifted past {threshold}%",
                changed.len(),
                new_problem.num_objects()
            );
            let stale = new_problem.savings_percent(&current);
            let mut rng = StdRng::seed_from_u64(seed);
            let agra = Agra::with_config(AgraConfig {
                mini_gra_generations: mini,
                ..AgraConfig::default()
            });
            let outcome = agra
                .adapt(&new_problem, &current, &[], &changed, &mut rng)
                .map_err(|e| CliError::Run(e.to_string()))?;
            let adapted = new_problem.savings_percent(&outcome.scheme);
            let _ = writeln!(out, "stale scheme savings  : {stale:.2}%");
            let _ = writeln!(out, "adapted scheme savings: {adapted:.2}%");
            let _ = writeln!(
                out,
                "evaluations           : {} micro + {} mini",
                outcome.micro_evaluations, outcome.mini_evaluations
            );
            emit_scheme(&mut out, &outcome.scheme, output.as_ref())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("drp_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_solve_evaluate_pipeline() {
        let dir = tempdir("pipeline");
        let net = dir.join("net.drp");
        let scheme = dir.join("scheme.drp");

        let out = run(&argv(&format!(
            "generate --sites 8 --objects 10 --update 5 --capacity 20 --seed 3 -o {}",
            net.display()
        )))
        .unwrap();
        assert!(out.contains("instance 8x10"));

        let out = run(&argv(&format!(
            "solve --instance {} --algorithm sra -o {}",
            net.display(),
            scheme.display()
        )))
        .unwrap();
        assert!(out.contains("SRA:"));

        let out = run(&argv(&format!(
            "evaluate --instance {} --scheme {}",
            net.display(),
            scheme.display()
        )))
        .unwrap();
        assert!(out.contains("savings"));
        assert!(out.contains("per-site storage"));

        let out = run(&argv(&format!("inspect --instance {}", net.display()))).unwrap();
        assert!(out.contains("sites            : 8"));
        assert!(out.contains("hottest objects"));

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn generate_to_stdout_is_parseable() {
        let text = run(&argv("generate --sites 4 --objects 3 --seed 1")).unwrap();
        let problem = drp_core::format::read_instance(&text).unwrap();
        assert_eq!(problem.num_sites(), 4);
    }

    #[test]
    fn solve_gra_and_optimal_agree_on_tiny_instances() {
        let dir = tempdir("optimal");
        let net = dir.join("net.drp");
        run(&argv(&format!(
            "generate --sites 4 --objects 4 --capacity 30 --seed 5 -o {}",
            net.display()
        )))
        .unwrap();
        let gra = run(&argv(&format!(
            "solve --instance {} --algorithm gra --pop 8 --gens 15",
            net.display()
        )))
        .unwrap();
        let opt = run(&argv(&format!(
            "solve --instance {} --algorithm optimal",
            net.display()
        )))
        .unwrap();
        // Pull the reported costs out of "<name>: cost=<n> ...".
        let cost = |s: &str| -> u64 {
            s.split("cost=")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(cost(&opt) <= cost(&gra));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn solve_with_shards_reports_and_writes_an_evaluable_scheme() {
        let dir = tempdir("shards");
        let net = dir.join("net.drp");
        let scheme = dir.join("scheme.drp");
        run(&argv(&format!(
            "generate --sites 24 --objects 8 --capacity 30 --topology hier --seed 4 -o {}",
            net.display()
        )))
        .unwrap();
        let out = run(&argv(&format!(
            "solve --instance {} --algorithm gra --shards 3 --seed 4 -o {}",
            net.display(),
            scheme.display()
        )))
        .unwrap();
        assert!(out.contains("SHARD (3 clusters)"), "{out}");
        assert!(out.contains("fingerprint"), "{out}");
        // The emitted scheme round-trips through the evaluator, i.e. the
        // sharded placement is a valid dense scheme too.
        let eval = run(&argv(&format!(
            "evaluate --instance {} --scheme {}",
            net.display(),
            scheme.display()
        )))
        .unwrap();
        assert!(eval.contains("savings"), "{eval}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn adapt_round_trip() {
        let dir = tempdir("adapt");
        let old = dir.join("old.drp");
        let newp = dir.join("new.drp");
        let scheme = dir.join("scheme.drp");
        run(&argv(&format!(
            "generate --sites 8 --objects 10 --seed 7 -o {}",
            old.display()
        )))
        .unwrap();
        // A different seed plays the role of the shifted pattern; note the
        // topology must match, so we derive the new instance from the old
        // one instead of regenerating.
        let problem =
            drp_core::format::read_instance(&std::fs::read_to_string(&old).unwrap()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let change = drp_workload::PatternChange {
            change_percent: 400.0,
            objects_percent: 30.0,
            read_share: 1.0,
        };
        use rand::SeedableRng;
        let shift = change.apply(&problem, &mut rng).unwrap();
        std::fs::write(&newp, drp_core::format::write_instance(&shift.problem)).unwrap();

        run(&argv(&format!(
            "solve --instance {} --algorithm sra -o {}",
            old.display(),
            scheme.display()
        )))
        .unwrap();
        let out = run(&argv(&format!(
            "adapt --instance {} --new-instance {} --scheme {} --mini 3 --threshold 50",
            old.display(),
            newp.display(),
            scheme.display()
        )))
        .unwrap();
        assert!(out.contains("adapted scheme savings"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn distributed_reports_protocol_costs() {
        let dir = tempdir("distributed");
        let net = dir.join("net.drp");
        run(&argv(&format!(
            "generate --sites 6 --objects 8 --seed 11 -o {}",
            net.display()
        )))
        .unwrap();
        let out = run(&argv(&format!("distributed --instance {}", net.display()))).unwrap();
        assert!(out.contains("protocol messages"));
        assert!(out.contains("drp-scheme v1"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn faults_reports_degradation_and_is_deterministic() {
        let dir = tempdir("faults");
        let net = dir.join("net.drp");
        run(&argv(&format!(
            "generate --sites 10 --objects 8 --capacity 60 --seed 13 -o {}",
            net.display()
        )))
        .unwrap();
        let line = format!(
            "faults --instance {} --crash 2@80..380 --crash 5@120..450 \
             --jitter 1 --seed 17 --min-degree 2 --horizon 600",
            net.display()
        );
        let out = run(&argv(&line)).unwrap();
        assert!(out.contains("reads: total="), "{out}");
        assert!(out.contains("faults: crashes=2 recoveries=2"), "{out}");
        assert!(out.contains("repair:"), "{out}");
        // Bitwise-identical on a second run: the whole pipeline is seeded.
        let again = run(&argv(&line)).unwrap();
        assert_eq!(out, again);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn faults_without_a_plan_runs_the_clean_baseline() {
        let dir = tempdir("faults_clean");
        let net = dir.join("net.drp");
        run(&argv(&format!(
            "generate --sites 6 --objects 5 --capacity 60 --seed 2 -o {}",
            net.display()
        )))
        .unwrap();
        let out = run(&argv(&format!("faults --instance {}", net.display()))).unwrap();
        assert!(out.contains("faults: crashes=0 recoveries=0"), "{out}");
        assert!(out.contains("degraded-at=never"), "{out}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn faults_rejects_out_of_range_sites() {
        let dir = tempdir("faults_bad");
        let net = dir.join("net.drp");
        run(&argv(&format!(
            "generate --sites 4 --objects 3 --seed 1 -o {}",
            net.display()
        )))
        .unwrap();
        let err = run(&argv(&format!(
            "faults --instance {} --crash 9@10..20",
            net.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn trace_out_writes_jsonl_without_changing_results() {
        let dir = tempdir("trace");
        let net = dir.join("net.drp");
        let trace = dir.join("solve.trace.jsonl");
        run(&argv(&format!(
            "generate --sites 8 --objects 10 --capacity 20 --seed 3 -o {}",
            net.display()
        )))
        .unwrap();

        let solve = format!(
            "solve --instance {} --algorithm gra --pop 8 --gens 10 --seed 4",
            net.display()
        );
        let bare = run(&argv(&solve)).unwrap();
        let traced = run(&argv(&format!("{solve} --trace-out {}", trace.display()))).unwrap();
        assert!(traced.contains("trace written to"), "{traced}");
        // The wall-clock field varies run to run; the cost must not.
        let cost = |s: &str| {
            s.split("cost=")
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(cost(&bare), cost(&traced));
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(body.contains(r#""name":"ga.generation""#), "{body}");
        assert!(body.contains(r#""name":"gra.best_fitness""#), "{body}");

        let ftrace = dir.join("faults.trace.jsonl");
        let out = run(&argv(&format!(
            "faults --instance {} --crash 2@80..380 --seed 17 --horizon 400 --trace-out {}",
            net.display(),
            ftrace.display()
        )))
        .unwrap();
        assert!(out.contains("trace written to"), "{out}");
        let body = std::fs::read_to_string(&ftrace).unwrap();
        assert!(body.contains(r#""name":"sim.run""#), "{body}");
        assert!(body.contains(r#""name":"fault.crashes""#), "{body}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_is_reported() {
        let err = run(&argv("solve --instance /nonexistent.drp --algorithm sra")).unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn serve_runs_the_monitor_loop_end_to_end() {
        let dir = tempdir("serve");
        let net = dir.join("net.drp");
        let report = dir.join("report.json");
        run(&argv(&format!(
            "generate --sites 6 --objects 8 --capacity 30 --seed 9 -o {}",
            net.display()
        )))
        .unwrap();

        let out = run(&argv(&format!(
            "serve --instance {} --policy monitor --epochs 2 --period 128 --seed 9 \
             --drift 500:40:0.9 --report-out {}",
            net.display(),
            report.display()
        )))
        .unwrap();
        assert!(out.contains("policy monitor"));
        assert!(out.contains("fingerprint: "));
        assert!(out.contains("totals: serving NTC"));
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("\"policy\": \"monitor\""));
        assert!(json.contains("\"epochs\": ["));

        // Same seed, same fingerprint: the CLI surface preserves the
        // determinism contract.
        let again = run(&argv(&format!(
            "serve --instance {} --policy monitor --epochs 2 --period 128 --seed 9 \
             --drift 500:40:0.9",
            net.display()
        )))
        .unwrap();
        let fp = |text: &str| {
            text.lines()
                .find_map(|l| l.strip_prefix("fingerprint: ").map(str::to_string))
                .unwrap()
        };
        assert_eq!(fp(&out), fp(&again));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        assert!(run(&argv("serve")).is_err());
        assert!(run(&argv("serve --instance x.drp --policy bogus")).is_err());
        assert!(run(&argv("serve --instance x.drp --epochs 0")).is_err());
        assert!(run(&argv("serve --instance x.drp --drift 1:2")).is_err());
        assert!(run(&argv("serve --instance x.drp --drop 1.5")).is_err());
        assert!(run(&argv("serve --instance x.drp --checkpoint-every 0")).is_err());
        assert!(run(&argv("serve --instance x.drp --recover")).is_err());
        assert!(run(&argv("serve --instance x.drp --scenario bogus")).is_err());
        assert!(run(&argv(
            "serve --instance x.drp --scenario diurnal --drift 1:2:0.5"
        ))
        .is_err());
        assert!(run(&argv("serve --instance x.drp --oracle --wal-dir w")).is_err());
    }

    #[test]
    fn serve_predictive_scenario_with_oracle_end_to_end() {
        let dir = tempdir("serve_predict");
        let net = dir.join("net.drp");
        run(&argv(&format!(
            "generate --sites 6 --objects 8 --capacity 30 --seed 9 -o {}",
            net.display()
        )))
        .unwrap();

        let serve = format!(
            "serve --instance {} --policy predictive-ewma --scenario flash-crowd \
             --epochs 3 --period 128 --seed 9 --oracle",
            net.display()
        );
        let out = run(&argv(&serve)).unwrap();
        assert!(out.contains("policy predictive-ewma"), "{out}");
        assert!(out.contains("competitive ratio "), "{out}");
        let ratio: f64 = out
            .lines()
            .find(|l| l.starts_with("oracle: "))
            .and_then(|l| l.split("competitive ratio ").nth(1))
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio >= 1.0, "{out}");

        // Deterministic end to end, oracle included.
        let again = run(&argv(&serve)).unwrap();
        assert_eq!(out, again);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_wal_dir_journals_refuses_stale_logs_and_recovers() {
        let dir = tempdir("serve_wal");
        let net = dir.join("net.drp");
        let wal = dir.join("wal");
        run(&argv(&format!(
            "generate --sites 6 --objects 8 --capacity 30 --seed 9 -o {}",
            net.display()
        )))
        .unwrap();

        let serve = format!(
            "serve --instance {} --policy monitor --epochs 2 --period 128 --seed 9 \
             --drift 500:40:0.9",
            net.display()
        );
        let fp = |text: &str| {
            text.lines()
                .find_map(|l| l.strip_prefix("fingerprint: ").map(str::to_string))
                .unwrap()
        };
        let plain = run(&argv(&serve)).unwrap();

        // Fresh durable run: journals, same fingerprint as the in-memory run.
        let durable = run(&argv(&format!(
            "{serve} --wal-dir {} --checkpoint-every 1",
            wal.display()
        )))
        .unwrap();
        assert!(durable.contains("journaling to"), "{durable}");
        assert_eq!(fp(&plain), fp(&durable));
        assert!(wal.join("wal.log").exists());

        // A leftover log without --recover is an error, not a silent resume.
        let err = run(&argv(&format!("{serve} --wal-dir {}", wal.display()))).unwrap_err();
        assert!(err.to_string().contains("--recover"), "{err}");

        // With --recover the completed log replays to the same report.
        let resumed = run(&argv(&format!(
            "{serve} --wal-dir {} --checkpoint-every 1 --recover",
            wal.display()
        )))
        .unwrap();
        assert!(resumed.contains("recovered from"), "{resumed}");
        assert!(resumed.contains("resumed at epoch 2"), "{resumed}");
        assert_eq!(fp(&plain), fp(&resumed));
        let _ = std::fs::remove_dir_all(dir);
    }
}
