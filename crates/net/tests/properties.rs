//! Property-based tests of the network substrate.

use drp_net::pool::WorkerPool;
use drp_net::{shortest, topology, CostMatrix, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random connected graph built from a spanning path plus extra
/// random edges.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, 0usize..20, 1u64..999).prop_map(|(m, extra_edges, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut g = Graph::new(m).unwrap();
        for i in 0..m - 1 {
            g.add_edge(i, i + 1, rng.random_range(1..=10)).unwrap();
        }
        for _ in 0..extra_edges {
            let a = rng.random_range(0..m);
            let b = rng.random_range(0..m);
            if a != b {
                g.add_edge(a, b, rng.random_range(1..=10)).unwrap();
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn dijkstra_agrees_with_floyd_warshall(g in arb_connected_graph()) {
        let fw = shortest::floyd_warshall(&g);
        for (src, row) in fw.iter().enumerate() {
            let d = shortest::dijkstra(&g, src).unwrap();
            prop_assert_eq!(&d, row, "row {}", src);
        }
    }

    #[test]
    fn parallel_all_pairs_agrees_with_floyd_warshall(
        g in arb_connected_graph(),
        threads in 1usize..5,
    ) {
        // The pool-fanned Dijkstra sweep must reproduce the sequential
        // Floyd–Warshall reference exactly, for every pool size.
        let fw = shortest::floyd_warshall(&g);
        let pool = WorkerPool::new(threads);
        let flat = shortest::all_pairs_flat(&g, &pool);
        let m = g.num_sites();
        prop_assert_eq!(flat.len(), m * m);
        for (src, row) in fw.iter().enumerate() {
            for (dst, &want) in row.iter().enumerate() {
                let raw = flat[src * m + dst];
                let got = (raw != shortest::UNREACHABLE).then_some(raw);
                prop_assert_eq!(got, want, "pair ({}, {})", src, dst);
            }
        }
    }

    #[test]
    fn chunked_fan_out_visits_every_element_exactly_once(
        len in 0usize..200,
        chunk in 1usize..40,
        threads in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Seed each slot with its own index so the closure can check that
        // chunk `index` received exactly the slice `[index*chunk ..
        // min(index*chunk + chunk, len))`, in order.
        let mut data: Vec<u64> = (0..len as u64).collect();
        let visited = AtomicUsize::new(0);
        let pool = WorkerPool::new(threads);
        pool.for_each_chunk_mut(&mut data, chunk, |index, slice| {
            let start = index * chunk;
            assert!(!slice.is_empty(), "empty chunk dispatched");
            assert!(slice.len() <= chunk, "chunk overshoots requested grain");
            for (offset, value) in slice.iter_mut().enumerate() {
                assert_eq!(*value, (start + offset) as u64, "wrong slice bounds");
                // Stamp the element so a double visit is detectable below.
                *value = (index as u64) << 32 | (start + offset) as u64;
            }
            visited.fetch_add(slice.len(), Ordering::Relaxed);
        });
        prop_assert_eq!(visited.load(Ordering::Relaxed), len);
        for (i, &value) in data.iter().enumerate() {
            let expect = ((i / chunk) as u64) << 32 | i as u64;
            prop_assert_eq!(value, expect, "element {} stamped wrong", i);
        }
    }

    #[test]
    fn cost_matrix_is_metric(g in arb_connected_graph()) {
        let c = CostMatrix::from_graph(&g).unwrap();
        let m = c.num_sites();
        for i in 0..m {
            prop_assert_eq!(c.cost(i, i), 0);
            for j in 0..m {
                prop_assert_eq!(c.cost(i, j), c.cost(j, i));
                for k in 0..m {
                    prop_assert!(c.cost(i, j) <= c.cost(i, k) + c.cost(k, j));
                }
            }
        }
    }

    #[test]
    fn shortest_paths_never_exceed_direct_edges(g in arb_connected_graph()) {
        let c = CostMatrix::from_graph(&g).unwrap();
        for e in g.edges() {
            prop_assert!(c.cost(e.a, e.b) <= e.cost);
        }
    }

    #[test]
    fn generated_topologies_yield_valid_cost_matrices(
        m in 3usize..20,
        seed in 0u64..500,
        kind in 0usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = match kind {
            0 => topology::complete_uniform(m, 1, 10, &mut rng).unwrap(),
            1 => topology::ring(m, 1, 10, &mut rng).unwrap(),
            2 => topology::line(m, 1, 10, &mut rng).unwrap(),
            3 => topology::balanced_tree(m, 2, 1, 10, &mut rng).unwrap(),
            4 => topology::erdos_renyi(m, 0.3, 1, 10, &mut rng).unwrap(),
            _ => topology::waxman(m, 0.8, 0.4, 1, 10, &mut rng).unwrap(),
        };
        prop_assert!(graph.is_connected());
        let c = CostMatrix::from_graph(&graph).unwrap();
        prop_assert_eq!(c.num_sites(), m);
        // Round-trip through the validated constructor must succeed: the
        // metric closure always passes its own validation.
        let mut rows = Vec::with_capacity(m * m);
        for i in 0..m {
            rows.extend_from_slice(c.row(i));
        }
        prop_assert!(CostMatrix::from_rows(m, rows).is_ok());
    }
}
