//! Shortest-path routing tables with path reconstruction.
//!
//! The cost model only needs the metric `C(i, j)`, but the simulator-level
//! analyses (per-physical-link utilization, hot links on sparse topologies)
//! need the actual paths. [`Routes`] stores a next-hop table computed with
//! Dijkstra per source, reconstructing any path in O(path length).
//!
//! Ties are broken toward the lower-numbered neighbour, so routing is
//! deterministic and consistent: the next hop along `i → j` always lies on
//! a shortest path, and following the table always terminates.

use crate::{shortest, Graph, NetError, Result};

/// All-pairs next-hop routing table over a connected graph.
///
/// # Examples
///
/// ```
/// use drp_net::{Graph, Routes};
///
/// let mut g = Graph::new(4)?;
/// g.add_edge(0, 1, 1)?;
/// g.add_edge(1, 2, 1)?;
/// g.add_edge(2, 3, 1)?;
/// let routes = Routes::from_graph(&g)?;
/// assert_eq!(routes.path(0, 3), vec![0, 1, 2, 3]);
/// assert_eq!(routes.next_hop(0, 3), Some(1));
/// # Ok::<(), drp_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routes {
    num_sites: usize,
    /// Row-major: `next[src * M + dst]` is the first hop from src toward
    /// dst (== dst when adjacent, == src when src == dst).
    next: Vec<usize>,
}

impl Routes {
    /// Builds the table from a connected graph.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] when some pair is unreachable.
    pub fn from_graph(graph: &Graph) -> Result<Self> {
        let m = graph.num_sites();
        let mut next = vec![0usize; m * m];
        // Dijkstra from every destination, tracking the predecessor toward
        // the destination: next_hop(src, dst) = predecessor of src in the
        // tree rooted at dst.
        for dst in 0..m {
            let dist = shortest::dijkstra(graph, dst)?;
            for (src, d) in dist.iter().enumerate() {
                let Some(d) = d else {
                    return Err(NetError::Disconnected { pair: (src, dst) });
                };
                if src == dst {
                    next[src * m + dst] = src;
                    continue;
                }
                // The deterministic next hop: the smallest neighbour v of
                // src with dist(v) + w(src, v) == dist(src).
                let hop = graph
                    .neighbors(src)
                    .filter(|&(v, w)| dist[v].is_some_and(|dv| dv + w == *d))
                    .map(|(v, _)| v)
                    .min()
                    .expect("connected graph has a shortest-path neighbour");
                next[src * m + dst] = hop;
            }
        }
        Ok(Self { num_sites: m, next })
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The first hop from `src` toward `dst`; `None` when `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn next_hop(&self, src: usize, dst: usize) -> Option<usize> {
        assert!(
            src < self.num_sites && dst < self.num_sites,
            "site out of range"
        );
        (src != dst).then(|| self.next[src * self.num_sites + dst])
    }

    /// The full shortest path from `src` to `dst`, both endpoints included.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn path(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = vec![src];
        let mut here = src;
        while here != dst {
            here = self.next[here * self.num_sites + dst];
            path.push(here);
        }
        path
    }

    /// Accumulates `amount` of flow from `src` to `dst` onto each directed
    /// physical link of the path, into `link_loads` (row-major `M × M`).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `link_loads` has the wrong
    /// length.
    pub fn accumulate_flow(&self, src: usize, dst: usize, amount: u64, link_loads: &mut [u64]) {
        assert_eq!(
            link_loads.len(),
            self.num_sites * self.num_sites,
            "bad load matrix"
        );
        let path = self.path(src, dst);
        for hop in path.windows(2) {
            link_loads[hop[0] * self.num_sites + hop[1]] += amount;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostMatrix;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3
        let mut g = Graph::new(4).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(0, 2, 5).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        g
    }

    #[test]
    fn paths_follow_shortest_routes() {
        let g = diamond();
        let routes = Routes::from_graph(&g).unwrap();
        assert_eq!(routes.path(0, 3), vec![0, 1, 3]);
        assert_eq!(routes.path(2, 1), vec![2, 3, 1]);
        assert_eq!(routes.path(1, 1), vec![1]);
        assert_eq!(routes.next_hop(1, 1), None);
    }

    #[test]
    fn path_costs_match_the_metric() {
        let g = diamond();
        let routes = Routes::from_graph(&g).unwrap();
        let costs = CostMatrix::from_graph(&g).unwrap();
        // Edge weight lookup (min over parallel edges).
        let weight = |a: usize, b: usize| -> u64 {
            g.edges()
                .iter()
                .filter(|e| (e.a, e.b) == (a, b) || (e.a, e.b) == (b, a))
                .map(|e| e.cost)
                .min()
                .unwrap()
        };
        for i in 0..4 {
            for j in 0..4 {
                let path = routes.path(i, j);
                let total: u64 = path.windows(2).map(|h| weight(h[0], h[1])).sum();
                assert_eq!(total, costs.cost(i, j), "path {i} -> {j}");
            }
        }
    }

    #[test]
    fn disconnected_graphs_are_rejected() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        assert!(matches!(
            Routes::from_graph(&g),
            Err(NetError::Disconnected { .. })
        ));
    }

    #[test]
    fn flow_accumulates_on_every_link_of_the_path() {
        let g = diamond();
        let routes = Routes::from_graph(&g).unwrap();
        let mut loads = vec![0u64; 16];
        routes.accumulate_flow(0, 3, 10, &mut loads);
        routes.accumulate_flow(2, 3, 4, &mut loads);
        assert_eq!(loads[1], 10); // 0 -> 1 carries the first flow
        assert_eq!(loads[4 + 3], 10); // 1 -> 3
        assert_eq!(loads[2 * 4 + 3], 4); // 2 -> 3
        assert_eq!(loads.iter().sum::<u64>(), 24);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost paths 0-1-3 and 0-2-3: the lower neighbour wins.
        let mut g = Graph::new(4).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(0, 2, 1).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        let routes = Routes::from_graph(&g).unwrap();
        assert_eq!(routes.path(0, 3), vec![0, 1, 3]);
    }
}
