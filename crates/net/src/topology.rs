//! Random and regular topology generators.
//!
//! The paper's experiments (Section 6.1) use a complete graph where every
//! link cost is drawn from Uniform(1, 10) — see [`complete_uniform`]. The
//! remaining generators are reproduction extensions used to probe how the
//! algorithms behave on sparser, more structured networks (ring, line, star,
//! balanced tree, grid, Erdős–Rényi and Waxman random graphs).
//!
//! All generators take an explicit [`Rng`] so experiments are reproducible.

use rand::Rng;

use crate::{Graph, NetError, Result};

fn check_cost_range(lo: u64, hi: u64) -> Result<()> {
    if lo == 0 || hi < lo {
        return Err(NetError::BadTopologyParams {
            reason: format!("cost range [{lo}, {hi}] must satisfy 1 <= lo <= hi"),
        });
    }
    Ok(())
}

fn uniform_cost<R: Rng + ?Sized>(lo: u64, hi: u64, rng: &mut R) -> u64 {
    rng.random_range(lo..=hi)
}

/// The paper's topology: a complete graph on `m` sites with each link cost
/// drawn uniformly from `[lo, hi]` (the paper uses `[1, 10]`).
///
/// # Errors
///
/// Returns an error when `m == 0` or the cost range is invalid.
///
/// # Examples
///
/// ```
/// use drp_net::topology;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = topology::complete_uniform(5, 1, 10, &mut rng)?;
/// assert_eq!(g.num_edges(), 5 * 4 / 2);
/// # Ok::<(), drp_net::NetError>(())
/// ```
pub fn complete_uniform<R: Rng + ?Sized>(m: usize, lo: u64, hi: u64, rng: &mut R) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    let mut g = Graph::new(m)?;
    for a in 0..m {
        for b in (a + 1)..m {
            g.add_edge(a, b, uniform_cost(lo, hi, rng))?;
        }
    }
    Ok(g)
}

/// A ring of `m` sites with uniform random link costs.
///
/// # Errors
///
/// Returns an error when `m < 3` or the cost range is invalid.
pub fn ring<R: Rng + ?Sized>(m: usize, lo: u64, hi: u64, rng: &mut R) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if m < 3 {
        return Err(NetError::BadTopologyParams {
            reason: format!("a ring needs at least 3 sites, got {m}"),
        });
    }
    let mut g = Graph::new(m)?;
    for a in 0..m {
        g.add_edge(a, (a + 1) % m, uniform_cost(lo, hi, rng))?;
    }
    Ok(g)
}

/// A line (path) of `m` sites with uniform random link costs.
///
/// # Errors
///
/// Returns an error when `m < 2` or the cost range is invalid.
pub fn line<R: Rng + ?Sized>(m: usize, lo: u64, hi: u64, rng: &mut R) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if m < 2 {
        return Err(NetError::BadTopologyParams {
            reason: format!("a line needs at least 2 sites, got {m}"),
        });
    }
    let mut g = Graph::new(m)?;
    for a in 0..m - 1 {
        g.add_edge(a, a + 1, uniform_cost(lo, hi, rng))?;
    }
    Ok(g)
}

/// A star with site 0 at the hub.
///
/// # Errors
///
/// Returns an error when `m < 2` or the cost range is invalid.
pub fn star<R: Rng + ?Sized>(m: usize, lo: u64, hi: u64, rng: &mut R) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if m < 2 {
        return Err(NetError::BadTopologyParams {
            reason: format!("a star needs at least 2 sites, got {m}"),
        });
    }
    let mut g = Graph::new(m)?;
    for leaf in 1..m {
        g.add_edge(0, leaf, uniform_cost(lo, hi, rng))?;
    }
    Ok(g)
}

/// A balanced tree of `m` sites where node `i > 0` attaches to
/// `(i - 1) / arity`.
///
/// # Errors
///
/// Returns an error when `m == 0`, `arity == 0` or the cost range is invalid.
pub fn balanced_tree<R: Rng + ?Sized>(
    m: usize,
    arity: usize,
    lo: u64,
    hi: u64,
    rng: &mut R,
) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if arity == 0 {
        return Err(NetError::BadTopologyParams {
            reason: "tree arity must be positive".into(),
        });
    }
    let mut g = Graph::new(m)?;
    for child in 1..m {
        g.add_edge(child, (child - 1) / arity, uniform_cost(lo, hi, rng))?;
    }
    Ok(g)
}

/// A `rows × cols` grid with uniform random link costs.
///
/// # Errors
///
/// Returns an error when either dimension is zero or the cost range is
/// invalid.
pub fn grid<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    lo: u64,
    hi: u64,
    rng: &mut R,
) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if rows == 0 || cols == 0 {
        return Err(NetError::BadTopologyParams {
            reason: format!("grid dimensions {rows}x{cols} must be positive"),
        });
    }
    let mut g = Graph::new(rows * cols)?;
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), uniform_cost(lo, hi, rng))?;
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), uniform_cost(lo, hi, rng))?;
            }
        }
    }
    Ok(g)
}

/// A two-level "LAN clusters over a WAN backbone" topology: `clusters`
/// contiguous, near-equal groups of sites, each internally wired as a ring
/// (plus `size / 2` random chords) with link costs in `[lo, hi]`, and one
/// hub per cluster — its first site — joined to the other hubs through a
/// balanced binary tree of long-haul links costing `wan_factor` times an
/// intra-cluster draw.
///
/// This is the natural habitat of the sharded solver: intra-cluster paths
/// are cheap and plentiful, inter-cluster paths are expensive and funnel
/// through hubs, so a partition along cluster lines loses almost nothing.
///
/// # Errors
///
/// Returns an error when `m < clusters`, `clusters == 0`,
/// `wan_factor == 0`, the cost range is invalid, or `hi · wan_factor`
/// overflows.
pub fn hierarchical<R: Rng + ?Sized>(
    m: usize,
    clusters: usize,
    lo: u64,
    hi: u64,
    wan_factor: u64,
    rng: &mut R,
) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if clusters == 0 || m < clusters {
        return Err(NetError::BadTopologyParams {
            reason: format!("{m} sites cannot form {clusters} non-empty clusters"),
        });
    }
    if wan_factor == 0 || hi.checked_mul(wan_factor).is_none() {
        return Err(NetError::BadTopologyParams {
            reason: format!("wan factor {wan_factor} must be in [1, u64::MAX / hi]"),
        });
    }
    let mut g = Graph::new(m)?;
    let bound = |c: usize| c * m / clusters;
    for c in 0..clusters {
        let (start, end) = (bound(c), bound(c + 1));
        let size = end - start;
        // Ring (or single edge) keeps the cluster connected; chords give
        // Dijkstra some route diversity without densifying the graph.
        match size {
            0 | 1 => {}
            2 => g.add_edge(start, start + 1, uniform_cost(lo, hi, rng))?,
            _ => {
                for a in start..end {
                    let b = if a + 1 == end { start } else { a + 1 };
                    g.add_edge(a, b, uniform_cost(lo, hi, rng))?;
                }
            }
        }
        for _ in 0..size / 2 {
            let a = start + rng.random_range(0..size);
            let b = start + rng.random_range(0..size);
            if a != b {
                g.add_edge(a, b, uniform_cost(lo, hi, rng))?;
            }
        }
    }
    // Hub backbone: cluster c's first site attaches to cluster
    // ((c - 1) / 2)'s first site, a balanced binary tree of WAN links.
    for c in 1..clusters {
        let parent = (c - 1) / 2;
        g.add_edge(
            bound(c),
            bound(parent),
            uniform_cost(lo, hi, rng) * wan_factor,
        )?;
    }
    Ok(g)
}

/// An Erdős–Rényi random graph `G(m, p)` with uniform random link costs,
/// made connected by threading a random spanning line through all sites
/// before sampling the independent edges.
///
/// # Errors
///
/// Returns an error when `m == 0`, `p` is not in `[0, 1]`, or the cost range
/// is invalid.
pub fn erdos_renyi<R: Rng + ?Sized>(
    m: usize,
    p: f64,
    lo: u64,
    hi: u64,
    rng: &mut R,
) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(NetError::BadTopologyParams {
            reason: format!("edge probability {p} must be in [0, 1]"),
        });
    }
    let mut g = Graph::new(m)?;
    // Random spanning path guarantees connectivity.
    let mut order: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut path_edges = std::collections::HashSet::new();
    for w in order.windows(2) {
        g.add_edge(w[0], w[1], uniform_cost(lo, hi, rng))?;
        path_edges.insert((w[0].min(w[1]), w[0].max(w[1])));
    }
    for a in 0..m {
        for b in (a + 1)..m {
            if !path_edges.contains(&(a, b)) && rng.random_bool(p) {
                g.add_edge(a, b, uniform_cost(lo, hi, rng))?;
            }
        }
    }
    Ok(g)
}

/// A Waxman random graph: sites are placed uniformly in the unit square and
/// each pair is linked with probability `alpha · exp(−d / (beta · L))` where
/// `d` is Euclidean distance and `L = √2`. Link cost is the rounded distance
/// scaled into `[lo, hi]`. A random spanning path keeps the graph connected.
///
/// # Errors
///
/// Returns an error when `m == 0`, `alpha`/`beta` are not in `(0, 1]`, or the
/// cost range is invalid.
pub fn waxman<R: Rng + ?Sized>(
    m: usize,
    alpha: f64,
    beta: f64,
    lo: u64,
    hi: u64,
    rng: &mut R,
) -> Result<Graph> {
    check_cost_range(lo, hi)?;
    if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 || !(0.0..=1.0).contains(&beta) || beta == 0.0
    {
        return Err(NetError::BadTopologyParams {
            reason: format!("waxman parameters alpha={alpha}, beta={beta} must be in (0, 1]"),
        });
    }
    let mut g = Graph::new(m)?;
    let pts: Vec<(f64, f64)> = (0..m)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let max_d = std::f64::consts::SQRT_2;
    let scale = |d: f64| -> u64 {
        let span = (hi - lo) as f64;
        lo + (d / max_d * span).round() as u64
    };
    let dist = |a: usize, b: usize| -> f64 {
        let (dx, dy) = (pts[a].0 - pts[b].0, pts[a].1 - pts[b].1);
        (dx * dx + dy * dy).sqrt()
    };
    let mut linked = std::collections::HashSet::new();
    let mut order: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    for w in order.windows(2) {
        g.add_edge(w[0], w[1], scale(dist(w[0], w[1])).max(1))?;
        linked.insert((w[0].min(w[1]), w[0].max(w[1])));
    }
    for a in 0..m {
        for b in (a + 1)..m {
            if linked.contains(&(a, b)) {
                continue;
            }
            let d = dist(a, b);
            if rng.random_bool((alpha * (-d / (beta * max_d)).exp()).clamp(0.0, 1.0)) {
                g.add_edge(a, b, scale(d).max(1))?;
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn complete_has_all_edges_in_range() {
        let g = complete_uniform(10, 1, 10, &mut rng()).unwrap();
        assert_eq!(g.num_edges(), 45);
        assert!(g.edges().iter().all(|e| (1..=10).contains(&e.cost)));
        assert!(g.is_connected());
    }

    #[test]
    fn generators_reject_zero_cost_floor() {
        assert!(complete_uniform(4, 0, 10, &mut rng()).is_err());
        assert!(ring(4, 5, 2, &mut rng()).is_err());
    }

    #[test]
    fn ring_line_star_shapes() {
        let mut r = rng();
        assert_eq!(ring(6, 1, 1, &mut r).unwrap().num_edges(), 6);
        assert_eq!(line(6, 1, 1, &mut r).unwrap().num_edges(), 5);
        assert_eq!(star(6, 1, 1, &mut r).unwrap().num_edges(), 5);
        assert!(ring(2, 1, 1, &mut r).is_err());
        assert!(line(1, 1, 1, &mut r).is_err());
        assert!(star(1, 1, 1, &mut r).is_err());
    }

    #[test]
    fn tree_and_grid_are_connected() {
        let mut r = rng();
        assert!(balanced_tree(13, 3, 1, 10, &mut r).unwrap().is_connected());
        assert!(grid(4, 5, 1, 10, &mut r).unwrap().is_connected());
        assert!(balanced_tree(4, 0, 1, 10, &mut r).is_err());
        assert!(grid(0, 5, 1, 10, &mut r).is_err());
    }

    #[test]
    fn erdos_renyi_is_connected_even_at_p0() {
        let g = erdos_renyi(20, 0.0, 1, 10, &mut rng()).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 19); // exactly the spanning path
        assert!(erdos_renyi(5, 1.5, 1, 10, &mut rng()).is_err());
    }

    #[test]
    fn erdos_renyi_p1_is_complete() {
        let g = erdos_renyi(8, 1.0, 1, 10, &mut rng()).unwrap();
        assert_eq!(g.num_edges(), 8 * 7 / 2);
    }

    #[test]
    fn waxman_is_connected_and_validates() {
        let g = waxman(15, 0.8, 0.3, 1, 10, &mut rng()).unwrap();
        assert!(g.is_connected());
        assert!(g.edges().iter().all(|e| e.cost >= 1));
        assert!(waxman(5, 0.0, 0.3, 1, 10, &mut rng()).is_err());
        assert!(waxman(5, 0.5, 1.3, 1, 10, &mut rng()).is_err());
    }

    #[test]
    fn hierarchical_is_connected_with_expensive_backbone() {
        let g = hierarchical(40, 5, 1, 10, 20, &mut rng()).unwrap();
        assert!(g.is_connected());
        // Exactly clusters − 1 WAN links, each costing at least lo·factor.
        let wan: Vec<_> = g.edges().iter().filter(|e| e.cost >= 20).collect();
        assert_eq!(wan.len(), 4);
        assert!(hierarchical(3, 5, 1, 10, 20, &mut rng()).is_err());
        assert!(hierarchical(10, 0, 1, 10, 20, &mut rng()).is_err());
        assert!(hierarchical(10, 2, 1, 10, 0, &mut rng()).is_err());
        assert!(hierarchical(10, 2, 1, 10, u64::MAX, &mut rng()).is_err());
    }

    #[test]
    fn hierarchical_handles_tiny_clusters() {
        // m == clusters degenerates to a pure hub tree.
        let g = hierarchical(6, 6, 1, 10, 3, &mut rng()).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = complete_uniform(12, 1, 10, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = complete_uniform(12, 1, 10, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
