//! Zero-cost-when-disabled observability for solvers and the simulator.
//!
//! The paper evaluates SRA/GRA/AGRA through measured run behaviour —
//! solution-quality trajectories, execution time, adaptation latency — so
//! every phase boundary the paper times is bracketed with a [`Recorder`]
//! span, counter or gauge. The layer is designed around one invariant:
//! **with the [`NoopRecorder`] armed, instrumented code must behave and
//! perform exactly like un-instrumented code.** Concretely:
//!
//! * [`span`] asks the recorder [`Recorder::enabled`] once and only calls
//!   [`Instant::now`] when it answers `true`, so the noop path is a single
//!   devirtualised bool load with no clock reads;
//! * instrumentation never consumes randomness and never branches on
//!   recorder state, so seeded runs stay bitwise identical with any
//!   recorder armed;
//! * recorders are shared as `Arc<dyn Recorder>` and all methods take
//!   `&self`, so one recorder can observe concurrent workers.
//!
//! [`InMemoryRecorder`] aggregates everything into deterministic sorted
//! maps for tests and offline export; [`InMemoryRecorder::to_jsonl`]
//! serialises the aggregate as one JSON object per line.
//!
//! This module lives in `drp-net` (the bottom of the workspace dependency
//! DAG) so the simulator can use it, and is re-exported as
//! `drp_core::telemetry` for everything above.
//!
//! # Examples
//!
//! ```
//! use drp_net::telemetry::{span, InMemoryRecorder, Recorder};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(InMemoryRecorder::default());
//! for _ in 0..3 {
//!     let _guard = span(recorder.as_ref(), "work.unit");
//!     recorder.add_counter("work.items", 2);
//! }
//! assert_eq!(recorder.span_count("work.unit"), 3);
//! assert_eq!(recorder.counter("work.items"), 6);
//! assert!(recorder.to_jsonl().lines().count() >= 2);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sink for spans, counters and gauges emitted by instrumented code.
///
/// Implementations must be cheap to query: [`Recorder::enabled`] is called
/// on every hot-path span and gates all clock reads. All other methods are
/// only invoked while `enabled` returns `true` (counters and gauges are
/// gated at the call site through [`Recorder::add_counter`]'s default
/// behaviour being unconditional — callers on hot loops should check
/// `enabled` first, cooler paths may just call through).
pub trait Recorder: Send + Sync + fmt::Debug {
    /// Is this recorder collecting? `false` short-circuits span timing.
    fn enabled(&self) -> bool;

    /// A span named `name` just closed after `nanos` wall-clock nanoseconds.
    fn record_span(&self, name: &'static str, nanos: u64);

    /// Adds `delta` to the counter `name`.
    fn add_counter(&self, name: &'static str, delta: u64);

    /// Sets the gauge `name` to `value` (last write wins).
    fn set_gauge(&self, name: &'static str, value: f64);
}

/// A recorder that records nothing and reports itself disabled.
///
/// [`span`] skips the clock entirely for this recorder, so instrumented
/// hot paths cost one virtual bool load — the ≤2% overhead contract of
/// `BENCH_telemetry.json` is measured against exactly this type.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record_span(&self, _name: &'static str, _nanos: u64) {}
    fn add_counter(&self, _name: &'static str, _delta: u64) {}
    fn set_gauge(&self, _name: &'static str, _value: f64) {}
}

/// A shared no-op recorder, the default for every instrumented component.
pub fn noop() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

/// RAII guard timing one span; created by [`span`].
///
/// Records the elapsed wall-clock time on drop. When the recorder is
/// disabled no clock is read on either end.
#[derive(Debug)]
pub struct SpanGuard<'r, R: Recorder + ?Sized> {
    recorder: &'r R,
    name: &'static str,
    started: Option<Instant>,
}

/// Opens a span named `name`; the returned guard closes it on drop.
///
/// Generic over the recorder so call sites holding a concrete
/// [`NoopRecorder`] monomorphise to nothing at all, while the usual
/// `&dyn Recorder` sites pay one virtual `enabled` load when disarmed.
#[must_use = "the span closes when the guard drops; bind it with `let _guard = ...`"]
pub fn span<'r, R: Recorder + ?Sized>(recorder: &'r R, name: &'static str) -> SpanGuard<'r, R> {
    let started = recorder.enabled().then(Instant::now);
    SpanGuard {
        recorder,
        name,
        started,
    }
}

impl<R: Recorder + ?Sized> Drop for SpanGuard<'_, R> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.recorder
                .record_span(self.name, started.elapsed().as_nanos() as u64);
        }
    }
}

/// Aggregate statistics of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span closed.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// Shortest recorded duration.
    pub min_ns: u64,
    /// Longest recorded duration.
    pub max_ns: u64,
}

#[derive(Debug, Default, Clone)]
struct Store {
    spans: BTreeMap<&'static str, SpanStats>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
}

/// Thread-safe aggregating recorder for tests and trace export.
///
/// Spans are folded into per-name count/total/min/max; counters are summed;
/// gauges keep the last written value. `BTreeMap` storage keeps every
/// accessor and the JSONL export deterministically name-sorted.
#[derive(Debug, Default)]
pub struct InMemoryRecorder {
    store: Mutex<Store>,
}

impl InMemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// How many times the span `name` closed (0 if never seen).
    pub fn span_count(&self, name: &str) -> u64 {
        self.lock().spans.get(name).map_or(0, |s| s.count)
    }

    /// Aggregate stats for span `name`, if it ever closed.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        self.lock().spans.get(name).copied()
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Last value written to gauge `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// All span names seen so far, sorted.
    pub fn span_names(&self) -> Vec<&'static str> {
        self.lock().spans.keys().copied().collect()
    }

    /// Serialises the aggregate as JSON Lines, one object per line.
    ///
    /// Spans come first, then counters, then gauges, each block sorted by
    /// name, so the output is a deterministic function of the recorded
    /// aggregate:
    ///
    /// ```text
    /// {"type":"span","name":"ga.generation","count":40,"total_ns":...,"min_ns":...,"max_ns":...}
    /// {"type":"counter","name":"ga.evaluations","value":1240}
    /// {"type":"gauge","name":"gra.best_fitness","value":0.93}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let store = self.lock().clone();
        let mut out = String::new();
        for (name, s) in &store.spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}\n",
                escape(name), s.count, s.total_ns, s.min_ns, s.max_ns
            ));
        }
        for (name, v) in &store.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                v
            ));
        }
        for (name, v) in &store.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                escape(name),
                json_f64(*v)
            ));
        }
        out
    }

    /// Writes [`Self::to_jsonl`] to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())?;
        file.flush()
    }
}

impl Recorder for InMemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        let mut store = self.lock();
        store
            .spans
            .entry(name)
            .and_modify(|s| {
                s.count += 1;
                s.total_ns += nanos;
                s.min_ns = s.min_ns.min(nanos);
                s.max_ns = s.max_ns.max(nanos);
            })
            .or_insert(SpanStats {
                count: 1,
                total_ns: nanos,
                min_ns: nanos,
                max_ns: nanos,
            });
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn set_gauge(&self, name: &'static str, value: f64) {
        self.lock().gauges.insert(name, value);
    }
}

/// Minimal JSON string escaping — span names are code-chosen identifiers,
/// but a malformed export must never be possible.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity; clamp them to null-adjacent sentinels.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!` prints integral floats without a dot; both forms are
        // valid JSON numbers, so pass through as-is.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_skips_the_clock() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let guard = span(&rec, "x");
        assert!(guard.started.is_none());
    }

    #[test]
    fn spans_aggregate_count_total_min_max() {
        let rec = InMemoryRecorder::new();
        rec.record_span("phase", 5);
        rec.record_span("phase", 11);
        rec.record_span("phase", 2);
        let s = rec.span_stats("phase").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 18);
        assert_eq!(s.min_ns, 2);
        assert_eq!(s.max_ns, 11);
        assert_eq!(rec.span_count("absent"), 0);
    }

    #[test]
    fn counters_sum_and_gauges_overwrite() {
        let rec = InMemoryRecorder::new();
        rec.add_counter("c", 3);
        rec.add_counter("c", 4);
        rec.set_gauge("g", 1.5);
        rec.set_gauge("g", 2.5);
        assert_eq!(rec.counter("c"), 7);
        assert_eq!(rec.gauge("g"), Some(2.5));
        assert_eq!(rec.gauge("absent"), None);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let rec = InMemoryRecorder::new();
        {
            let _guard = span(&rec, "timed");
        }
        assert_eq!(rec.span_count("timed"), 1);
    }

    /// Golden shape test: drive the recorder with fixed values and pin the
    /// exact JSONL bytes (type order: spans, counters, gauges; each sorted
    /// by name).
    #[test]
    fn jsonl_export_has_golden_shape() {
        let rec = InMemoryRecorder::new();
        rec.record_span("b.span", 10);
        rec.record_span("a.span", 7);
        rec.record_span("a.span", 3);
        rec.add_counter("z.counter", 42);
        rec.set_gauge("m.gauge", 0.5);
        let expected = "\
{\"type\":\"span\",\"name\":\"a.span\",\"count\":2,\"total_ns\":10,\"min_ns\":3,\"max_ns\":7}
{\"type\":\"span\",\"name\":\"b.span\",\"count\":1,\"total_ns\":10,\"min_ns\":10,\"max_ns\":10}
{\"type\":\"counter\",\"name\":\"z.counter\",\"value\":42}
{\"type\":\"gauge\",\"name\":\"m.gauge\",\"value\":0.5}
";
        assert_eq!(rec.to_jsonl(), expected);
    }

    #[test]
    fn jsonl_lines_parse_as_json_objects() {
        // No serde in the workspace: check the line grammar with a tiny
        // structural scan — balanced braces, quoted keys, no raw control
        // characters.
        let rec = InMemoryRecorder::new();
        rec.record_span("s", 1);
        rec.add_counter("c", 1);
        rec.set_gauge("g", f64::NAN); // must not leak a bare NaN token
        for line in rec.to_jsonl().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        }
        assert!(rec.to_jsonl().contains("\"value\":null"));
    }

    #[test]
    fn write_jsonl_creates_parent_dirs() {
        let rec = InMemoryRecorder::new();
        rec.add_counter("c", 1);
        let dir = std::env::temp_dir().join("drp-telemetry-test");
        let path = dir.join("nested").join("trace.jsonl");
        rec.write_jsonl(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, rec.to_jsonl());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn names_are_escaped() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("quo\"te"), "quo\\\"te");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("tab\there"), "tab\\u0009here");
    }
}
