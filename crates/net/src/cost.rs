use serde::{Deserialize, Serialize};

use crate::pool::WorkerPool;
use crate::{shortest, Graph, NetError, Result};

/// The symmetric per-unit transfer cost table `C(i, j)` of the paper.
///
/// `C(i, j)` is the cumulative cost of the shortest path between sites `i`
/// and `j`; `C(i, i) = 0` and `C(i, j) = C(j, i)`. The matrix is validated on
/// construction so every algorithm downstream can index it infallibly.
///
/// # Examples
///
/// ```
/// use drp_net::{Graph, CostMatrix};
///
/// let mut g = Graph::new(3)?;
/// g.add_edge(0, 1, 2)?;
/// g.add_edge(1, 2, 3)?;
/// let c = CostMatrix::from_graph(&g)?;
/// assert_eq!(c.cost(0, 2), 5); // via site 1
/// # Ok::<(), drp_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostMatrix {
    num_sites: usize,
    /// Row-major M×M table.
    costs: Vec<u64>,
}

impl CostMatrix {
    /// Builds the matrix from explicit entries (row-major, length `M·M`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidMatrix`] when the data has the wrong
    /// length, a non-zero diagonal, an asymmetric pair, a zero off-diagonal
    /// entry, or violates the triangle inequality (shortest-path costs are
    /// metric by construction; enforcing this catches hand-built mistakes).
    pub fn from_rows(num_sites: usize, costs: Vec<u64>) -> Result<Self> {
        if num_sites == 0 {
            return Err(NetError::EmptyNetwork);
        }
        if costs.len() != num_sites * num_sites {
            return Err(NetError::InvalidMatrix {
                reason: format!(
                    "expected {} entries for {} sites, got {}",
                    num_sites * num_sites,
                    num_sites,
                    costs.len()
                ),
            });
        }
        let matrix = Self { num_sites, costs };
        matrix.validate()?;
        Ok(matrix)
    }

    /// Computes all-pairs shortest path costs of a connected graph.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if some pair of sites has no path.
    pub fn from_graph(graph: &Graph) -> Result<Self> {
        Self::from_graph_with_pool(graph, WorkerPool::global())
    }

    /// [`from_graph`](Self::from_graph) with an explicit worker pool.
    ///
    /// The result is bitwise-identical for every pool size (each source
    /// site owns one disjoint row of the matrix); benchmarks pass
    /// `WorkerPool::new(1)` to time the sequential reference.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if some pair of sites has no path.
    pub fn from_graph_with_pool(graph: &Graph, pool: &WorkerPool) -> Result<Self> {
        let m = graph.num_sites();
        let costs = shortest::all_pairs_flat(graph, pool);
        if let Some(flat) = costs.iter().position(|&c| c == shortest::UNREACHABLE) {
            return Err(NetError::Disconnected {
                pair: (flat / m, flat % m),
            });
        }
        Ok(Self {
            num_sites: m,
            costs,
        })
    }

    fn validate(&self) -> Result<()> {
        let m = self.num_sites;
        for i in 0..m {
            if self.cost(i, i) != 0 {
                return Err(NetError::InvalidMatrix {
                    reason: format!("diagonal entry ({i}, {i}) must be zero"),
                });
            }
            for j in (i + 1)..m {
                if self.cost(i, j) != self.cost(j, i) {
                    return Err(NetError::InvalidMatrix {
                        reason: format!("entries ({i}, {j}) and ({j}, {i}) differ"),
                    });
                }
                if self.cost(i, j) == 0 {
                    return Err(NetError::InvalidMatrix {
                        reason: format!("off-diagonal entry ({i}, {j}) must be positive"),
                    });
                }
            }
        }
        for k in 0..m {
            for i in 0..m {
                for j in 0..m {
                    if self.cost(i, j) > self.cost(i, k) + self.cost(k, j) {
                        return Err(NetError::InvalidMatrix {
                            reason: format!(
                                "triangle inequality violated: C({i},{j}) > C({i},{k}) + C({k},{j})"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Per-unit transfer cost `C(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn cost(&self, i: usize, j: usize) -> u64 {
        self.costs[i * self.num_sites + j]
    }

    /// Row `i` of the matrix: costs from site `i` to every site.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.costs[i * self.num_sites..(i + 1) * self.num_sites]
    }

    /// Sum of the costs from site `i` to every site (`Σ_x C(i, x)`), used by
    /// the paper's Eq. 6 "proportional link weight".
    pub fn row_sum(&self, i: usize) -> u64 {
        self.row(i).iter().sum()
    }

    /// Mean over sites of [`row_sum`](Self::row_sum):
    /// `Σ_l Σ_x C(l, x) / M`, the denominator of the Eq. 6 weight.
    pub fn mean_row_sum(&self) -> f64 {
        let total: u64 = self.costs.iter().sum();
        total as f64 / self.num_sites as f64
    }

    /// The site in `candidates` nearest to `i` (ties broken by lower index),
    /// together with the cost. Returns `None` for an empty candidate list.
    pub fn nearest_of<'a, I>(&self, i: usize, candidates: I) -> Option<(usize, u64)>
    where
        I: IntoIterator<Item = &'a usize>,
    {
        candidates
            .into_iter()
            .map(|&j| (self.cost(i, j), j))
            .min()
            .map(|(c, j)| (j, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> CostMatrix {
        // 0 -2- 1 -3- 2
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 2).unwrap();
        g.add_edge(1, 2, 3).unwrap();
        CostMatrix::from_graph(&g).unwrap()
    }

    #[test]
    fn from_graph_computes_shortest_paths() {
        let c = line3();
        assert_eq!(c.cost(0, 1), 2);
        assert_eq!(c.cost(0, 2), 5);
        assert_eq!(c.cost(2, 0), 5);
        assert_eq!(c.cost(1, 1), 0);
    }

    #[test]
    fn from_graph_rejects_disconnected() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        assert!(matches!(
            CostMatrix::from_graph(&g),
            Err(NetError::Disconnected { .. })
        ));
    }

    #[test]
    fn from_rows_validates_shape_and_symmetry() {
        assert!(CostMatrix::from_rows(2, vec![0, 1, 1]).is_err());
        assert!(CostMatrix::from_rows(2, vec![0, 1, 2, 0]).is_err()); // asymmetric
        assert!(CostMatrix::from_rows(2, vec![1, 1, 1, 0]).is_err()); // nonzero diag
        assert!(CostMatrix::from_rows(2, vec![0, 0, 0, 0]).is_err()); // zero off-diag
        assert!(CostMatrix::from_rows(2, vec![0, 4, 4, 0]).is_ok());
    }

    #[test]
    fn from_rows_enforces_triangle_inequality() {
        // C(0,2)=10 > C(0,1)+C(1,2)=2
        let bad = CostMatrix::from_rows(3, vec![0, 1, 10, 1, 0, 1, 10, 1, 0]);
        assert!(matches!(bad, Err(NetError::InvalidMatrix { .. })));
    }

    #[test]
    fn row_sums() {
        let c = line3();
        assert_eq!(c.row_sum(0), 7);
        assert_eq!(c.row_sum(1), 5);
        assert_eq!(c.row_sum(2), 8);
        let mean = c.mean_row_sum();
        assert!((mean - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_of_picks_minimum_with_tie_break() {
        let c = line3();
        let replicas = vec![0usize, 2];
        assert_eq!(c.nearest_of(1, &replicas), Some((0, 2)));
        assert_eq!(c.nearest_of(0, &replicas), Some((0, 0)));
        assert_eq!(c.nearest_of(0, &[]), None);
    }

    #[test]
    fn serde_round_trip_shape() {
        let c = line3();
        let cloned = c.clone();
        assert_eq!(c, cloned);
        assert_eq!(c.num_sites(), 3);
        assert_eq!(c.row(1), &[2, 0, 3]);
    }
}
