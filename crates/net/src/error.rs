use std::error::Error;
use std::fmt;

/// Errors produced by the network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A site index was out of range for the graph or matrix.
    SiteOutOfRange {
        /// The offending index.
        site: usize,
        /// Number of sites in the structure.
        num_sites: usize,
    },
    /// An edge was given a non-positive cost (the paper requires positive
    /// integer link costs).
    NonPositiveCost {
        /// Edge endpoints.
        endpoints: (usize, usize),
    },
    /// A self-loop edge was supplied.
    SelfLoop {
        /// The site with the loop.
        site: usize,
    },
    /// The graph is not connected, so some `C(i, j)` would be infinite.
    Disconnected {
        /// A representative unreachable pair.
        pair: (usize, usize),
    },
    /// A cost matrix failed validation.
    InvalidMatrix {
        /// Human-readable reason.
        reason: String,
    },
    /// A structure was requested with zero sites.
    EmptyNetwork,
    /// A topology generator was given inconsistent parameters.
    BadTopologyParams {
        /// Human-readable reason.
        reason: String,
    },
    /// A simulation run failed (see [`SimError`](crate::sim::SimError)).
    Sim(crate::sim::SimError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::SiteOutOfRange { site, num_sites } => {
                write!(f, "site index {site} out of range for {num_sites} sites")
            }
            NetError::NonPositiveCost { endpoints } => write!(
                f,
                "edge ({}, {}) must have a positive cost",
                endpoints.0, endpoints.1
            ),
            NetError::SelfLoop { site } => write!(f, "self-loop on site {site} is not allowed"),
            NetError::Disconnected { pair } => write!(
                f,
                "network is disconnected: no path between sites {} and {}",
                pair.0, pair.1
            ),
            NetError::InvalidMatrix { reason } => write!(f, "invalid cost matrix: {reason}"),
            NetError::EmptyNetwork => write!(f, "network must contain at least one site"),
            NetError::BadTopologyParams { reason } => {
                write!(f, "bad topology parameters: {reason}")
            }
            NetError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<NetError> = vec![
            NetError::SiteOutOfRange {
                site: 9,
                num_sites: 3,
            },
            NetError::NonPositiveCost { endpoints: (0, 1) },
            NetError::SelfLoop { site: 2 },
            NetError::Disconnected { pair: (0, 4) },
            NetError::InvalidMatrix {
                reason: "asymmetric".into(),
            },
            NetError::EmptyNetwork,
            NetError::BadTopologyParams {
                reason: "p out of range".into(),
            },
            NetError::Sim(crate::sim::SimError::EventBudgetExhausted {
                budget: 1,
                events_processed: 1,
                queue_depth: 1,
            }),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase() || msg.starts_with(char::is_numeric)
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
