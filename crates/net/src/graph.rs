use serde::{Deserialize, Serialize};

use crate::{NetError, Result};

/// An undirected weighted edge between two sites.
///
/// Costs are positive integers: the paper models `C(i, j)` as the number of
/// hops (or an additive per-hop cost) a packet needs between the sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Per-data-unit transfer cost of the link (positive).
    pub cost: u64,
}

/// An undirected weighted graph of sites.
///
/// Sites are identified by dense indices `0..num_sites`. Parallel edges are
/// permitted (shortest-path computations simply use the cheapest), self-loops
/// and non-positive costs are rejected.
///
/// # Examples
///
/// ```
/// use drp_net::Graph;
///
/// let mut g = Graph::new(3)?;
/// g.add_edge(0, 1, 4)?;
/// g.add_edge(1, 2, 2)?;
/// assert_eq!(g.num_sites(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(1).count(), 2);
/// # Ok::<(), drp_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    num_sites: usize,
    edges: Vec<Edge>,
    /// adjacency[i] lists (neighbor, cost) pairs.
    adjacency: Vec<Vec<(usize, u64)>>,
}

impl Graph {
    /// Creates an edgeless graph with `num_sites` sites.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyNetwork`] if `num_sites` is zero.
    pub fn new(num_sites: usize) -> Result<Self> {
        if num_sites == 0 {
            return Err(NetError::EmptyNetwork);
        }
        Ok(Self {
            num_sites,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_sites],
        })
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds an undirected edge with the given positive cost.
    ///
    /// # Errors
    ///
    /// * [`NetError::SiteOutOfRange`] if either endpoint is invalid.
    /// * [`NetError::SelfLoop`] if `a == b`.
    /// * [`NetError::NonPositiveCost`] if `cost == 0`.
    pub fn add_edge(&mut self, a: usize, b: usize, cost: u64) -> Result<()> {
        for &site in &[a, b] {
            if site >= self.num_sites {
                return Err(NetError::SiteOutOfRange {
                    site,
                    num_sites: self.num_sites,
                });
            }
        }
        if a == b {
            return Err(NetError::SelfLoop { site: a });
        }
        if cost == 0 {
            return Err(NetError::NonPositiveCost { endpoints: (a, b) });
        }
        self.edges.push(Edge { a, b, cost });
        self.adjacency[a].push((b, cost));
        self.adjacency[b].push((a, cost));
        Ok(())
    }

    /// Iterates over `(neighbor, cost)` pairs adjacent to `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn neighbors(&self, site: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.adjacency[site].iter().copied()
    }

    /// Returns `true` if every site can reach every other site.
    pub fn is_connected(&self) -> bool {
        self.first_unreachable().is_none()
    }

    /// Returns a representative site unreachable from site 0, if any.
    pub(crate) fn first_unreachable(&self) -> Option<usize> {
        let mut seen = vec![false; self.num_sites];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.iter().position(|&s| !s)
    }

    /// Total cost of all edges (useful as a sanity metric in tests).
    pub fn total_edge_cost(&self) -> u64 {
        self.edges.iter().map(|e| e.cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Graph::new(0).unwrap_err(), NetError::EmptyNetwork);
    }

    #[test]
    fn add_edge_validates_endpoints() {
        let mut g = Graph::new(2).unwrap();
        assert!(matches!(
            g.add_edge(0, 5, 1),
            Err(NetError::SiteOutOfRange {
                site: 5,
                num_sites: 2
            })
        ));
        assert!(matches!(
            g.add_edge(1, 1, 1),
            Err(NetError::SelfLoop { site: 1 })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0),
            Err(NetError::NonPositiveCost { endpoints: (0, 1) })
        ));
        g.add_edge(0, 1, 3).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adjacency_is_bidirectional() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 2, 7).unwrap();
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(2, 7)]);
        assert_eq!(g.neighbors(2).collect::<Vec<_>>(), vec![(0, 7)]);
        assert!(g.neighbors(1).next().is_none());
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::new(4).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        assert!(!g.is_connected());
        g.add_edge(2, 3, 1).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn single_site_graph_is_connected() {
        let g = Graph::new(1).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g = Graph::new(2).unwrap();
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(0, 1, 2).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.total_edge_cost(), 7);
    }
}
