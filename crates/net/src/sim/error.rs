use std::error::Error;
use std::fmt;

/// Errors produced by a running simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The event budget ran out with events still queued — almost always a
    /// runaway protocol (nodes echoing each other forever).
    EventBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
        /// Events dispatched over the simulator's lifetime.
        events_processed: u64,
        /// Events still queued when the budget ran out.
        queue_depth: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExhausted {
                budget,
                events_processed,
                queue_depth,
            } => write!(
                f,
                "event budget {budget} exhausted after {events_processed} events \
                 with {queue_depth} still queued"
            ),
        }
    }
}

impl Error for SimError {}

impl From<SimError> for crate::NetError {
    fn from(e: SimError) -> Self {
        crate::NetError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_numbers() {
        let e = SimError::EventBudgetExhausted {
            budget: 10,
            events_processed: 10,
            queue_depth: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("10"));
        assert!(msg.contains('3'));
    }

    #[test]
    fn converts_into_net_error() {
        let e = SimError::EventBudgetExhausted {
            budget: 1,
            events_processed: 1,
            queue_depth: 1,
        };
        assert_eq!(crate::NetError::from(e.clone()), crate::NetError::Sim(e));
    }
}
