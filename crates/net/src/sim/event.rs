use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in abstract cost units.
pub type Time = u64;

/// A scheduled occurrence inside the engine.
#[derive(Debug)]
pub(crate) struct Scheduled<P> {
    pub at: Time,
    /// Monotonic tie-breaker preserving send order.
    pub seq: u64,
    pub kind: EventKind<P>,
}

#[derive(Debug)]
pub(crate) enum EventKind<P> {
    /// A message arriving at `msg.dst`.
    Arrival(super::Message<P>),
    /// A timer set by `node` with an opaque payload.
    Timer { node: usize, payload: P },
    /// A fault-plan transition taking `site` down.
    Crash { site: usize },
    /// A fault-plan transition bringing `site` back up.
    Recover { site: usize },
}

/// Priority queue ordered by `(at, seq)` — earliest first, FIFO on ties.
#[derive(Debug)]
pub(crate) struct EventQueue<P> {
    heap: BinaryHeap<Reverse<Entry<P>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<P>(Scheduled<P>);

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

impl<P> EventQueue<P> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: Time, kind: EventKind<P>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry(Scheduled { at, seq, kind })));
    }

    pub fn pop(&mut self) -> Option<Scheduled<P>> {
        self.heap.pop().map(|Reverse(Entry(s))| s)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            5,
            EventKind::Timer {
                node: 0,
                payload: 1,
            },
        );
        q.push(
            2,
            EventKind::Timer {
                node: 0,
                payload: 2,
            },
        );
        q.push(
            5,
            EventKind::Timer {
                node: 0,
                payload: 3,
            },
        );
        assert_eq!(q.len(), 3);
        let order: Vec<(Time, u8)> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.kind {
                EventKind::Timer { payload, .. } => (s.at, payload),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![(2, 2), (5, 1), (5, 3)]);
    }
}
