/// Per-pair traffic accounting: who sent how much to whom, and at what
/// transfer cost.
///
/// Complements the aggregate [`TrafficStats`](super::TrafficStats) with the
/// `M × M` breakdown needed to find hot site pairs — e.g. which replica
/// placements concentrate update broadcasts on one region of the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMatrix {
    num_sites: usize,
    /// Row-major `M × M`: data units sent from row to column.
    data_units: Vec<u64>,
    /// Row-major `M × M`: transfer cost (units × link cost).
    cost: Vec<u64>,
}

impl TrafficMatrix {
    pub(crate) fn new(num_sites: usize) -> Self {
        Self {
            num_sites,
            data_units: vec![0; num_sites * num_sites],
            cost: vec![0; num_sites * num_sites],
        }
    }

    pub(crate) fn record(&mut self, src: usize, dst: usize, size: u64, link_cost: u64) {
        let idx = src * self.num_sites + dst;
        self.data_units[idx] += size;
        self.cost[idx] += size * link_cost;
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Data units sent from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn data_units(&self, src: usize, dst: usize) -> u64 {
        assert!(
            src < self.num_sites && dst < self.num_sites,
            "site out of range"
        );
        self.data_units[src * self.num_sites + dst]
    }

    /// Transfer cost charged to traffic from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn transfer_cost(&self, src: usize, dst: usize) -> u64 {
        assert!(
            src < self.num_sites && dst < self.num_sites,
            "site out of range"
        );
        self.cost[src * self.num_sites + dst]
    }

    /// Total data units originated by a site.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn sent_by(&self, src: usize) -> u64 {
        assert!(src < self.num_sites, "site out of range");
        self.data_units[src * self.num_sites..(src + 1) * self.num_sites]
            .iter()
            .sum()
    }

    /// Total data units received by a site.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn received_by(&self, dst: usize) -> u64 {
        assert!(dst < self.num_sites, "site out of range");
        (0..self.num_sites)
            .map(|src| self.data_units[src * self.num_sites + dst])
            .sum()
    }

    /// The `(src, dst)` pair carrying the largest transfer cost, with that
    /// cost. Returns `None` when no data moved at all.
    pub fn hottest_pair(&self) -> Option<(usize, usize, u64)> {
        let (idx, &cost) = self.cost.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        (cost > 0).then_some((idx / self.num_sites, idx % self.num_sites, cost))
    }

    /// Sum of all per-pair transfer costs (equals the aggregate
    /// [`TrafficStats::transfer_cost`](super::TrafficStats)).
    pub fn total_cost(&self) -> u64 {
        self.cost.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_aggregates() {
        let mut t = TrafficMatrix::new(3);
        t.record(0, 1, 10, 2);
        t.record(0, 1, 5, 2);
        t.record(2, 0, 1, 7);
        assert_eq!(t.data_units(0, 1), 15);
        assert_eq!(t.transfer_cost(0, 1), 30);
        assert_eq!(t.sent_by(0), 15);
        assert_eq!(t.received_by(0), 1);
        assert_eq!(t.total_cost(), 37);
        assert_eq!(t.hottest_pair(), Some((0, 1, 30)));
    }

    #[test]
    fn empty_matrix_has_no_hot_pair() {
        let t = TrafficMatrix::new(2);
        assert_eq!(t.hottest_pair(), None);
        assert_eq!(t.total_cost(), 0);
    }
}
