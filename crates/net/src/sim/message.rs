use super::Time;

/// A message in flight between two sites.
///
/// `size` is measured in the paper's simple data units: object transfers use
/// the object size, control messages use 0 and therefore contribute nothing
/// to the accounted network transfer cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message<P> {
    /// Sending site.
    pub src: usize,
    /// Receiving site.
    pub dst: usize,
    /// Payload size in data units (0 for control messages).
    pub size: u64,
    /// Simulated time at which the message was sent.
    pub sent_at: Time,
    /// Application payload.
    pub payload: P,
}
