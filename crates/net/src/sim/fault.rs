//! Deterministic fault injection for the discrete-event simulator.
//!
//! A [`FaultPlan`] is a *seeded schedule* of adverse conditions the
//! [`Simulator`](super::Simulator) consults on every send and delivery:
//!
//! * **site crashes** — half-open windows `[from, until)` during which a
//!   site is fail-stopped: it receives nothing, its timers are discarded
//!   when they fire, and effects it would produce are suppressed;
//! * **link partitions** — windows during which messages between a pair of
//!   sites (both directions) are silently dropped in transit;
//! * **message drops** — an i.i.d. per-message loss probability;
//! * **delay jitter** — a uniformly drawn extra delivery delay.
//!
//! The random components are derived with a splitmix64 hash of the plan's
//! seed and a monotonically increasing draw counter, so a given plan
//! produces *bitwise identical* simulations on every run — faults are as
//! reproducible as the fault-free engine.
//!
//! Sites follow the fail-stop-with-durable-storage model: a crashed site
//! loses in-flight messages and pending timers but keeps its local state,
//! which matches the paper's assumption that replicas survive on disk and
//! only availability is lost.

use super::event::Time;

/// One site-crash window: the site is down for `from <= t < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed site.
    pub site: usize,
    /// First instant (inclusive) the site is down.
    pub from: Time,
    /// First instant (exclusive) the site is back up.
    pub until: Time,
}

/// One link-partition window: messages between `a` and `b` (either
/// direction) sent at `from <= t < until` are lost in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// First instant (inclusive) the link is cut.
    pub from: Time,
    /// First instant (exclusive) the link is restored.
    pub until: Time,
}

/// Seeded, deterministic schedule of faults injected into a simulation.
///
/// Built fluently and handed to
/// [`Simulator::set_fault_plan`](super::Simulator::set_fault_plan):
///
/// ```
/// use drp_net::sim::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .crash(3, 100, 400)
///     .partition(0, 1, 50, 60)
///     .drop_probability(0.01)
///     .jitter(2);
/// assert!(!plan.is_up(3, 250));
/// assert!(plan.is_up(3, 400)); // windows are half-open
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<CrashWindow>,
    partitions: Vec<PartitionWindow>,
    drop_probability: f64,
    max_jitter: Time,
    draws: u64,
}

impl FaultPlan {
    /// A plan with no faults; the seed feeds the drop/jitter draws.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crashes: Vec::new(),
            partitions: Vec::new(),
            drop_probability: 0.0,
            max_jitter: 0,
            draws: 0,
        }
    }

    /// Crashes `site` for `from <= t < until`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (`from >= until`).
    pub fn crash(mut self, site: usize, from: Time, until: Time) -> Self {
        assert!(from < until, "empty crash window [{from}, {until})");
        self.crashes.push(CrashWindow { site, from, until });
        self
    }

    /// Cuts the link between `a` and `b` for `from <= t < until`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or `a == b`.
    pub fn partition(mut self, a: usize, b: usize, from: Time, until: Time) -> Self {
        assert!(from < until, "empty partition window [{from}, {until})");
        assert!(a != b, "cannot partition a site from itself");
        self.partitions.push(PartitionWindow { a, b, from, until });
        self
    }

    /// Drops each message independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.drop_probability = p;
        self
    }

    /// Adds a uniform extra delay in `0..=max_extra` to every delivery.
    pub fn jitter(mut self, max_extra: Time) -> Self {
        self.max_jitter = max_extra;
        self
    }

    /// The seed the random drop/jitter draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled crash windows, in insertion order.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The scheduled partition windows, in insertion order.
    pub fn partition_windows(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// Is `site` up at time `at`?
    pub fn is_up(&self, site: usize, at: Time) -> bool {
        !self
            .crashes
            .iter()
            .any(|w| w.site == site && w.from <= at && at < w.until)
    }

    /// Is the link between `a` and `b` open at time `at`?
    pub fn link_open(&self, a: usize, b: usize, at: Time) -> bool {
        !self.partitions.iter().any(|w| {
            ((w.a == a && w.b == b) || (w.a == b && w.b == a)) && w.from <= at && at < w.until
        })
    }

    /// The latest scheduled up/down transition — after this instant the
    /// plan never changes liveness or connectivity again. Useful for
    /// sizing repair deadlines.
    pub fn last_transition(&self) -> Time {
        let c = self.crashes.iter().map(|w| w.until).max().unwrap_or(0);
        let p = self.partitions.iter().map(|w| w.until).max().unwrap_or(0);
        c.max(p)
    }

    /// Next deterministic pseudo-random u64 (counter-mode splitmix64).
    fn next_draw(&mut self) -> u64 {
        self.draws += 1;
        splitmix64(self.seed ^ self.draws.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Decides the fate of one message sent `src -> dst` at time `at`.
    pub(crate) fn verdict(&mut self, src: usize, dst: usize, at: Time) -> Verdict {
        if !self.link_open(src, dst, at) {
            return Verdict::DropPartition;
        }
        if self.drop_probability > 0.0 {
            let u = (self.next_draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u < self.drop_probability {
                return Verdict::DropRandom;
            }
        }
        let extra = if self.max_jitter > 0 {
            let draw = self.next_draw();
            match self.max_jitter.checked_add(1) {
                Some(modulus) => draw % modulus,
                // max_jitter == Time::MAX: every u64 draw is already in
                // 0..=max_jitter, so use it directly.
                None => draw,
            }
        } else {
            0
        };
        Verdict::Deliver { extra_delay: extra }
    }
}

/// Outcome of consulting the plan for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver, possibly with extra latency.
    Deliver {
        /// Jitter added on top of the link cost.
        extra_delay: Time,
    },
    /// Lost to the i.i.d. drop probability.
    DropRandom,
    /// Lost to a link partition.
    DropPartition,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counters of what the injector actually did during a run.
///
/// All fields are deterministic for a fixed [`FaultPlan`], so they can be
/// asserted exactly in regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages lost to the i.i.d. drop probability.
    pub dropped_random: u64,
    /// Messages lost to link partitions.
    pub dropped_partition: u64,
    /// Messages that arrived at a crashed destination and were discarded.
    pub lost_arrivals: u64,
    /// Timers that fired while their owner was down and were discarded.
    pub lost_timers: u64,
    /// Send/timer effects suppressed because their origin was down.
    pub suppressed_effects: u64,
    /// Crash transitions delivered to nodes.
    pub crashes: u64,
    /// Recovery transitions delivered to nodes.
    pub recoveries: u64,
    /// Total extra delivery delay injected by jitter.
    pub extra_delay: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_windows_are_half_open() {
        let plan = FaultPlan::new(1).crash(2, 10, 20);
        assert!(plan.is_up(2, 9));
        assert!(!plan.is_up(2, 10));
        assert!(!plan.is_up(2, 19));
        assert!(plan.is_up(2, 20));
        assert!(plan.is_up(0, 15)); // other sites unaffected
    }

    #[test]
    fn partitions_cut_both_directions() {
        let plan = FaultPlan::new(1).partition(0, 1, 5, 6);
        assert!(!plan.link_open(0, 1, 5));
        assert!(!plan.link_open(1, 0, 5));
        assert!(plan.link_open(0, 1, 6));
        assert!(plan.link_open(0, 2, 5));
    }

    #[test]
    fn verdicts_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(seed).drop_probability(0.3).jitter(5);
            (0..200)
                .map(|i| plan.verdict(0, 1, i))
                .collect::<Vec<Verdict>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drop_probability_extremes() {
        let mut never = FaultPlan::new(3);
        let mut always = FaultPlan::new(3).drop_probability(1.0);
        for i in 0..50 {
            assert_eq!(never.verdict(0, 1, i), Verdict::Deliver { extra_delay: 0 });
            assert_eq!(always.verdict(0, 1, i), Verdict::DropRandom);
        }
    }

    #[test]
    fn jitter_is_bounded() {
        let mut plan = FaultPlan::new(9).jitter(4);
        for i in 0..200 {
            match plan.verdict(0, 1, i) {
                Verdict::Deliver { extra_delay } => assert!(extra_delay <= 4),
                v => panic!("unexpected verdict {v:?}"),
            }
        }
    }

    #[test]
    fn jitter_at_time_max_does_not_overflow() {
        // max_jitter + 1 used to overflow u64 (debug panic, % 0 in release).
        let mut plan = FaultPlan::new(11).jitter(Time::MAX);
        for i in 0..50 {
            match plan.verdict(0, 1, i) {
                Verdict::Deliver { .. } => {}
                v => panic!("unexpected verdict {v:?}"),
            }
        }
        // One below the boundary still goes through the modulus path.
        let mut plan = FaultPlan::new(11).jitter(Time::MAX - 1);
        match plan.verdict(0, 1, 0) {
            Verdict::Deliver { extra_delay } => assert!(extra_delay < Time::MAX),
            v => panic!("unexpected verdict {v:?}"),
        }
    }

    #[test]
    fn last_transition_covers_all_windows() {
        let plan = FaultPlan::new(0).crash(1, 5, 30).partition(0, 2, 10, 45);
        assert_eq!(plan.last_transition(), 45);
        assert_eq!(FaultPlan::new(0).last_transition(), 0);
    }

    #[test]
    #[should_panic(expected = "empty crash window")]
    fn empty_crash_window_panics() {
        let _ = FaultPlan::new(0).crash(0, 10, 10);
    }
}
