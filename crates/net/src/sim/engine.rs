use crate::{CostMatrix, NetError, Result};

use super::event::{EventKind, EventQueue, Time};
use super::message::Message;
use super::stats::TrafficStats;
use super::traffic::TrafficMatrix;

/// Behaviour of one site in the simulated network.
///
/// Implementations react to simulation start, incoming messages and their
/// own timers through the [`Context`], which is the only way to produce
/// side effects (sending messages, setting timers).
pub trait Node<P> {
    /// Invoked once, before any message is delivered.
    fn on_start(&mut self, ctx: &mut Context<'_, P>) {
        let _ = ctx;
    }

    /// Invoked when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, P>, msg: Message<P>);

    /// Invoked when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, P>, payload: P) {
        let _ = (ctx, payload);
    }
}

enum Effect<P> {
    Send { dst: usize, size: u64, payload: P },
    Timer { delay: Time, payload: P },
}

/// Handle through which a [`Node`] interacts with the simulation.
pub struct Context<'a, P> {
    node: usize,
    now: Time,
    num_sites: usize,
    effects: &'a mut Vec<Effect<P>>,
}

impl<P> std::fmt::Debug for Context<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("node", &self.node)
            .field("now", &self.now)
            .field("num_sites", &self.num_sites)
            .finish()
    }
}

impl<P> Context<'_, P> {
    /// The id of the node this context belongs to.
    pub fn node_id(&self) -> usize {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of sites in the network.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Sends `size` data units with `payload` to `dst`.
    ///
    /// Delivery happens at `now + C(self, dst)` and the transfer is charged
    /// `size · C(self, dst)` NTC. Sending to self delivers on the next
    /// dispatch round at the current time (cost 0).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range (checked when the effect is applied).
    pub fn send(&mut self, dst: usize, size: u64, payload: P) {
        self.effects.push(Effect::Send { dst, size, payload });
    }

    /// Schedules `payload` to be delivered back to this node via
    /// [`Node::on_timer`] after `delay` time units.
    pub fn set_timer(&mut self, delay: Time, payload: P) {
        self.effects.push(Effect::Timer { delay, payload });
    }
}

/// Deterministic discrete-event simulator over a [`CostMatrix`].
///
/// See the [module documentation](crate::sim) for an example.
pub struct Simulator<P> {
    costs: CostMatrix,
    nodes: Vec<Box<dyn Node<P>>>,
    queue: EventQueue<P>,
    stats: TrafficStats,
    traffic: TrafficMatrix,
    now: Time,
    started: bool,
    events_processed: u64,
}

impl<P> std::fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("num_sites", &self.costs.num_sites())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<P> Simulator<P> {
    /// Creates a simulator with one [`Node`] per site.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadTopologyParams`] if the number of nodes does
    /// not match the number of sites in `costs`.
    pub fn new(costs: CostMatrix, nodes: Vec<Box<dyn Node<P>>>) -> Result<Self> {
        if nodes.len() != costs.num_sites() {
            return Err(NetError::BadTopologyParams {
                reason: format!(
                    "{} nodes supplied for {} sites",
                    nodes.len(),
                    costs.num_sites()
                ),
            });
        }
        let num_sites = costs.num_sites();
        Ok(Self {
            costs,
            nodes,
            queue: EventQueue::new(),
            stats: TrafficStats::default(),
            traffic: TrafficMatrix::new(num_sites),
            now: 0,
            started: false,
            events_processed: 0,
        })
    }

    /// Traffic accounting so far.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Per-site-pair traffic breakdown.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a node, for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &dyn Node<P> {
        self.nodes[id].as_ref()
    }

    fn apply_effects(&mut self, origin: usize, effects: Vec<Effect<P>>) {
        for effect in effects {
            match effect {
                Effect::Send { dst, size, payload } => {
                    assert!(
                        dst < self.costs.num_sites(),
                        "destination {dst} out of range"
                    );
                    let c = self.costs.cost(origin, dst);
                    self.stats.record(size, c);
                    self.traffic.record(origin, dst, size, c);
                    self.queue.push(
                        self.now + c,
                        EventKind::Arrival(Message {
                            src: origin,
                            dst,
                            size,
                            sent_at: self.now,
                            payload,
                        }),
                    );
                }
                Effect::Timer { delay, payload } => {
                    self.queue.push(
                        self.now + delay,
                        EventKind::Timer {
                            node: origin,
                            payload,
                        },
                    );
                }
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.nodes.len() {
            let mut effects = Vec::new();
            let mut ctx = Context {
                node: id,
                now: self.now,
                num_sites: self.costs.num_sites(),
                effects: &mut effects,
            };
            self.nodes[id].on_start(&mut ctx);
            self.apply_effects(id, effects);
        }
    }

    /// Dispatches a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.now, "time must be monotone");
        self.now = scheduled.at;
        self.events_processed += 1;
        let mut effects = Vec::new();
        match scheduled.kind {
            EventKind::Arrival(msg) => {
                let dst = msg.dst;
                let mut ctx = Context {
                    node: dst,
                    now: self.now,
                    num_sites: self.costs.num_sites(),
                    effects: &mut effects,
                };
                self.nodes[dst].on_message(&mut ctx, msg);
                self.apply_effects(dst, effects);
            }
            EventKind::Timer { node, payload } => {
                self.stats.timers += 1;
                let mut ctx = Context {
                    node,
                    now: self.now,
                    num_sites: self.costs.num_sites(),
                    effects: &mut effects,
                };
                self.nodes[node].on_timer(&mut ctx, payload);
                self.apply_effects(node, effects);
            }
        }
        true
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadTopologyParams`] after 100 million events as a
    /// runaway-protocol guard.
    pub fn run_to_completion(&mut self) -> Result<()> {
        self.run_for_events(100_000_000)
    }

    /// Runs until no events remain or `max_events` have been dispatched.
    ///
    /// # Errors
    ///
    /// Returns an error if the budget is exhausted with events still queued.
    pub fn run_for_events(&mut self, max_events: u64) -> Result<()> {
        let mut budget = max_events;
        while budget > 0 {
            if !self.step() {
                return Ok(());
            }
            budget -= 1;
        }
        if self.queue.len() > 0 {
            return Err(NetError::BadTopologyParams {
                reason: format!("event budget {max_events} exhausted with events pending"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Hello,
        Echo,
        Tick,
    }

    #[derive(Default)]
    struct Client {
        replies: u32,
    }
    #[derive(Default)]
    struct Server {
        seen: u32,
    }

    impl Node<P> for Client {
        fn on_start(&mut self, ctx: &mut Context<'_, P>) {
            ctx.send(1, 5, P::Hello);
            ctx.set_timer(100, P::Tick);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, P>, msg: Message<P>) {
            assert_eq!(msg.payload, P::Echo);
            self.replies += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, P>, payload: P) {
            assert_eq!(payload, P::Tick);
        }
    }

    impl Node<P> for Server {
        fn on_message(&mut self, ctx: &mut Context<'_, P>, msg: Message<P>) {
            self.seen += 1;
            ctx.send(msg.src, 0, P::Echo);
        }
    }

    fn two_site_costs() -> CostMatrix {
        CostMatrix::from_rows(2, vec![0, 4, 4, 0]).unwrap()
    }

    #[test]
    fn request_reply_accounts_only_data_traffic() {
        let mut sim = Simulator::new(
            two_site_costs(),
            vec![Box::new(Client::default()), Box::new(Server::default())],
        )
        .unwrap();
        sim.run_to_completion().unwrap();
        let stats = sim.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.data_units, 5);
        assert_eq!(stats.transfer_cost, 20); // 5 units × C=4; the echo is free
        assert_eq!(stats.timers, 1);
        assert_eq!(sim.now(), 100); // the timer is the last event
    }

    #[test]
    fn node_count_must_match_sites() {
        let err = Simulator::<P>::new(two_site_costs(), vec![Box::new(Client::default())]);
        assert!(err.is_err());
    }

    #[test]
    fn latency_is_link_cost() {
        struct Probe;
        struct Sink {
            arrived_at: Option<Time>,
        }
        impl Node<()> for Probe {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(1, 1, ());
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _msg: Message<()>) {}
        }
        impl Node<()> for Sink {
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, msg: Message<()>) {
                assert_eq!(msg.sent_at, 0);
                self.arrived_at = Some(ctx.now());
            }
        }
        let mut sim = Simulator::new(
            two_site_costs(),
            vec![Box::new(Probe), Box::new(Sink { arrived_at: None })],
        )
        .unwrap();
        sim.run_to_completion().unwrap();
        assert_eq!(sim.now(), 4);
    }

    #[test]
    fn event_budget_guards_runaway_protocols() {
        struct Looper;
        impl Node<()> for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(1, 1, ());
            }
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, msg: Message<()>) {
                ctx.send(msg.src, 1, ());
            }
        }
        let mut sim =
            Simulator::new(two_site_costs(), vec![Box::new(Looper), Box::new(Looper)]).unwrap();
        assert!(sim.run_for_events(10).is_err());
    }

    #[test]
    fn step_returns_false_when_idle() {
        struct Quiet;
        impl Node<()> for Quiet {
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _msg: Message<()>) {}
        }
        let mut sim =
            Simulator::new(two_site_costs(), vec![Box::new(Quiet), Box::new(Quiet)]).unwrap();
        assert!(!sim.step());
        assert_eq!(sim.events_processed(), 0);
    }
}
