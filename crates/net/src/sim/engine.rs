use std::sync::Arc;

use crate::telemetry::{self, Recorder};
use crate::{CostMatrix, NetError, Result};

use super::error::SimError;
use super::event::{EventKind, EventQueue, Time};
use super::fault::{FaultPlan, FaultStats, Verdict};
use super::message::Message;
use super::stats::TrafficStats;
use super::traffic::TrafficMatrix;

/// Behaviour of one site in the simulated network.
///
/// Implementations react to simulation start, incoming messages and their
/// own timers through the [`Context`], which is the only way to produce
/// side effects (sending messages, setting timers).
pub trait Node<P> {
    /// Invoked once, before any message is delivered.
    fn on_start(&mut self, ctx: &mut Context<'_, P>) {
        let _ = ctx;
    }

    /// Invoked when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, P>, msg: Message<P>);

    /// Invoked when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, P>, payload: P) {
        let _ = (ctx, payload);
    }

    /// Invoked when a [`FaultPlan`] crashes this node. The node is already
    /// down: any sends or timers it produces here are suppressed. Volatile
    /// state (pending requests) should be written off here; durable state
    /// (stored replicas) survives.
    fn on_crash(&mut self, ctx: &mut Context<'_, P>) {
        let _ = ctx;
    }

    /// Invoked when a [`FaultPlan`] brings this node back up. Effects
    /// produced here flow normally — the usual place to re-arm timers.
    fn on_recover(&mut self, ctx: &mut Context<'_, P>) {
        let _ = ctx;
    }
}

enum Effect<P> {
    Send { dst: usize, size: u64, payload: P },
    Timer { delay: Time, payload: P },
}

/// Handle through which a [`Node`] interacts with the simulation.
pub struct Context<'a, P> {
    node: usize,
    now: Time,
    num_sites: usize,
    faults: Option<&'a FaultPlan>,
    effects: &'a mut Vec<Effect<P>>,
}

impl<P> std::fmt::Debug for Context<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("node", &self.node)
            .field("now", &self.now)
            .field("num_sites", &self.num_sites)
            .finish()
    }
}

impl<P> Context<'_, P> {
    /// The id of the node this context belongs to.
    pub fn node_id(&self) -> usize {
        self.node
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of sites in the network.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Is `site` currently up? Always `true` without a fault plan.
    ///
    /// This is an oracle (perfect failure detector): protocol drivers like
    /// the repair coordinator may consult it, while message-level code can
    /// ignore it and rely on timeouts alone.
    pub fn is_up(&self, site: usize) -> bool {
        self.faults.is_none_or(|p| p.is_up(site, self.now))
    }

    /// Sends `size` data units with `payload` to `dst`.
    ///
    /// Delivery happens at `now + C(self, dst)` and the transfer is charged
    /// `size · C(self, dst)` NTC. Sending to self delivers on the next
    /// dispatch round at the current time (cost 0). Under a fault plan the
    /// message may be dropped or delayed; NTC is charged for every
    /// transmitted message, delivered or not, except those suppressed at a
    /// down origin or blocked by a partition at the source.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range (checked when the effect is applied).
    pub fn send(&mut self, dst: usize, size: u64, payload: P) {
        self.effects.push(Effect::Send { dst, size, payload });
    }

    /// Schedules `payload` to be delivered back to this node via
    /// [`Node::on_timer`] after `delay` time units.
    ///
    /// Under a fault plan a timer that fires while its owner is down is
    /// discarded — nodes re-arm what they need in
    /// [`Node::on_recover`].
    pub fn set_timer(&mut self, delay: Time, payload: P) {
        self.effects.push(Effect::Timer { delay, payload });
    }
}

/// Deterministic discrete-event simulator over a [`CostMatrix`].
///
/// See the [module documentation](crate::sim) for an example.
pub struct Simulator<'a, P> {
    costs: &'a CostMatrix,
    nodes: Vec<Box<dyn Node<P> + 'a>>,
    queue: EventQueue<P>,
    stats: TrafficStats,
    traffic: TrafficMatrix,
    faults: Option<FaultPlan>,
    fault_stats: FaultStats,
    now: Time,
    started: bool,
    events_processed: u64,
    recorder: Arc<dyn Recorder>,
    /// `recorder.enabled()`, cached so the event loop never pays a virtual
    /// call per event when telemetry is off.
    rec_enabled: bool,
}

impl<P> std::fmt::Debug for Simulator<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("num_sites", &self.costs.num_sites())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl<'a, P> Simulator<'a, P> {
    /// Creates a simulator with one [`Node`] per site.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadTopologyParams`] if the number of nodes does
    /// not match the number of sites in `costs`.
    pub fn new(costs: &'a CostMatrix, nodes: Vec<Box<dyn Node<P> + 'a>>) -> Result<Self> {
        if nodes.len() != costs.num_sites() {
            return Err(NetError::BadTopologyParams {
                reason: format!(
                    "{} nodes supplied for {} sites",
                    nodes.len(),
                    costs.num_sites()
                ),
            });
        }
        let num_sites = costs.num_sites();
        Ok(Self {
            costs,
            nodes,
            queue: EventQueue::new(),
            stats: TrafficStats::default(),
            traffic: TrafficMatrix::new(num_sites),
            faults: None,
            fault_stats: FaultStats::default(),
            now: 0,
            started: false,
            events_processed: 0,
            recorder: telemetry::noop(),
            rec_enabled: false,
        })
    }

    /// Attaches a telemetry recorder. Each [`run_for_events`] /
    /// [`run_to_completion`] call closes a `sim.run` span and publishes
    /// what that run did as counters: `sim.events`, `sim.messages`,
    /// `sim.data_units`, `sim.transfer_cost`, `sim.timers` and the
    /// [`FaultStats`] breakdown (`fault.dropped_random`,
    /// `fault.dropped_partition`, `fault.lost_arrivals`,
    /// `fault.lost_timers`, `fault.suppressed_effects`, `fault.crashes`,
    /// `fault.recoveries`, `fault.extra_delay`). The per-event hot loop is
    /// untouched, so an armed [`NoopRecorder`](telemetry::NoopRecorder)
    /// costs nothing.
    ///
    /// [`run_for_events`]: Self::run_for_events
    /// [`run_to_completion`]: Self::run_to_completion
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.rec_enabled = recorder.enabled();
        self.recorder = recorder;
    }

    /// Arms a [`FaultPlan`]: crash/recover transitions are scheduled as
    /// events and every send/delivery consults the plan from then on.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already started, or if a window names
    /// a site out of range.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            !self.started,
            "fault plan must be set before the first step"
        );
        for w in plan.crash_windows() {
            assert!(
                w.site < self.costs.num_sites(),
                "crash window site {} out of range",
                w.site
            );
        }
        for w in plan.partition_windows() {
            assert!(
                w.a < self.costs.num_sites() && w.b < self.costs.num_sites(),
                "partition window ({}, {}) out of range",
                w.a,
                w.b
            );
        }
        self.faults = Some(plan);
    }

    /// Traffic accounting so far.
    pub fn stats(&self) -> TrafficStats {
        self.stats
    }

    /// Per-site-pair traffic breakdown.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// What the fault injector did so far (all zeros without a plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a node, for post-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &(dyn Node<P> + 'a) {
        self.nodes[id].as_ref()
    }

    fn apply_effects(&mut self, origin: usize, effects: Vec<Effect<P>>) {
        // A crashed origin produces nothing: its sends never reach the wire
        // and its timers are not armed.
        if let Some(plan) = &self.faults {
            if !plan.is_up(origin, self.now) {
                self.fault_stats.suppressed_effects += effects.len() as u64;
                return;
            }
        }
        for effect in effects {
            match effect {
                Effect::Send { dst, size, payload } => {
                    assert!(
                        dst < self.costs.num_sites(),
                        "destination {dst} out of range"
                    );
                    let c = self.costs.cost(origin, dst);
                    let extra = match &mut self.faults {
                        Some(plan) => match plan.verdict(origin, dst, self.now) {
                            Verdict::Deliver { extra_delay } => {
                                self.fault_stats.extra_delay += extra_delay;
                                extra_delay
                            }
                            Verdict::DropRandom => {
                                // The message was transmitted and lost in
                                // flight: the bandwidth is spent.
                                self.stats.record(size, c);
                                self.traffic.record(origin, dst, size, c);
                                self.fault_stats.dropped_random += 1;
                                continue;
                            }
                            Verdict::DropPartition => {
                                // Blocked at the cut: nothing crosses the
                                // link, so no NTC is charged.
                                self.fault_stats.dropped_partition += 1;
                                continue;
                            }
                        },
                        None => 0,
                    };
                    self.stats.record(size, c);
                    self.traffic.record(origin, dst, size, c);
                    self.queue.push(
                        self.now + c + extra,
                        EventKind::Arrival(Message {
                            src: origin,
                            dst,
                            size,
                            sent_at: self.now,
                            payload,
                        }),
                    );
                }
                Effect::Timer { delay, payload } => {
                    self.queue.push(
                        self.now + delay,
                        EventKind::Timer {
                            node: origin,
                            payload,
                        },
                    );
                }
            }
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Crash/recover transitions enter the queue first, so at equal
        // times a transition is dispatched before any message arrival.
        if let Some(plan) = &self.faults {
            for w in plan.crash_windows() {
                self.queue.push(w.from, EventKind::Crash { site: w.site });
                self.queue
                    .push(w.until, EventKind::Recover { site: w.site });
            }
        }
        for id in 0..self.nodes.len() {
            let mut effects = Vec::new();
            let mut ctx = Context {
                node: id,
                now: self.now,
                num_sites: self.costs.num_sites(),
                faults: self.faults.as_ref(),
                effects: &mut effects,
            };
            self.nodes[id].on_start(&mut ctx);
            self.apply_effects(id, effects);
        }
    }

    /// Dispatches a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.now, "time must be monotone");
        self.now = scheduled.at;
        self.events_processed += 1;
        let mut effects = Vec::new();
        let num_sites = self.costs.num_sites();
        match scheduled.kind {
            EventKind::Arrival(msg) => {
                let dst = msg.dst;
                if let Some(plan) = &self.faults {
                    if !plan.is_up(dst, self.now) {
                        self.fault_stats.lost_arrivals += 1;
                        return true;
                    }
                }
                let mut ctx = Context {
                    node: dst,
                    now: self.now,
                    num_sites,
                    faults: self.faults.as_ref(),
                    effects: &mut effects,
                };
                self.nodes[dst].on_message(&mut ctx, msg);
                self.apply_effects(dst, effects);
            }
            EventKind::Timer { node, payload } => {
                if let Some(plan) = &self.faults {
                    if !plan.is_up(node, self.now) {
                        self.fault_stats.lost_timers += 1;
                        return true;
                    }
                }
                self.stats.timers += 1;
                let mut ctx = Context {
                    node,
                    now: self.now,
                    num_sites,
                    faults: self.faults.as_ref(),
                    effects: &mut effects,
                };
                self.nodes[node].on_timer(&mut ctx, payload);
                self.apply_effects(node, effects);
            }
            EventKind::Crash { site } => {
                self.fault_stats.crashes += 1;
                let mut ctx = Context {
                    node: site,
                    now: self.now,
                    num_sites,
                    faults: self.faults.as_ref(),
                    effects: &mut effects,
                };
                self.nodes[site].on_crash(&mut ctx);
                self.apply_effects(site, effects);
            }
            EventKind::Recover { site } => {
                self.fault_stats.recoveries += 1;
                let mut ctx = Context {
                    node: site,
                    now: self.now,
                    num_sites,
                    faults: self.faults.as_ref(),
                    effects: &mut effects,
                };
                self.nodes[site].on_recover(&mut ctx);
                self.apply_effects(site, effects);
            }
        }
        true
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] after 100 million events
    /// as a runaway-protocol guard.
    pub fn run_to_completion(&mut self) -> std::result::Result<(), SimError> {
        self.run_for_events(100_000_000)
    }

    /// Runs until no events remain or `max_events` have been dispatched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if the budget runs out
    /// with events still queued.
    pub fn run_for_events(&mut self, max_events: u64) -> std::result::Result<(), SimError> {
        let before_events = self.events_processed;
        let before_stats = self.stats;
        let before_faults = self.fault_stats;
        // Cloning the handle keeps the guard's borrow off `self` so the
        // loop below can take `&mut self`.
        let recorder = Arc::clone(&self.recorder);
        let _span = telemetry::span(recorder.as_ref(), "sim.run");
        let mut budget = max_events;
        let result = loop {
            if budget == 0 {
                if self.queue.len() > 0 {
                    break Err(SimError::EventBudgetExhausted {
                        budget: max_events,
                        events_processed: self.events_processed,
                        queue_depth: self.queue.len(),
                    });
                }
                break Ok(());
            }
            if !self.step() {
                break Ok(());
            }
            budget -= 1;
        };
        if self.rec_enabled {
            self.publish_run_counters(before_events, before_stats, before_faults);
        }
        result
    }

    /// Publishes what the just-finished run did, as counter deltas against
    /// the snapshots taken at its start (runs are resumable, so lifetime
    /// totals would double-count across calls).
    fn publish_run_counters(&self, events: u64, stats: TrafficStats, faults: FaultStats) {
        let rec = self.recorder.as_ref();
        rec.add_counter("sim.events", self.events_processed - events);
        rec.add_counter("sim.messages", self.stats.messages - stats.messages);
        rec.add_counter("sim.data_units", self.stats.data_units - stats.data_units);
        rec.add_counter(
            "sim.transfer_cost",
            self.stats.transfer_cost - stats.transfer_cost,
        );
        rec.add_counter("sim.timers", self.stats.timers - stats.timers);
        let f = self.fault_stats;
        rec.add_counter(
            "fault.dropped_random",
            f.dropped_random - faults.dropped_random,
        );
        rec.add_counter(
            "fault.dropped_partition",
            f.dropped_partition - faults.dropped_partition,
        );
        rec.add_counter(
            "fault.lost_arrivals",
            f.lost_arrivals - faults.lost_arrivals,
        );
        rec.add_counter("fault.lost_timers", f.lost_timers - faults.lost_timers);
        rec.add_counter(
            "fault.suppressed_effects",
            f.suppressed_effects - faults.suppressed_effects,
        );
        rec.add_counter("fault.crashes", f.crashes - faults.crashes);
        rec.add_counter("fault.recoveries", f.recoveries - faults.recoveries);
        rec.add_counter("fault.extra_delay", f.extra_delay - faults.extra_delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    #[derive(Debug, Clone, PartialEq)]
    enum P {
        Hello,
        Echo,
        Tick,
    }

    #[derive(Default)]
    struct Client {
        replies: u32,
    }
    #[derive(Default)]
    struct Server {
        seen: u32,
    }

    impl Node<P> for Client {
        fn on_start(&mut self, ctx: &mut Context<'_, P>) {
            ctx.send(1, 5, P::Hello);
            ctx.set_timer(100, P::Tick);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, P>, msg: Message<P>) {
            assert_eq!(msg.payload, P::Echo);
            self.replies += 1;
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, P>, payload: P) {
            assert_eq!(payload, P::Tick);
        }
    }

    impl Node<P> for Server {
        fn on_message(&mut self, ctx: &mut Context<'_, P>, msg: Message<P>) {
            self.seen += 1;
            ctx.send(msg.src, 0, P::Echo);
        }
    }

    fn two_site_costs() -> Result<CostMatrix> {
        CostMatrix::from_rows(2, vec![0, 4, 4, 0])
    }

    #[test]
    fn request_reply_accounts_only_data_traffic() -> TestResult {
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![Box::new(Client::default()), Box::new(Server::default())],
        )?;
        sim.run_to_completion()?;
        let stats = sim.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.data_units, 5);
        assert_eq!(stats.transfer_cost, 20); // 5 units × C=4; the echo is free
        assert_eq!(stats.timers, 1);
        assert_eq!(sim.now(), 100); // the timer is the last event
        Ok(())
    }

    #[test]
    fn node_count_must_match_sites() -> TestResult {
        let costs = two_site_costs()?;
        let err = Simulator::<P>::new(&costs, vec![Box::new(Client::default())]);
        assert!(err.is_err());
        Ok(())
    }

    #[test]
    fn latency_is_link_cost() -> TestResult {
        struct Probe;
        struct Sink {
            arrived_at: Option<Time>,
        }
        impl Node<()> for Probe {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(1, 1, ());
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _msg: Message<()>) {}
        }
        impl Node<()> for Sink {
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, msg: Message<()>) {
                assert_eq!(msg.sent_at, 0);
                self.arrived_at = Some(ctx.now());
            }
        }
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![Box::new(Probe), Box::new(Sink { arrived_at: None })],
        )?;
        sim.run_to_completion()?;
        assert_eq!(sim.now(), 4);
        Ok(())
    }

    #[test]
    fn event_budget_error_is_typed_and_counted() -> TestResult {
        struct Looper;
        impl Node<()> for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
                ctx.send(1, 1, ());
            }
            fn on_message(&mut self, ctx: &mut Context<'_, ()>, msg: Message<()>) {
                ctx.send(msg.src, 1, ());
            }
        }
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(&costs, vec![Box::new(Looper), Box::new(Looper)])?;
        match sim.run_for_events(10) {
            Err(SimError::EventBudgetExhausted {
                budget,
                events_processed,
                queue_depth,
            }) => {
                assert_eq!(budget, 10);
                assert_eq!(events_processed, 10);
                assert!(queue_depth > 0);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn step_returns_false_when_idle() -> TestResult {
        struct Quiet;
        impl Node<()> for Quiet {
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _msg: Message<()>) {}
        }
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(&costs, vec![Box::new(Quiet), Box::new(Quiet)])?;
        assert!(!sim.step());
        assert_eq!(sim.events_processed(), 0);
        Ok(())
    }

    /// A node that sends one message per timer tick, forever (bounded by
    /// the tick count), to probe fault semantics.
    struct Ticker {
        peer: usize,
        ticks: u64,
        got: u64,
        crashes_seen: u64,
        recoveries_seen: u64,
    }

    impl Ticker {
        fn new(peer: usize, ticks: u64) -> Self {
            Self {
                peer,
                ticks,
                got: 0,
                crashes_seen: 0,
                recoveries_seen: 0,
            }
        }
    }

    impl Node<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if self.ticks > 0 {
                ctx.set_timer(1, 0);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _msg: Message<u64>) {
            self.got += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, tick: u64) {
            ctx.send(self.peer, 1, tick);
            if tick + 1 < self.ticks {
                ctx.set_timer(1, tick + 1);
            }
        }
        fn on_crash(&mut self, _ctx: &mut Context<'_, u64>) {
            self.crashes_seen += 1;
        }
        fn on_recover(&mut self, ctx: &mut Context<'_, u64>) {
            self.recoveries_seen += 1;
            // Re-arm the tick chain that died with the crash.
            if self.ticks > 0 {
                ctx.set_timer(1, self.ticks - 1);
            }
        }
    }

    #[test]
    fn crashed_destination_loses_arrivals() -> TestResult {
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![
                Box::new(Ticker::new(1, 10)),
                Box::new(Ticker::new(0, 0)), // silent peer
            ],
        )?;
        // Node 1 is down for the whole run.
        sim.set_fault_plan(FaultPlan::new(0).crash(1, 0, 1_000));
        sim.run_to_completion()?;
        let fs = sim.fault_stats();
        assert_eq!(fs.lost_arrivals, 10);
        assert_eq!(fs.crashes, 1);
        assert_eq!(fs.recoveries, 1);
        // NTC is still charged for transmitted-but-undelivered messages.
        assert_eq!(sim.stats().data_units, 10);
        Ok(())
    }

    #[test]
    fn crash_suppresses_timers_and_effects_until_recovery() -> TestResult {
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![Box::new(Ticker::new(1, 1_000)), Box::new(Ticker::new(0, 0))],
        )?;
        // Node 0 crashes mid-run and recovers: its tick chain stops (the
        // pending timer is lost) and restarts from on_recover, which sends
        // exactly one more message.
        sim.set_fault_plan(FaultPlan::new(0).crash(0, 5, 10));
        sim.run_to_completion()?;
        let fs = sim.fault_stats();
        assert_eq!(fs.crashes, 1);
        assert_eq!(fs.recoveries, 1);
        assert_eq!(fs.lost_timers, 1); // the chain dies exactly once
                                       // Ticks at t=1..=5 each send one message; the t=5 tick fires after
                                       // the crash (transition first on ties) and is lost. After recovery
                                       // at t=10 the re-armed chain sends its single final message.
        assert_eq!(sim.stats().data_units, 4 + 1);
        Ok(())
    }

    #[test]
    fn partitions_block_without_charging() -> TestResult {
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![Box::new(Ticker::new(1, 5)), Box::new(Ticker::new(0, 0))],
        )?;
        sim.set_fault_plan(FaultPlan::new(0).partition(0, 1, 0, 1_000));
        sim.run_to_completion()?;
        assert_eq!(sim.fault_stats().dropped_partition, 5);
        assert_eq!(sim.stats().data_units, 0);
        assert_eq!(sim.stats().transfer_cost, 0);
        Ok(())
    }

    #[test]
    fn jitter_delays_but_delivers_everything() -> TestResult {
        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![Box::new(Ticker::new(1, 8)), Box::new(Ticker::new(0, 0))],
        )?;
        sim.set_fault_plan(FaultPlan::new(11).jitter(9));
        sim.run_to_completion()?;
        assert_eq!(sim.stats().data_units, 8);
        Ok(())
    }

    #[test]
    fn recorder_publishes_event_and_fault_counters() -> TestResult {
        use crate::telemetry::InMemoryRecorder;

        let costs = two_site_costs()?;
        let mut sim = Simulator::new(
            &costs,
            vec![Box::new(Ticker::new(1, 10)), Box::new(Ticker::new(0, 0))],
        )?;
        sim.set_fault_plan(FaultPlan::new(0).crash(1, 0, 1_000));
        let recorder = Arc::new(InMemoryRecorder::new());
        sim.set_recorder(recorder.clone());
        sim.run_to_completion()?;
        assert_eq!(recorder.span_count("sim.run"), 1);
        assert_eq!(recorder.counter("sim.events"), sim.events_processed());
        assert_eq!(recorder.counter("sim.data_units"), sim.stats().data_units);
        assert_eq!(
            recorder.counter("fault.lost_arrivals"),
            sim.fault_stats().lost_arrivals
        );
        assert_eq!(recorder.counter("fault.crashes"), 1);
        // A second (empty) run adds a span but no new events.
        sim.run_to_completion()?;
        assert_eq!(recorder.span_count("sim.run"), 2);
        assert_eq!(recorder.counter("sim.events"), sim.events_processed());
        Ok(())
    }

    #[test]
    fn identical_plans_give_identical_runs() -> TestResult {
        let run = |seed: u64| -> Result<(TrafficStats, FaultStats, Time)> {
            let costs = two_site_costs()?;
            let mut sim = Simulator::new(
                &costs,
                vec![Box::new(Ticker::new(1, 50)), Box::new(Ticker::new(0, 50))],
            )?;
            sim.set_fault_plan(
                FaultPlan::new(seed)
                    .crash(1, 20, 30)
                    .drop_probability(0.2)
                    .jitter(3),
            );
            sim.run_for_events(100_000).ok();
            Ok((sim.stats(), sim.fault_stats(), sim.now()))
        };
        assert_eq!(run(5)?, run(5)?);
        Ok(())
    }
}
