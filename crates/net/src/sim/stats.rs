/// Aggregate traffic accounting for a simulation run.
///
/// `transfer_cost` is the quantity the paper's algorithms minimize: the sum
/// over all messages of `size · C(src, dst)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages sent (including zero-size control messages).
    pub messages: u64,
    /// Data units moved (Σ size).
    pub data_units: u64,
    /// Network transfer cost (Σ size · C(src, dst)).
    pub transfer_cost: u64,
    /// Timer events fired.
    pub timers: u64,
}

impl TrafficStats {
    /// Records one message of `size` data units over a link of cost `c`.
    pub(crate) fn record(&mut self, size: u64, c: u64) {
        self.messages += 1;
        self.data_units += size;
        self.transfer_cost += size * c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = TrafficStats::default();
        s.record(10, 3);
        s.record(0, 7); // control message: counted, costless
        assert_eq!(s.messages, 2);
        assert_eq!(s.data_units, 10);
        assert_eq!(s.transfer_cost, 30);
    }

    #[test]
    fn default_is_zeroed_and_debug_nonempty() {
        let s = TrafficStats::default();
        assert_eq!(s.transfer_cost, 0);
        assert!(!format!("{s:?}").is_empty());
    }
}
