//! Deterministic discrete-event message simulator.
//!
//! The simulator models the network as the validated [`CostMatrix`]: sending
//! a message of `size` data units from `i` to `j` takes `C(i, j)` time units
//! (cost doubles as latency, as in hop-count models) and adds
//! `size · C(i, j)` to the accounted network transfer cost — exactly the NTC
//! currency of the paper's cost model. Control messages are sent with size 0
//! and therefore cost nothing, matching the paper's assumption that control
//! traffic has a minor impact.
//!
//! Nodes implement [`Node`] and exchange an application-defined payload type.
//! Execution is deterministic: ties in delivery time are broken by send
//! order.
//!
//! Two consumers live elsewhere in the workspace:
//!
//! * `drp-core` replays read/write patterns against a replication scheme and
//!   checks the measured NTC equals the analytic Eq. 4 value;
//! * `drp-algo` runs the paper's *distributed* SRA (leader, token passing,
//!   replication broadcasts) on top of it.
//!
//! [`CostMatrix`]: crate::CostMatrix
//!
//! # Examples
//!
//! A two-node ping-pong that accounts one data unit each way:
//!
//! ```
//! use drp_net::{CostMatrix, sim::{Context, Message, Node, Simulator}};
//!
//! struct Ping;
//! struct Pong;
//!
//! impl Node<u32> for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
//!         ctx.send(1, 1, 0);
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _msg: Message<u32>) {}
//! }
//! impl Node<u32> for Pong {
//!     fn on_message(&mut self, ctx: &mut Context<'_, u32>, msg: Message<u32>) {
//!         ctx.send(msg.src, 1, msg.payload + 1);
//!     }
//! }
//!
//! let costs = CostMatrix::from_rows(2, vec![0, 3, 3, 0])?;
//! let mut sim = Simulator::new(&costs, vec![Box::new(Ping), Box::new(Pong)])?;
//! sim.run_to_completion()?;
//! assert_eq!(sim.stats().transfer_cost, 2 * 3); // one unit × C=3, both ways
//! # Ok::<(), drp_net::NetError>(())
//! ```

//! # Fault injection
//!
//! A seeded [`FaultPlan`] can be armed via
//! [`Simulator::set_fault_plan`] to crash sites, cut links, drop or delay
//! messages — all deterministically. Nodes observe their own transitions
//! through [`Node::on_crash`] / [`Node::on_recover`] and may query the
//! liveness oracle [`Context::is_up`]. `drp-algo`'s `repair` module builds
//! a self-healing replication protocol on top of these hooks.

mod engine;
mod error;
mod event;
mod fault;
mod message;
mod stats;
mod traffic;

pub use engine::{Context, Node, Simulator};
pub use error::SimError;
pub use event::Time;
pub use fault::{CrashWindow, FaultPlan, FaultStats, PartitionWindow};
pub use message::Message;
pub use stats::TrafficStats;
pub use traffic::TrafficMatrix;
