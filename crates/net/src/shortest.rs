//! Shortest-path algorithms over [`Graph`].
//!
//! The paper assumes `C(i, j)` is the cumulative cost of the shortest path
//! between sites `i` and `j`, known a priori. [`CostMatrix::from_graph`]
//! computes that table with [`all_pairs`], which picks Dijkstra-from-every-
//! source for sparse graphs and Floyd–Warshall for dense ones.
//!
//! [`CostMatrix::from_graph`]: crate::CostMatrix::from_graph

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::pool::WorkerPool;
use crate::{Graph, NetError, Result};

/// Sentinel distance for unreachable pairs in the flat representation
/// returned by [`all_pairs_flat`].
pub const UNREACHABLE: u64 = u64::MAX;

/// Single-source shortest path costs from `src` to every site (Dijkstra).
///
/// Unreachable sites are reported as `None`.
///
/// # Errors
///
/// Returns [`NetError::SiteOutOfRange`] if `src` is not a site of `graph`.
///
/// # Examples
///
/// ```
/// use drp_net::{Graph, shortest};
///
/// let mut g = Graph::new(3)?;
/// g.add_edge(0, 1, 4)?;
/// g.add_edge(1, 2, 2)?;
/// g.add_edge(0, 2, 9)?;
/// let d = shortest::dijkstra(&g, 0)?;
/// assert_eq!(d, vec![Some(0), Some(4), Some(6)]);
/// # Ok::<(), drp_net::NetError>(())
/// ```
pub fn dijkstra(graph: &Graph, src: usize) -> Result<Vec<Option<u64>>> {
    let m = graph.num_sites();
    if src >= m {
        return Err(NetError::SiteOutOfRange {
            site: src,
            num_sites: m,
        });
    }
    let mut dist = vec![UNREACHABLE; m];
    let mut heap = BinaryHeap::new();
    dijkstra_into(graph, src, &mut dist, &mut heap);
    Ok(dist
        .into_iter()
        .map(|d| (d != UNREACHABLE).then_some(d))
        .collect())
}

/// Single-source Dijkstra writing into a caller-owned row, with a reusable
/// heap. Unreachable sites are left at [`UNREACHABLE`]; `dist` is
/// overwritten, not accumulated. The flat-row form is what
/// [`all_pairs_flat`] fans over the worker pool — each source writes its
/// own disjoint row of the output matrix.
///
/// `src` must be a valid site index and `dist.len()` must equal the number
/// of sites (callers in this module guarantee both).
fn dijkstra_into(
    graph: &Graph,
    src: usize,
    dist: &mut [u64],
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
) {
    dist.fill(UNREACHABLE);
    heap.clear();
    dist[src] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u] != d {
            continue; // stale entry
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
}

/// Single-source shortest path costs in the flat representation: entry `j`
/// is the cheapest path cost from `src` to `j`, or [`UNREACHABLE`]. The
/// sparse-scale twin of [`dijkstra`] — callers that index by sentinel (the
/// sharded solver, the sparse evaluator) avoid the `Option` boxing.
///
/// # Errors
///
/// Returns [`NetError::SiteOutOfRange`] if `src` is not a site of `graph`.
pub fn dijkstra_flat(graph: &Graph, src: usize) -> Result<Vec<u64>> {
    let m = graph.num_sites();
    if src >= m {
        return Err(NetError::SiteOutOfRange {
            site: src,
            num_sites: m,
        });
    }
    let mut dist = vec![UNREACHABLE; m];
    let mut heap = BinaryHeap::new();
    dijkstra_into(graph, src, &mut dist, &mut heap);
    Ok(dist)
}

/// Multi-source Dijkstra with ownership: for every site, the distance to
/// the nearest source and the index *into `sources`* of the source whose
/// shortest-path tree reached it.
///
/// Ownership propagates along tree edges — a site's owner is the owner of
/// the neighbour that last improved its distance — so each owner's region
/// is connected in `graph` (it is a union of shortest-path-tree branches).
/// Ties are broken deterministically: an equal-distance relaxation never
/// displaces an established owner, and the heap orders equal distances by
/// `(owner rank, site)`. Unreachable sites report [`UNREACHABLE`] and an
/// owner of `usize::MAX`.
///
/// # Errors
///
/// Returns [`NetError::EmptyNetwork`] when `sources` is empty and
/// [`NetError::SiteOutOfRange`] when a source is not a site of `graph`.
pub fn multi_source_owner(graph: &Graph, sources: &[usize]) -> Result<(Vec<u64>, Vec<usize>)> {
    let m = graph.num_sites();
    if sources.is_empty() {
        return Err(NetError::EmptyNetwork);
    }
    let mut dist = vec![UNREACHABLE; m];
    let mut owner = vec![usize::MAX; m];
    let mut heap = BinaryHeap::new();
    for (rank, &src) in sources.iter().enumerate() {
        if src >= m {
            return Err(NetError::SiteOutOfRange {
                site: src,
                num_sites: m,
            });
        }
        // A duplicated source keeps its first rank (0 is not < 0).
        if dist[src] > 0 {
            dist[src] = 0;
            owner[src] = rank;
            heap.push(Reverse((0u64, rank, src)));
        }
    }
    while let Some(Reverse((d, r, u))) = heap.pop() {
        if dist[u] != d || owner[u] != r {
            continue; // stale entry
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                owner[v] = r;
                heap.push(Reverse((nd, r, v)));
            }
        }
    }
    Ok((dist, owner))
}

/// Truncated Dijkstra: the `k` sites nearest to `src` — always including
/// `src` itself at distance 0 — in nondecreasing `(cost, site)` order.
/// Returns fewer than `k` entries when `src`'s component is smaller.
///
/// # Errors
///
/// Returns [`NetError::SiteOutOfRange`] if `src` is not a site of `graph`.
pub fn k_nearest(graph: &Graph, src: usize, k: usize) -> Result<Vec<(usize, u64)>> {
    let m = graph.num_sites();
    if src >= m {
        return Err(NetError::SiteOutOfRange {
            site: src,
            num_sites: m,
        });
    }
    let mut dist = vec![UNREACHABLE; m];
    let mut heap = BinaryHeap::new();
    let mut out = Vec::new();
    k_nearest_into(graph, src, k, &mut dist, &mut heap, &mut out);
    Ok(out)
}

/// [`k_nearest`] into caller-owned scratch: `dist` must be all-
/// [`UNREACHABLE`] on entry and is restored to that state on exit (only
/// touched entries are reset), so a caller running one search per site
/// pays O(settled) per search instead of O(M). `out` receives the settled
/// `(site, cost)` pairs in nondecreasing `(cost, site)` order.
pub(crate) fn k_nearest_into(
    graph: &Graph,
    src: usize,
    k: usize,
    dist: &mut [u64],
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    out: &mut Vec<(usize, u64)>,
) {
    out.clear();
    heap.clear();
    if k == 0 {
        return;
    }
    dist[src] = 0;
    let mut touched = vec![src];
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u] != d {
            continue; // stale entry
        }
        out.push((u, d));
        if out.len() == k {
            break;
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                if dist[v] == UNREACHABLE {
                    touched.push(v);
                }
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    for t in touched {
        dist[t] = UNREACHABLE;
    }
}

/// Internal "infinity" of the narrow [`floyd_warshall_flat`] kernel:
/// large enough that no real path cost comes near it (the kernel is only
/// selected when every possible path provably stays below it), small
/// enough that one relaxation sum of two entries cannot wrap a `u32`.
const FW_INF32: u32 = u32::MAX / 4;

/// Parallel flat Floyd–Warshall over a min-cost adjacency matrix — the
/// dense path of [`all_pairs_flat`]. `dist` starts as the adjacency
/// matrix (with [`UNREACHABLE`] holes) and ends as the all-pairs table.
///
/// At pivot `k`, row `k` is invariant (`dist[k][j]` relaxes against
/// `dist[k][k] + dist[k][j]`, i.e. itself), so every row can relax
/// independently against a snapshot of the pivot row: the per-pivot sweep
/// fans disjoint row chunks over the pool with no cross-row writes, which
/// keeps the result bitwise-identical for every pool size.
///
/// When every shortest path provably fits (any path has at most `M − 1`
/// hops of at most the largest edge weight), the sweep runs over a `u32`
/// copy of the matrix: half the memory traffic of the `u64` table — the
/// binding resource at M ≈ 1000, where the 8·M² working set dwarfs every
/// cache — and a native SIMD unsigned-min. Unreachable pairs ride through
/// as [`FW_INF32`] (plain adds cannot wrap it, and any path over an
/// unreachable hop stays at least `FW_INF32` while no real path gets
/// close, so clamping at the end is exact). Wider weights fall back to
/// the same sweep in `u64` with a saturating add. Either way the math is
/// exact integer shortest paths, so kernel choice — a pure function of
/// the input — never changes results.
fn floyd_warshall_flat(dist: &mut [u64], m: usize, pool: &WorkerPool) {
    let max_edge = dist
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .max()
        .copied()
        .unwrap_or(0);
    let path_bound = (m as u64).saturating_sub(1).saturating_mul(max_edge);
    if path_bound < u64::from(FW_INF32) {
        let mut narrow: Vec<u32> = dist
            .iter()
            .map(|&d| if d == UNREACHABLE { FW_INF32 } else { d as u32 })
            .collect();
        floyd_warshall_sweep(&mut narrow, m, pool, |a, b| a + b);
        for (slot, &d) in dist.iter_mut().zip(&narrow) {
            *slot = if d >= FW_INF32 {
                UNREACHABLE
            } else {
                u64::from(d)
            };
        }
    } else {
        floyd_warshall_sweep(dist, m, pool, u64::saturating_add);
    }
}

/// The pivot sweep shared by both [`floyd_warshall_flat`] kernels.
/// `relax` must be monotone addition with an absorbing top value
/// (saturating for `u64`, plain for the bounded `u32` domain).
fn floyd_warshall_sweep<T>(
    dist: &mut [T],
    m: usize,
    pool: &WorkerPool,
    relax: impl Fn(T, T) -> T + Sync,
) where
    T: Copy + Ord + Send + Sync,
{
    let relax = &relax;
    let rows_per_task = m.div_ceil(pool.threads().min(m));
    let chunk = rows_per_task * m;
    let mut pivot_row = Vec::with_capacity(m);
    for k in 0..m {
        pivot_row.clear();
        pivot_row.extend_from_slice(&dist[k * m..(k + 1) * m]);
        let pivot = &pivot_row;
        pool.for_each_chunk_mut(dist, chunk, |_, rows| {
            for row in rows.chunks_mut(m) {
                let through = row[k];
                for (slot, &pk) in row.iter_mut().zip(pivot) {
                    *slot = (*slot).min(relax(through, pk));
                }
            }
        });
    }
}

/// Flat min-cost adjacency matrix: `adj[a * m + b]` is the cheapest direct
/// edge between `a` and `b` ([`UNREACHABLE`] if none, 0 on the diagonal).
fn flat_adjacency(graph: &Graph) -> Vec<u64> {
    let m = graph.num_sites();
    let mut adj = vec![UNREACHABLE; m * m];
    for i in 0..m {
        adj[i * m + i] = 0;
    }
    for e in graph.edges() {
        let best = e.cost.min(adj[e.a * m + e.b]);
        adj[e.a * m + e.b] = best;
        adj[e.b * m + e.a] = best;
    }
    adj
}

/// All-pairs shortest paths as a flat row-major `M × M` matrix, with
/// Dijkstra-from-every-source fanned over `pool`.
///
/// Entry `i * m + j` is the cheapest path cost from `i` to `j`, or
/// [`UNREACHABLE`]. Sparse graphs fan binary-heap Dijkstra per source over
/// the pool (each source owns one disjoint output row); dense ones (the
/// paper's complete topologies) run [`floyd_warshall_flat`] over the flat
/// adjacency matrix, fanning the per-pivot row sweep. Both assignments
/// depend only on the instance, so the result is bitwise-identical for
/// every pool size, including the inline `WorkerPool::new(1)`.
pub fn all_pairs_flat(graph: &Graph, pool: &WorkerPool) -> Vec<u64> {
    let m = graph.num_sites();
    let e = graph.num_edges();
    if m == 0 {
        return Vec::new();
    }
    // Rough crossover: heap Dijkstra is O(E·logM) per source, the flat FW
    // sweep O(M²) per pivot; prefer the sweep once E·logM outgrows M².
    let dense = e.saturating_mul((64 - (m as u64).leading_zeros()) as usize) > m * m;
    if dense {
        let mut out = flat_adjacency(graph);
        floyd_warshall_flat(&mut out, m, pool);
        return out;
    }
    let mut out = vec![UNREACHABLE; m * m];
    let rows_per_task = m.div_ceil(pool.threads().min(m));
    pool.for_each_chunk_mut(&mut out, rows_per_task * m, |chunk_index, rows| {
        let mut heap = BinaryHeap::new();
        for (offset, dist) in rows.chunks_mut(m).enumerate() {
            let src = chunk_index * rows_per_task + offset;
            dijkstra_into(graph, src, dist, &mut heap);
        }
    });
    out
}

/// All-pairs shortest path costs via Floyd–Warshall, O(M^3).
///
/// Unreachable pairs are `None`. Prefer [`all_pairs`], which chooses between
/// this and repeated Dijkstra based on density.
#[allow(clippy::needless_range_loop)] // i/j/k triple indexing reads clearest
pub fn floyd_warshall(graph: &Graph) -> Vec<Vec<Option<u64>>> {
    let m = graph.num_sites();
    let mut dist: Vec<Vec<Option<u64>>> = vec![vec![None; m]; m];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = Some(0);
    }
    for e in graph.edges() {
        let best = dist[e.a][e.b].map_or(e.cost, |c| c.min(e.cost));
        dist[e.a][e.b] = Some(best);
        dist[e.b][e.a] = Some(best);
    }
    for k in 0..m {
        for i in 0..m {
            let Some(dik) = dist[i][k] else { continue };
            for j in 0..m {
                let Some(dkj) = dist[k][j] else { continue };
                let through = dik + dkj;
                if dist[i][j].is_none_or(|cur| through < cur) {
                    dist[i][j] = Some(through);
                }
            }
        }
    }
    dist
}

/// All-pairs shortest paths in the nested `Option` representation.
///
/// Compatibility wrapper over [`all_pairs_flat`] on the global worker
/// pool; [`floyd_warshall`] remains as the independent sequential
/// reference the property tests compare against.
pub fn all_pairs(graph: &Graph) -> Result<Vec<Vec<Option<u64>>>> {
    let m = graph.num_sites();
    let flat = all_pairs_flat(graph, WorkerPool::global());
    Ok(flat
        .chunks(m.max(1))
        .take(m)
        .map(|row| {
            row.iter()
                .map(|&d| (d != UNREACHABLE).then_some(d))
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3
        let mut g = Graph::new(4).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(0, 2, 5).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        g
    }

    #[test]
    fn dijkstra_diamond() {
        let d = dijkstra(&diamond(), 0).unwrap();
        assert_eq!(d, vec![Some(0), Some(1), Some(3), Some(2)]);
    }

    #[test]
    fn dijkstra_rejects_bad_source() {
        assert!(dijkstra(&diamond(), 10).is_err());
    }

    #[test]
    fn dijkstra_reports_unreachable() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 2).unwrap();
        let d = dijkstra(&g, 0).unwrap();
        assert_eq!(d, vec![Some(0), Some(2), None]);
    }

    #[test]
    fn floyd_warshall_matches_dijkstra_on_diamond() {
        let g = diamond();
        let fw = floyd_warshall(&g);
        for (src, row) in fw.iter().enumerate() {
            assert_eq!(row, &dijkstra(&g, src).unwrap(), "row {src}");
        }
    }

    #[test]
    fn floyd_warshall_uses_cheapest_parallel_edge() {
        let mut g = Graph::new(2).unwrap();
        g.add_edge(0, 1, 9).unwrap();
        g.add_edge(0, 1, 3).unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw[0][1], Some(3));
    }

    #[test]
    fn all_pairs_agrees_with_floyd_warshall() {
        let g = diamond();
        assert_eq!(all_pairs(&g).unwrap(), floyd_warshall(&g));
    }

    #[test]
    fn all_pairs_flat_matches_floyd_warshall_for_any_pool_size() {
        let g = diamond();
        let m = g.num_sites();
        let fw = floyd_warshall(&g);
        for threads in [1, 2, 4] {
            let flat = all_pairs_flat(&g, &WorkerPool::new(threads));
            for i in 0..m {
                for j in 0..m {
                    let expect = fw[i][j].unwrap_or(UNREACHABLE);
                    assert_eq!(flat[i * m + j], expect, "({i},{j}) at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn all_pairs_flat_marks_unreachable_pairs() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 2).unwrap();
        let flat = all_pairs_flat(&g, &WorkerPool::new(1));
        assert_eq!(flat[2], UNREACHABLE, "0 -> 2");
        assert_eq!(flat[2 * 3], UNREACHABLE, "2 -> 0");
        assert_eq!(flat[1], 2, "0 -> 1");
        assert_eq!(flat[2 * 3 + 2], 0, "2 -> 2");
    }

    #[test]
    fn dense_kernel_handles_parallel_edges_and_self_distance() {
        // Force the dense path: complete-ish multigraph on 4 sites.
        let mut g = Graph::new(4).unwrap();
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(a, b, 7).unwrap();
                g.add_edge(a, b, (a + b + 1) as u64).unwrap();
            }
        }
        let m = 4;
        let flat = all_pairs_flat(&g, &WorkerPool::new(2));
        let fw = floyd_warshall(&g);
        for i in 0..m {
            for j in 0..m {
                assert_eq!(flat[i * m + j], fw[i][j].unwrap(), "({i},{j})");
            }
        }
    }

    #[test]
    fn dijkstra_flat_matches_optional_form() {
        let g = diamond();
        let flat = dijkstra_flat(&g, 0).unwrap();
        let boxed = dijkstra(&g, 0).unwrap();
        for (f, b) in flat.iter().zip(&boxed) {
            assert_eq!(*f, b.unwrap_or(UNREACHABLE));
        }
        assert!(dijkstra_flat(&g, 9).is_err());
    }

    #[test]
    fn multi_source_owner_partitions_into_connected_cells() {
        // Line 0-1-2-3-4-5 with unit costs; sources 0 and 5.
        let mut g = Graph::new(6).unwrap();
        for a in 0..5 {
            g.add_edge(a, a + 1, 1).unwrap();
        }
        let (dist, owner) = multi_source_owner(&g, &[0, 5]).unwrap();
        assert_eq!(dist, vec![0, 1, 2, 2, 1, 0]);
        // Site 2 and 3 are equidistant-adjacent; whatever the tie rule
        // picks, each owner's cell must be a contiguous run on the line.
        assert_eq!(owner[0], 0);
        assert_eq!(owner[5], 1);
        let boundary = owner.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(boundary, 1, "cells must be contiguous: {owner:?}");
    }

    #[test]
    fn multi_source_owner_rejects_bad_input() {
        let g = diamond();
        assert!(multi_source_owner(&g, &[]).is_err());
        assert!(multi_source_owner(&g, &[0, 99]).is_err());
    }

    #[test]
    fn multi_source_owner_keeps_first_rank_for_duplicates() {
        let g = diamond();
        let (dist, owner) = multi_source_owner(&g, &[2, 2]).unwrap();
        assert_eq!(dist[2], 0);
        assert_eq!(owner[2], 0);
    }

    #[test]
    fn k_nearest_settles_in_cost_order() {
        let g = diamond();
        // From 0: self (0), 1 (1), 3 (2), 2 (3).
        assert_eq!(k_nearest(&g, 0, 3).unwrap(), vec![(0, 0), (1, 1), (3, 2)]);
        assert_eq!(k_nearest(&g, 0, 99).unwrap().len(), 4);
        assert!(k_nearest(&g, 9, 2).is_err());
    }

    #[test]
    fn k_nearest_stops_at_component_boundary() {
        let mut g = Graph::new(4).unwrap();
        g.add_edge(0, 1, 3).unwrap();
        assert_eq!(k_nearest(&g, 0, 4).unwrap(), vec![(0, 0), (1, 3)]);
    }

    #[test]
    fn shortest_paths_satisfy_triangle_inequality() {
        let g = diamond();
        let d = floyd_warshall(&g);
        let m = g.num_sites();
        for i in 0..m {
            for j in 0..m {
                for k in 0..m {
                    let (Some(dij), Some(dik), Some(dkj)) = (d[i][j], d[i][k], d[k][j]) else {
                        continue;
                    };
                    assert!(dij <= dik + dkj);
                }
            }
        }
    }
}
