//! Shortest-path algorithms over [`Graph`].
//!
//! The paper assumes `C(i, j)` is the cumulative cost of the shortest path
//! between sites `i` and `j`, known a priori. [`CostMatrix::from_graph`]
//! computes that table with [`all_pairs`], which picks Dijkstra-from-every-
//! source for sparse graphs and Floyd–Warshall for dense ones.
//!
//! [`CostMatrix::from_graph`]: crate::CostMatrix::from_graph

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{Graph, NetError, Result};

/// Single-source shortest path costs from `src` to every site (Dijkstra).
///
/// Unreachable sites are reported as `None`.
///
/// # Errors
///
/// Returns [`NetError::SiteOutOfRange`] if `src` is not a site of `graph`.
///
/// # Examples
///
/// ```
/// use drp_net::{Graph, shortest};
///
/// let mut g = Graph::new(3)?;
/// g.add_edge(0, 1, 4)?;
/// g.add_edge(1, 2, 2)?;
/// g.add_edge(0, 2, 9)?;
/// let d = shortest::dijkstra(&g, 0)?;
/// assert_eq!(d, vec![Some(0), Some(4), Some(6)]);
/// # Ok::<(), drp_net::NetError>(())
/// ```
pub fn dijkstra(graph: &Graph, src: usize) -> Result<Vec<Option<u64>>> {
    let m = graph.num_sites();
    if src >= m {
        return Err(NetError::SiteOutOfRange {
            site: src,
            num_sites: m,
        });
    }
    let mut dist: Vec<Option<u64>> = vec![None; m];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    dist[src] = Some(0);
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist[u] != Some(d) {
            continue; // stale entry
        }
        for (v, w) in graph.neighbors(u) {
            let nd = d + w;
            if dist[v].is_none_or(|cur| nd < cur) {
                dist[v] = Some(nd);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    Ok(dist)
}

/// All-pairs shortest path costs via Floyd–Warshall, O(M^3).
///
/// Unreachable pairs are `None`. Prefer [`all_pairs`], which chooses between
/// this and repeated Dijkstra based on density.
#[allow(clippy::needless_range_loop)] // i/j/k triple indexing reads clearest
pub fn floyd_warshall(graph: &Graph) -> Vec<Vec<Option<u64>>> {
    let m = graph.num_sites();
    let mut dist: Vec<Vec<Option<u64>>> = vec![vec![None; m]; m];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = Some(0);
    }
    for e in graph.edges() {
        let best = dist[e.a][e.b].map_or(e.cost, |c| c.min(e.cost));
        dist[e.a][e.b] = Some(best);
        dist[e.b][e.a] = Some(best);
    }
    for k in 0..m {
        for i in 0..m {
            let Some(dik) = dist[i][k] else { continue };
            for j in 0..m {
                let Some(dkj) = dist[k][j] else { continue };
                let through = dik + dkj;
                if dist[i][j].is_none_or(|cur| through < cur) {
                    dist[i][j] = Some(through);
                }
            }
        }
    }
    dist
}

/// All-pairs shortest paths, choosing the asymptotically better algorithm.
///
/// Uses Dijkstra from every source when the graph is sparse
/// (`E · log M ≪ M²`), Floyd–Warshall otherwise.
pub fn all_pairs(graph: &Graph) -> Result<Vec<Vec<Option<u64>>>> {
    let m = graph.num_sites();
    let e = graph.num_edges();
    // Rough crossover: Dijkstra-all is O(M·E·logM), FW is O(M^3).
    let dense = e.saturating_mul((64 - (m as u64).leading_zeros()) as usize) > m * m;
    if dense {
        Ok(floyd_warshall(graph))
    } else {
        (0..m).map(|src| dijkstra(graph, src)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -5- 2 -1- 3
        let mut g = Graph::new(4).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 3, 1).unwrap();
        g.add_edge(0, 2, 5).unwrap();
        g.add_edge(2, 3, 1).unwrap();
        g
    }

    #[test]
    fn dijkstra_diamond() {
        let d = dijkstra(&diamond(), 0).unwrap();
        assert_eq!(d, vec![Some(0), Some(1), Some(3), Some(2)]);
    }

    #[test]
    fn dijkstra_rejects_bad_source() {
        assert!(dijkstra(&diamond(), 10).is_err());
    }

    #[test]
    fn dijkstra_reports_unreachable() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 2).unwrap();
        let d = dijkstra(&g, 0).unwrap();
        assert_eq!(d, vec![Some(0), Some(2), None]);
    }

    #[test]
    fn floyd_warshall_matches_dijkstra_on_diamond() {
        let g = diamond();
        let fw = floyd_warshall(&g);
        for (src, row) in fw.iter().enumerate() {
            assert_eq!(row, &dijkstra(&g, src).unwrap(), "row {src}");
        }
    }

    #[test]
    fn floyd_warshall_uses_cheapest_parallel_edge() {
        let mut g = Graph::new(2).unwrap();
        g.add_edge(0, 1, 9).unwrap();
        g.add_edge(0, 1, 3).unwrap();
        let fw = floyd_warshall(&g);
        assert_eq!(fw[0][1], Some(3));
    }

    #[test]
    fn all_pairs_agrees_with_floyd_warshall() {
        let g = diamond();
        assert_eq!(all_pairs(&g).unwrap(), floyd_warshall(&g));
    }

    #[test]
    fn shortest_paths_satisfy_triangle_inequality() {
        let g = diamond();
        let d = floyd_warshall(&g);
        let m = g.num_sites();
        for i in 0..m {
            for j in 0..m {
                for k in 0..m {
                    let (Some(dij), Some(dik), Some(dkj)) = (d[i][j], d[i][k], d[k][j]) else {
                        continue;
                    };
                    assert!(dij <= dik + dkj);
                }
            }
        }
    }
}
