//! A persistent, deterministic fork-join worker pool.
//!
//! Every parallel kernel in the workspace — the Dijkstra fan-out behind
//! [`CostMatrix::from_graph`], GRA's population fitness, AGRA's micro-GA
//! batches — shares one lazily-started pool instead of re-spawning scoped
//! threads per call. Spawning costs tens of microseconds per thread; a GA
//! run evaluates thousands of batches, and AGRA multiplies that by its
//! per-object micro-GAs, so the spawn tax used to dominate small batches.
//!
//! The canonical implementation lives here, at the bottom of the workspace
//! dependency DAG, so `drp-net` itself can use it; everything above should
//! import it as `drp_core::pool`.
//!
//! # Determinism
//!
//! The pool provides *fork-join over index ranges*: [`WorkerPool::run`]
//! executes a pure function once per index, and
//! [`WorkerPool::for_each_chunk_mut`] hands each task a fixed, disjoint
//! chunk of one slice. Which worker executes which index is scheduling-
//! dependent, but the mapping from index to input and output location is
//! not — so as long as the task function itself is a pure function of its
//! index (all our kernels are), results are bitwise-identical across
//! thread counts, including `DRP_THREADS=1`.
//!
//! # Thread count
//!
//! [`WorkerPool::global`] sizes itself from the `DRP_THREADS` environment
//! variable when set (a positive integer), falling back to
//! [`std::thread::available_parallelism`]. Explicit pools from
//! [`WorkerPool::new`] ignore the environment — benchmarks use
//! `WorkerPool::new(1)` as the sequential reference.
//!
//! # Examples
//!
//! ```
//! use drp_net::pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let mut squares = vec![0u64; 100];
//! pool.for_each_chunk_mut(&mut squares, 25, |chunk_index, chunk| {
//!     for (offset, slot) in chunk.iter_mut().enumerate() {
//!         let i = (chunk_index * 25 + offset) as u64;
//!         *slot = i * i;
//!     }
//! });
//! assert_eq!(squares[9], 81);
//! ```
//!
//! [`CostMatrix::from_graph`]: crate::CostMatrix::from_graph

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// Counts outstanding tasks of one `run` call; the caller blocks on it so
/// borrowed task closures provably outlive every job that references them.
struct Latch {
    state: Mutex<(usize, bool)>,
    done: Condvar,
}

impl Latch {
    fn new(tasks: usize) -> Self {
        Self {
            state: Mutex::new((tasks, false)),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panicked: bool) {
        let mut state = self.state.lock().unwrap();
        state.0 -= 1;
        state.1 |= panicked;
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task completed; returns whether any panicked.
    fn wait(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        while state.0 > 0 {
            state = self.done.wait(state).unwrap();
        }
        state.1
    }
}

/// Fat-pointer to a borrowed task function, smuggled into `'static` jobs.
/// Sound because [`WorkerPool::run`] does not return before the latch
/// confirms every job holding the pointer has finished.
#[derive(Clone, Copy)]
struct RawTask(*const (dyn Fn(usize) + Sync));
unsafe impl Send for RawTask {}

/// Raw base pointer of a slice being chunked across tasks. Each task index
/// reconstructs its own disjoint sub-slice, so no two tasks alias.
struct RawSlice<T>(*mut T);
unsafe impl<T: Send> Send for RawSlice<T> {}
unsafe impl<T: Send> Sync for RawSlice<T> {}

/// A persistent pool of worker threads executing chunked fork-join calls.
///
/// See the [module docs](self) for the determinism contract and sizing.
pub struct WorkerPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool that fans work over `threads` threads. `threads <= 1` builds
    /// an inline pool that spawns nothing and runs every task on the
    /// caller — the sequential reference the parity tests compare against.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
        });
        // The caller participates in every fork-join (it drains the queue
        // while waiting), so `threads - 1` workers saturate `threads` cores.
        let workers = (1..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("drp-pool-{i}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            queue,
            workers,
            threads,
        }
    }

    /// The process-wide pool, started on first use. Honors `DRP_THREADS`
    /// (a positive integer) and otherwise sizes itself to
    /// [`std::thread::available_parallelism`].
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
    }

    /// The parallelism this pool fans out to (including the calling
    /// thread); 1 means fully inline execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(0), task(1), …, task(tasks - 1)` to completion, fanned
    /// over the pool. Blocks until every index finished.
    ///
    /// `task` must be a pure function of its index for the determinism
    /// contract to hold; the pool guarantees only that all indices run
    /// exactly once and that their effects are visible when `run` returns.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (after all of them finished or
    /// unwound).
    pub fn run<F>(&self, tasks: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        if tasks == 0 {
            return;
        }
        if self.workers.is_empty() || tasks == 1 {
            for index in 0..tasks {
                task(index);
            }
            return;
        }

        let latch = Arc::new(Latch::new(tasks));
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: erases the borrow's lifetime. Every job created below
        // signals `latch` when it finishes (even by panic), and this
        // function blocks on `latch.wait()` before returning, so `task`
        // strictly outlives every dereference of the pointer.
        let raw: RawTask = RawTask(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task_ref)
        });

        {
            let mut state = self.queue.state.lock().unwrap();
            for index in 0..tasks {
                let latch = Arc::clone(&latch);
                state.jobs.push_back(Box::new(move || {
                    // Rebind the whole wrapper so the closure captures the
                    // `Send` newtype, not its raw-pointer field.
                    let raw = raw;
                    let panicked = panic::catch_unwind(AssertUnwindSafe(|| {
                        // SAFETY: see above — the pointee outlives the job.
                        (unsafe { &*raw.0 })(index);
                    }))
                    .is_err();
                    latch.complete(panicked);
                }));
            }
        }
        self.queue.ready.notify_all();

        // Help drain the queue instead of blocking idle: the caller is a
        // full participant, which also keeps a 1-worker pool deadlock-free
        // and lets nested `run` calls make progress on their own jobs.
        loop {
            let job = self.queue.state.lock().unwrap().jobs.pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        if latch.wait() {
            propagate_worker_panic();
        }
    }

    /// Splits `data` into consecutive chunks of `chunk` elements (the last
    /// one may be shorter) and runs `f(chunk_index, chunk)` for each,
    /// fanned over the pool.
    ///
    /// The chunk boundaries depend only on `data.len()` and `chunk`, never
    /// on the thread count — the heart of the determinism argument: every
    /// output element has exactly one writer, chosen before any thread
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`, or if any task panicked.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let len = data.len();
        let tasks = len.div_ceil(chunk);
        if tasks <= 1 {
            if len > 0 {
                f(0, data);
            }
            return;
        }
        let base = RawSlice(data.as_mut_ptr());
        self.run(tasks, move |index| {
            // Rebind the whole wrapper so the closure captures the `Sync`
            // newtype, not its raw-pointer field.
            let base = &base;
            let start = index * chunk;
            let end = (start + chunk).min(len);
            // SAFETY: tasks cover `[0, len)` in disjoint `[start, end)`
            // ranges, so no two tasks alias, and `data` outlives `run`.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(index, chunk);
        });
    }
}

/// Re-raises a worker panic on the caller. Kept out of line and marked
/// cold so the panic machinery stays off the fork-join exit path every
/// generation takes.
#[cold]
#[inline(never)]
fn propagate_worker_panic() -> ! {
    panic!("a WorkerPool task panicked");
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().unwrap();
            state.shutdown = true;
        }
        self.queue.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(queue: &Queue) {
    loop {
        let job = {
            let mut state = queue.state.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = queue.ready.wait(state).unwrap();
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

fn default_threads() -> usize {
    match std::env::var("DRP_THREADS")
        .ok()
        .and_then(|s| parse_threads(&s))
    {
        Some(n) => n,
        None => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// Parses a `DRP_THREADS` value: a positive integer; anything else is
/// ignored (the pool falls back to the detected parallelism).
fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_covers_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_results_match_inline_execution() {
        let kernel = |chunk_index: usize, chunk: &mut [u64]| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                let i = (chunk_index * 7 + offset) as u64;
                *slot = i.wrapping_mul(i) ^ 0x9e37;
            }
        };
        let mut inline = vec![0u64; 103];
        WorkerPool::new(1).for_each_chunk_mut(&mut inline, 7, kernel);
        for threads in [2, 3, 8] {
            let mut pooled = vec![0u64; 103];
            WorkerPool::new(threads).for_each_chunk_mut(&mut pooled, 7, kernel);
            assert_eq!(pooled, inline, "{threads} threads");
        }
    }

    #[test]
    fn pool_survives_reuse_across_many_rounds() {
        let pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let mut data = vec![0u64; 64];
            pool.for_each_chunk_mut(&mut data, 16, |ci, chunk| {
                for slot in chunk.iter_mut() {
                    *slot = round + ci as u64;
                }
            });
            assert_eq!(data[63], round + 3);
        }
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 11 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        let mut data = vec![0u8; 8];
        pool.for_each_chunk_mut(&mut data, 2, |_, chunk| chunk.fill(1));
        assert_eq!(data, vec![1; 8]);
    }

    #[test]
    fn empty_and_tiny_inputs_run_inline() {
        let pool = WorkerPool::new(4);
        pool.run(0, |_| panic!("never called"));
        let mut empty: Vec<u64> = Vec::new();
        pool.for_each_chunk_mut(&mut empty, 5, |_, _| panic!("never called"));
        let mut one = vec![0u64];
        pool.for_each_chunk_mut(&mut one, 5, |_, chunk| chunk.fill(9));
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn thread_count_parsing() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn global_pool_is_shared_and_alive() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
        let mut data = vec![0u64; 32];
        a.for_each_chunk_mut(&mut data, 8, |_, chunk| chunk.fill(3));
        assert_eq!(data, vec![3; 32]);
    }
}
