//! Sparse k-nearest cost rows — the at-scale substitute for [`CostMatrix`].
//!
//! A dense [`CostMatrix`] stores all `M²` shortest-path costs; at
//! `M = 10 000` that is 800 MB and an all-pairs computation besides. Most
//! of the cost model only ever asks "which replica is *nearest* to site
//! `i`?", and on realistic (locality-bearing) networks the answer is almost
//! always one of `i`'s few nearest sites. [`SparseCostRows`] stores, for
//! every site, its `k` nearest sites by truncated Dijkstra — `O(M·k)`
//! memory — plus the reverse lists ("who considers `j` near?") that let an
//! evaluator propagate a replica flip in `O(k)` instead of touching a full
//! `M`-row.
//!
//! [`CostMatrix`]: crate::CostMatrix

use std::collections::BinaryHeap;

use crate::shortest::{self, UNREACHABLE};
use crate::{Graph, NetError, Result};

/// Per-site k-nearest candidate lists over a graph metric, with reverse
/// lists for incremental updates.
///
/// Every forward row includes the site itself at distance 0 and is sorted
/// by nondecreasing `(cost, site)`; rows are shorter than `k` only when the
/// site's connected component is. The reverse row of `j` lists every site
/// `x` whose forward row contains `j` (in ascending `x`), carrying the same
/// cost — so `j ∈ rev(j)` at cost 0, and a flip at `j` reaches exactly the
/// sites whose nearest-candidate picture it can change.
///
/// # Examples
///
/// ```
/// use drp_net::{Graph, SparseCostRows};
///
/// let mut g = Graph::new(4)?;
/// g.add_edge(0, 1, 1)?;
/// g.add_edge(1, 2, 1)?;
/// g.add_edge(2, 3, 1)?;
/// let rows = SparseCostRows::from_graph(&g, 2)?;
/// let (sites, costs) = rows.row(1);
/// assert_eq!(sites[0], 1); // self at distance 0
/// assert_eq!(costs[0], 0);
/// assert_eq!(costs[1], 1); // nearest neighbour
/// # Ok::<(), drp_net::NetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseCostRows {
    num_sites: usize,
    k: usize,
    fwd_offsets: Vec<usize>,
    fwd_sites: Vec<u32>,
    fwd_costs: Vec<u64>,
    rev_offsets: Vec<usize>,
    rev_sites: Vec<u32>,
    rev_costs: Vec<u64>,
}

impl SparseCostRows {
    /// Builds the k-nearest rows of `graph` — one truncated Dijkstra per
    /// site, `O(M · k log k + E)` total on bounded-degree graphs.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidMatrix`] when `k == 0` or the graph has
    /// more than `u32::MAX` sites, [`NetError::EmptyNetwork`] when it has
    /// none.
    pub fn from_graph(graph: &Graph, k: usize) -> Result<Self> {
        let m = graph.num_sites();
        if m == 0 {
            return Err(NetError::EmptyNetwork);
        }
        if k == 0 {
            return Err(NetError::InvalidMatrix {
                reason: "k-nearest rows need k >= 1".into(),
            });
        }
        if u32::try_from(m).is_err() {
            return Err(NetError::InvalidMatrix {
                reason: format!("{m} sites exceed the u32 site-index range"),
            });
        }
        let k = k.min(m);
        let mut dist = vec![UNREACHABLE; m];
        let mut heap = BinaryHeap::new();
        let mut settled = Vec::with_capacity(k);
        let mut fwd_offsets = Vec::with_capacity(m + 1);
        let mut fwd_sites = Vec::with_capacity(m * k);
        let mut fwd_costs = Vec::with_capacity(m * k);
        fwd_offsets.push(0);
        for src in 0..m {
            shortest::k_nearest_into(graph, src, k, &mut dist, &mut heap, &mut settled);
            for &(site, cost) in &settled {
                fwd_sites.push(site as u32);
                fwd_costs.push(cost);
            }
            fwd_offsets.push(fwd_sites.len());
        }

        // Reverse lists by counting sort over target sites; filling in
        // ascending source order keeps each reverse row sorted by source.
        let mut counts = vec![0usize; m + 1];
        for &j in &fwd_sites {
            counts[j as usize + 1] += 1;
        }
        for j in 0..m {
            counts[j + 1] += counts[j];
        }
        let rev_offsets = counts.clone();
        let mut rev_sites = vec![0u32; fwd_sites.len()];
        let mut rev_costs = vec![0u64; fwd_sites.len()];
        let mut cursor = counts;
        for x in 0..m {
            for idx in fwd_offsets[x]..fwd_offsets[x + 1] {
                let j = fwd_sites[idx] as usize;
                let slot = cursor[j];
                cursor[j] += 1;
                rev_sites[slot] = x as u32;
                rev_costs[slot] = fwd_costs[idx];
            }
        }
        Ok(Self {
            num_sites: m,
            k,
            fwd_offsets,
            fwd_sites,
            fwd_costs,
            rev_offsets,
            rev_sites,
            rev_costs,
        })
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The candidate-list width (clamped to the site count).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Forward row of `site`: its nearest sites and their costs, sorted by
    /// nondecreasing `(cost, site)`, starting with `site` itself at 0.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn row(&self, site: usize) -> (&[u32], &[u64]) {
        let (a, b) = (self.fwd_offsets[site], self.fwd_offsets[site + 1]);
        (&self.fwd_sites[a..b], &self.fwd_costs[a..b])
    }

    /// Reverse row of `site`: every site whose forward row contains `site`,
    /// in ascending site order, with the corresponding costs.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn reverse_row(&self, site: usize) -> (&[u32], &[u64]) {
        let (a, b) = (self.rev_offsets[site], self.rev_offsets[site + 1]);
        (&self.rev_sites[a..b], &self.rev_costs[a..b])
    }

    /// The cost from `i` to `j` if `j` is among `i`'s candidates.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cost(&self, i: usize, j: usize) -> Option<u64> {
        let (sites, costs) = self.row(i);
        sites
            .iter()
            .position(|&s| s as usize == j)
            .map(|p| costs[p])
    }

    /// Total stored entries (≤ `M·k`; smaller on small components).
    pub fn num_entries(&self) -> usize {
        self.fwd_sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(m: usize) -> Graph {
        let mut g = Graph::new(m).unwrap();
        for a in 0..m - 1 {
            g.add_edge(a, a + 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn rows_are_sorted_and_start_with_self() {
        let rows = SparseCostRows::from_graph(&line(8), 3).unwrap();
        for i in 0..8 {
            let (sites, costs) = rows.row(i);
            assert_eq!(sites[0] as usize, i);
            assert_eq!(costs[0], 0);
            assert!(costs.windows(2).all(|w| w[0] <= w[1]), "row {i}");
            assert!(sites.len() <= 3);
        }
    }

    #[test]
    fn reverse_rows_invert_forward_rows() {
        let rows = SparseCostRows::from_graph(&line(10), 4).unwrap();
        for j in 0..10 {
            let (srcs, costs) = rows.reverse_row(j);
            assert!(srcs.windows(2).all(|w| w[0] < w[1]), "rev row {j} sorted");
            for (&x, &c) in srcs.iter().zip(costs) {
                assert_eq!(rows.cost(x as usize, j), Some(c));
            }
        }
        let total: usize = (0..10).map(|j| rows.reverse_row(j).0.len()).sum();
        assert_eq!(total, rows.num_entries());
    }

    #[test]
    fn k_clamps_to_component_and_site_count() {
        let rows = SparseCostRows::from_graph(&line(3), 99).unwrap();
        assert_eq!(rows.k(), 3);
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1, 2).unwrap();
        let rows = SparseCostRows::from_graph(&g, 3).unwrap();
        assert_eq!(rows.row(2).0, &[2]);
        assert_eq!(rows.row(0).0.len(), 2);
    }

    #[test]
    fn zero_k_is_rejected() {
        assert!(SparseCostRows::from_graph(&line(3), 0).is_err());
    }

    #[test]
    fn costs_match_true_shortest_paths() {
        let g = line(6);
        let rows = SparseCostRows::from_graph(&g, 6).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let expect = (i as i64 - j as i64).unsigned_abs();
                assert_eq!(rows.cost(i, j), Some(expect), "({i}, {j})");
            }
        }
    }
}
