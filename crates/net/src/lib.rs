//! Network substrate for the data-replication reproduction.
//!
//! This crate provides everything the replica-placement algorithms need to
//! know (and simulate) about the communication network:
//!
//! * [`Graph`] — an undirected weighted multigraph of sites.
//! * [`shortest`] — Dijkstra and Floyd–Warshall all-pairs shortest paths.
//! * [`CostMatrix`] — the validated, symmetric per-unit transfer cost
//!   `C(i, j)` used throughout the paper's cost model (cumulative cost of the
//!   shortest path between sites `i` and `j`).
//! * [`SparseCostRows`] — per-site k-nearest candidate lists (plus reverse
//!   lists) over the graph metric, the `O(M·k)` substitute for the dense
//!   matrix at scales where `M²` does not fit.
//! * [`topology`] — random and regular topology generators, including the
//!   paper's complete graph with Uniform(1, 10) link costs and the
//!   two-level [`topology::hierarchical`] clusters-over-backbone family.
//! * [`pool`] — a persistent, deterministic worker pool that the parallel
//!   kernels (all-pairs shortest paths here, population fitness in
//!   `drp-algo`) share instead of re-spawning scoped threads.
//! * [`sim`] — a deterministic discrete-event message simulator used to run
//!   the distributed version of the greedy algorithm and to replay request
//!   traces against a replication scheme, cross-checking the analytic cost
//!   model.
//!
//! # Examples
//!
//! ```
//! use drp_net::{topology, CostMatrix};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let graph = topology::complete_uniform(8, 1, 10, &mut rng)?;
//! let costs = CostMatrix::from_graph(&graph)?;
//! assert_eq!(costs.num_sites(), 8);
//! // The matrix is symmetric with a zero diagonal.
//! assert_eq!(costs.cost(2, 5), costs.cost(5, 2));
//! assert_eq!(costs.cost(3, 3), 0);
//! # Ok::<(), drp_net::NetError>(())
//! ```

mod cost;
mod error;
mod graph;
pub mod pool;
mod routes;
pub mod shortest;
pub mod sim;
mod sparse;
pub mod telemetry;
pub mod topology;

pub use cost::CostMatrix;
pub use error::NetError;
pub use graph::{Edge, Graph};
pub use routes::Routes;
pub use sparse::SparseCostRows;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, NetError>;
