use std::time::Instant;

use rand::RngCore;

use crate::{Problem, ReplicationScheme, Result, SolutionReport};

/// A replica-placement solver for the Data Replication Problem.
///
/// Implementations must return a scheme that satisfies both DRP constraints
/// (primary copies present, capacities respected) — [`ReplicationScheme`]
/// enforces them structurally, so any scheme assembled through its API
/// qualifies.
///
/// The trait is object-safe: experiment harnesses drive heterogeneous
/// collections of `Box<dyn ReplicationAlgorithm>`.
pub trait ReplicationAlgorithm {
    /// Short human-readable name, e.g. `"SRA"` or `"GRA"`.
    fn name(&self) -> &str;

    /// Solves `problem`, drawing any randomness from `rng`.
    ///
    /// # Errors
    ///
    /// Implementations report instance-shape problems or internal invariant
    /// violations; a valid instance should always yield a scheme (at worst
    /// the primary-only allocation).
    fn solve(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<ReplicationScheme>;

    /// Runs [`solve`](Self::solve) and wraps the outcome in a timed
    /// [`SolutionReport`].
    ///
    /// # Errors
    ///
    /// Propagates errors from [`solve`](Self::solve).
    fn solve_report(
        &self,
        problem: &Problem,
        rng: &mut dyn RngCore,
    ) -> Result<(ReplicationScheme, SolutionReport)> {
        let start = Instant::now();
        let scheme = self.solve(problem, rng)?;
        let elapsed = start.elapsed();
        let report = SolutionReport::evaluate(self.name(), problem, &scheme, elapsed);
        Ok((scheme, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;
    use drp_net::CostMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A do-nothing solver returning the primary-only allocation.
    struct Noop;

    impl ReplicationAlgorithm for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn solve(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
            Ok(ReplicationScheme::primary_only(problem))
        }
    }

    #[test]
    fn solve_report_times_and_evaluates() {
        let costs = CostMatrix::from_rows(2, vec![0, 2, 2, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![10, 10])
            .object(4, SiteId::new(0))
            .reads(vec![0, 5])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (scheme, report) = Noop.solve_report(&p, &mut rng).unwrap();
        assert_eq!(report.algorithm, "noop");
        assert_eq!(report.cost, p.total_cost(&scheme));
    }

    #[test]
    fn trait_is_object_safe() {
        let solvers: Vec<Box<dyn ReplicationAlgorithm>> = vec![Box::new(Noop)];
        assert_eq!(solvers[0].name(), "noop");
    }
}
