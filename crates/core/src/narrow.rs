//! A `u32` structure-of-arrays mirror of a [`Problem`]'s hot rows.
//!
//! The Eq. 4 inner loops stream three kinds of `M`-length rows: cost
//! matrix rows (one per replicator for the nearest-replica min-scan),
//! and the per-object read/write frequency rows. All three are stored
//! as `u64` in [`Problem`], but paper-scale instances use small
//! integral costs and frequencies, so the values almost always fit in
//! 32 bits. Mirroring them as `u32` halves the memory traffic of every
//! scan and doubles the SIMD lane count of the autovectorised kernels
//! ([`kernels::min_scan_u32`], [`kernels::traffic_scan_u32`]) — the
//! same width split `drp_net::shortest::all_pairs_flat` applies to its
//! Floyd–Warshall/Dijkstra distance arrays.
//!
//! Width selection is a pure function of the input: [`NarrowMirror::build`]
//! returns `None` unless *every* mirrored value fits `u32`, and callers
//! then fall back to the `u64` kernels. Because the narrow values are
//! exact copies and every product is widened to `u64` before
//! accumulation, the narrow path is bitwise identical to the wide one —
//! it is a representation change, never a semantics change.
//!
//! [`kernels::min_scan_u32`]: crate::kernels::min_scan_u32
//! [`kernels::traffic_scan_u32`]: crate::kernels::traffic_scan_u32

use crate::{kernels, ObjectId, Problem};

/// Narrowed (`u32`) copies of the cost matrix and the per-object
/// read/write rows of one [`Problem`].
///
/// Build once per solve (O(M² + 2·N·M)), share freely (e.g. behind an
/// `Arc`) across worker threads; the mirror is immutable and carries no
/// borrow of the problem it was built from. Callers are responsible for
/// pairing a mirror only with the problem that produced it — the row
/// accessors are plain slices.
#[derive(Debug, Clone)]
pub struct NarrowMirror {
    num_sites: usize,
    num_objects: usize,
    /// Row-major M×M shortest-path costs.
    costs: Vec<u32>,
    /// Object-major N×M read frequencies (`Problem::object_reads`).
    reads: Vec<u32>,
    /// Object-major N×M write frequencies (`Problem::object_writes`).
    writes: Vec<u32>,
}

impl NarrowMirror {
    /// Mirrors `problem`'s cost and frequency rows into `u32`, or
    /// `None` if any value exceeds `u32::MAX` (callers keep the `u64`
    /// path; results are identical either way, the wide path is just
    /// slower).
    pub fn build(problem: &Problem) -> Option<Self> {
        let m = problem.num_sites();
        let n = problem.num_objects();
        let mut costs = Vec::with_capacity(m * m);
        for i in 0..m {
            narrow_extend(&mut costs, problem.costs().row(i))?;
        }
        let mut reads = Vec::with_capacity(n * m);
        let mut writes = Vec::with_capacity(n * m);
        for k in 0..n {
            narrow_extend(&mut reads, problem.object_reads(ObjectId::new(k)))?;
            narrow_extend(&mut writes, problem.object_writes(ObjectId::new(k)))?;
        }
        Some(Self {
            num_sites: m,
            num_objects: n,
            costs,
            reads,
            writes,
        })
    }

    /// Number of sites `M` the mirror was built for.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Number of objects `N` the mirror was built for.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Cost-matrix row `C(site, ·)` as `u32`.
    #[inline]
    pub fn cost_row(&self, site: usize) -> &[u32] {
        &self.costs[site * self.num_sites..(site + 1) * self.num_sites]
    }

    /// Per-site read frequencies of `object` as `u32`.
    #[inline]
    pub fn reads_row(&self, object: usize) -> &[u32] {
        &self.reads[object * self.num_sites..(object + 1) * self.num_sites]
    }

    /// Per-site write frequencies of `object` as `u32`.
    #[inline]
    pub fn writes_row(&self, object: usize) -> &[u32] {
        &self.writes[object * self.num_sites..(object + 1) * self.num_sites]
    }

    /// Narrow-width twin of [`Problem::nearest_costs_into`]: fills
    /// `nearest[i] = min { C(i, j) : j ∈ replicas }` over the mirrored
    /// rows; an empty list leaves every slot at [`u32::MAX`].
    ///
    /// # Panics
    ///
    /// Panics if `nearest.len() != num_sites()` or a replica index is
    /// out of range.
    pub fn nearest_costs_into(&self, replicas: &[usize], nearest: &mut [u32]) {
        assert_eq!(nearest.len(), self.num_sites);
        nearest.fill(u32::MAX);
        for &j in replicas {
            kernels::min_scan_u32(nearest, self.cost_row(j));
        }
    }

    /// Narrow-width twin of [`Problem::object_cost_from_replicas`]:
    /// the same Eq. 4 terms streamed over `u32` rows, accumulating in
    /// `u64`, bitwise identical to the wide path.
    ///
    /// `problem` must be the instance this mirror was built from;
    /// `replicas` must be sorted ascending and contain the primary;
    /// `nearest` is overwritten scratch.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range, `nearest.len() != num_sites()`,
    /// or `replicas` is unsorted (debug builds).
    pub fn object_cost_from_replicas(
        &self,
        problem: &Problem,
        object: ObjectId,
        replicas: &[usize],
        nearest: &mut [u32],
    ) -> u64 {
        debug_assert!(replicas.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(self.num_sites, problem.num_sites());
        let o = problem.object_size(object);
        let k = object.index();
        let sp = problem.primary(object).index();
        let sp_row = self.cost_row(sp);
        let w_row = self.writes_row(k);

        self.nearest_costs_into(replicas, nearest);
        let mut broadcast = 0u64;
        let mut replica_writes = 0u64;
        for &j in replicas {
            broadcast += u64::from(sp_row[j]);
            replica_writes += u64::from(w_row[j]) * u64::from(sp_row[j]);
        }

        let traffic = kernels::traffic_scan_u32(self.reads_row(k), w_row, nearest, sp_row);
        problem.write_volume(object) * broadcast + o * (traffic - replica_writes)
    }
}

/// Appends `row` to `out` narrowed to `u32`, or `None` on overflow.
fn narrow_extend(out: &mut Vec<u32>, row: &[u64]) -> Option<()> {
    for &v in row {
        out.push(u32::try_from(v).ok()?);
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplicationScheme, SiteId};
    use drp_net::CostMatrix;

    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 2])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn mirror_rows_copy_the_wide_rows() {
        let p = problem();
        let mirror = NarrowMirror::build(&p).expect("small instance narrows");
        assert_eq!(mirror.num_sites(), 3);
        assert_eq!(mirror.num_objects(), 2);
        for i in 0..3 {
            let wide: Vec<u64> = mirror.cost_row(i).iter().map(|&c| u64::from(c)).collect();
            assert_eq!(wide.as_slice(), p.costs().row(i));
        }
        for k in 0..2 {
            let r: Vec<u64> = mirror.reads_row(k).iter().map(|&c| u64::from(c)).collect();
            assert_eq!(r.as_slice(), p.object_reads(ObjectId::new(k)));
            let w: Vec<u64> = mirror.writes_row(k).iter().map(|&c| u64::from(c)).collect();
            assert_eq!(w.as_slice(), p.object_writes(ObjectId::new(k)));
        }
    }

    #[test]
    fn narrow_object_cost_matches_wide_exactly() {
        let p = problem();
        let mirror = NarrowMirror::build(&p).unwrap();
        let mut wide = vec![u64::MAX; p.num_sites()];
        let mut narrow = vec![u32::MAX; p.num_sites()];
        // Every replica subset containing the primary, for both objects.
        for k in p.objects() {
            let sp = p.primary(k).index();
            for mask in 0u32..8 {
                if mask & (1 << sp) == 0 {
                    continue;
                }
                let replicas: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();
                assert_eq!(
                    mirror.object_cost_from_replicas(&p, k, &replicas, &mut narrow),
                    p.object_cost_from_replicas(k, &replicas, &mut wide),
                    "object {k}, replicas {replicas:?}"
                );
            }
        }
    }

    #[test]
    fn narrow_nearest_matches_wide() {
        let p = problem();
        let mirror = NarrowMirror::build(&p).unwrap();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        let mut wide = vec![0u64; 3];
        let mut narrow = vec![0u32; 3];
        p.nearest_costs_into(s.replicator_indices(0), &mut wide);
        mirror.nearest_costs_into(s.replicator_indices(0), &mut narrow);
        let widened: Vec<u64> = narrow.iter().map(|&c| u64::from(c)).collect();
        assert_eq!(widened, wide);
        // Empty replica sets leave the sentinel in both widths.
        p.nearest_costs_into(&[], &mut wide);
        mirror.nearest_costs_into(&[], &mut narrow);
        assert!(wide.iter().all(|&c| c == u64::MAX));
        assert!(narrow.iter().all(|&c| c == u32::MAX));
    }

    #[test]
    fn too_wide_values_refuse_to_narrow() {
        let big = u64::from(u32::MAX) + 1;
        let costs = CostMatrix::from_rows(3, vec![0, big, big, big, 0, big, big, big, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(1, SiteId::new(0))
            .reads(vec![0, 1, 1])
            .writes(vec![0, 0, 0])
            .build()
            .unwrap();
        assert!(NarrowMirror::build(&p).is_none());

        // Frequencies can also be the too-wide axis.
        let costs = CostMatrix::from_rows(2, vec![0, 1, 1, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![4, 4])
            .object(1, SiteId::new(0))
            .reads(vec![0, big])
            .writes(vec![0, 0])
            .build()
            .unwrap();
        assert!(NarrowMirror::build(&p).is_none());
    }
}
