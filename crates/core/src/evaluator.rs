//! Incremental Eq. 4 evaluation: [`CostEvaluator`] keeps the total NTC `D`
//! and every per-object nearest/second-nearest replicator cached, so a
//! replica flip costs O(M) instead of a full `O(Σ_k M·|R_k|)` recomputation.
//!
//! # Cached-state invariants
//!
//! For every `(object k, site i)` pair the evaluator stores the two cheapest
//! replicators of `k` as seen from `i`, ordered by the canonical key
//! `(cost, site index)`:
//!
//! * `best(k, i)` — the nearest replicator `SN_k(i)` with its cost;
//! * `second(k, i)` — the second-nearest, or a sentinel when `k` has only one
//!   replica.
//!
//! Lexicographic tie-breaking on `(cost, site)` makes both entries a *pure
//! function of the replica set* — independent of the order in which replicas
//! were added or removed. That is what lets [`undo`](CostEvaluator::undo)
//! restore byte-identical state by simply applying the inverse flip: no
//! snapshots are kept, only a log of `(add/remove, site, object)` records.
//!
//! Alongside the top-2 arrays the evaluator maintains `object_cost[k] = V_k`
//! and `total = D = Σ_k V_k`, updated by exact integer deltas. Because every
//! quantity is integral, the running total always equals
//! [`Problem::total_cost`] of the underlying scheme exactly (property-tested
//! in `tests/evaluator_props.rs`).
//!
//! * [`apply_add`](CostEvaluator::apply_add) is O(M): one top-2 insertion per
//!   site.
//! * [`apply_remove`](CostEvaluator::apply_remove) is O(M) plus an
//!   O(|R_k|) second-nearest rescan for each site whose top-2 contained the
//!   removed replica — the second-nearest cache is exactly what avoids a
//!   full rebuild.
//! * [`delta_add`](CostEvaluator::delta_add) and
//!   [`delta_remove`](CostEvaluator::delta_remove) are read-only O(M) peeks
//!   with zero allocation, strictly cheaper than the `O(M·|R_k|)`
//!   [`Problem::delta_add_replica`] / [`Problem::delta_remove_replica`]
//!   which re-derive the nearest array per call.
//!
//! All scratch space is allocated once in [`CostEvaluator::new`]; the flip
//! and peek paths perform no allocations (the undo log amortizes like any
//! `Vec` push).

use crate::{kernels, ObjectId, Problem, ReplicationScheme, Result, SiteId};

/// Sentinel site index for "no second-nearest replicator".
const NO_SITE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct FlipRecord {
    added: bool,
    site: u32,
    object: u32,
}

/// Incremental Eq. 4 evaluator owning a [`ReplicationScheme`].
///
/// # Examples
///
/// ```
/// use drp_core::{CostEvaluator, Problem, ReplicationScheme, SiteId, ObjectId};
/// use drp_net::CostMatrix;
///
/// let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0])?;
/// let problem = Problem::builder(costs)
///     .capacities(vec![40, 40, 40])
///     .object(10, SiteId::new(0))
///     .reads(vec![0, 4, 6])
///     .writes(vec![1, 2, 0])
///     .build()?;
/// let mut eval = CostEvaluator::primary_only(&problem);
/// assert_eq!(eval.total(), problem.d_prime());
///
/// let site = SiteId::new(2);
/// let object = ObjectId::new(0);
/// let predicted = eval.delta_add(site, object);
/// let applied = eval.apply_add(site, object)?;
/// assert_eq!(predicted, applied);
/// assert_eq!(eval.total(), problem.total_cost(eval.scheme()));
///
/// eval.undo();
/// assert_eq!(eval.total(), problem.d_prime());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CostEvaluator<'p> {
    problem: &'p Problem,
    scheme: ReplicationScheme,
    /// Flattened `N × M`: nearest replicator cost per `(object, site)`.
    best_cost: Vec<u64>,
    /// Flattened `N × M`: nearest replicator site per `(object, site)`.
    best_site: Vec<u32>,
    /// Flattened `N × M`: second-nearest replicator cost ([`u64::MAX`] when
    /// the object has a single replica).
    second_cost: Vec<u64>,
    /// Flattened `N × M`: second-nearest replicator site ([`NO_SITE`] when
    /// absent).
    second_site: Vec<u32>,
    /// Flattened `N × ⌈M/64⌉` replica bitmask, object-major: bit `x` of
    /// object `k`'s word row is `X_xk`. A word-granular mirror of the
    /// scheme's membership used to prune non-replicator candidate loops
    /// without per-site [`ReplicationScheme::holds`] probes (each of
    /// which re-derives a site-major bit index with a multiply).
    replica_mask: Vec<u64>,
    /// Words per object row in `replica_mask` (`⌈M/64⌉`).
    mask_words: usize,
    /// `V_k` per object.
    object_cost: Vec<u64>,
    /// Running total `D`.
    total: u64,
    /// Flip log consumed by [`undo`](Self::undo).
    log: Vec<FlipRecord>,
    /// Replica flips applied so far (adds, removes and undos alike).
    flips: u64,
    /// Second-nearest rescans performed — the only super-O(M) step of a
    /// flip, so the ratio `rescans / flips` tells how often a removal hits
    /// the cached top-2.
    rescans: u64,
}

impl<'p> CostEvaluator<'p> {
    /// Builds the evaluator for an arbitrary starting scheme in
    /// `O(Σ_k M·|R_k|)`.
    ///
    /// # Panics
    ///
    /// Panics if the scheme shape mismatches the problem.
    pub fn new(problem: &'p Problem, scheme: ReplicationScheme) -> Self {
        let m = problem.num_sites();
        let n = problem.num_objects();
        assert!(
            scheme.num_sites() == m && scheme.num_objects() == n,
            "scheme is {}x{} but problem is {m}x{n}",
            scheme.num_sites(),
            scheme.num_objects(),
        );
        let mask_words = m.div_ceil(64).max(1);
        let mut eval = Self {
            problem,
            scheme,
            best_cost: vec![u64::MAX; n * m],
            best_site: vec![NO_SITE; n * m],
            second_cost: vec![u64::MAX; n * m],
            second_site: vec![NO_SITE; n * m],
            replica_mask: vec![0; n * mask_words],
            mask_words,
            object_cost: vec![0; n],
            total: 0,
            log: Vec::new(),
            flips: 0,
            rescans: 0,
        };
        for k in 0..n {
            eval.rebuild_object(k);
        }
        eval
    }

    /// Builds the evaluator for the primary-only allocation (`D = D′`).
    pub fn primary_only(problem: &'p Problem) -> Self {
        Self::new(problem, ReplicationScheme::primary_only(problem))
    }

    /// The instance being evaluated.
    pub fn problem(&self) -> &'p Problem {
        self.problem
    }

    /// The current scheme (read-only: mutate through
    /// [`apply_add`](Self::apply_add) / [`apply_remove`](Self::apply_remove)
    /// so the cache stays coherent).
    pub fn scheme(&self) -> &ReplicationScheme {
        &self.scheme
    }

    /// Consumes the evaluator, returning the scheme.
    pub fn into_scheme(self) -> ReplicationScheme {
        self.scheme
    }

    /// The cached total NTC `D` (equal to
    /// [`Problem::total_cost`]`(self.scheme())` at all times).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The cached per-object NTC `V_k`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn object_cost(&self, object: ObjectId) -> u64 {
        self.object_cost[object.index()]
    }

    /// Percentage of NTC saved relative to primary-only, from the cache.
    pub fn savings_percent(&self) -> f64 {
        let dp = self.problem.d_prime();
        if dp == 0 {
            return 0.0;
        }
        100.0 * (dp as f64 - self.total as f64) / dp as f64
    }

    /// The cached nearest replicator `SN_k(i)` and its cost (ties broken
    /// toward the lower site index, matching
    /// [`ReplicationScheme::nearest_replica`]).
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn nearest(&self, site: SiteId, object: ObjectId) -> (SiteId, u64) {
        let idx = self.cell(site, object);
        (
            SiteId::new(self.best_site[idx] as usize),
            self.best_cost[idx],
        )
    }

    /// The cached nearest-replica cost `C(i, SN_k(i))` alone — the term the
    /// Eq. 5 benefit needs.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    #[inline]
    pub fn nearest_cost(&self, site: SiteId, object: ObjectId) -> u64 {
        self.best_cost[self.cell(site, object)]
    }

    /// The cached second-nearest replicator, or `None` when the object has a
    /// single replica.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn second_nearest(&self, site: SiteId, object: ObjectId) -> Option<(SiteId, u64)> {
        let idx = self.cell(site, object);
        (self.second_site[idx] != NO_SITE).then(|| {
            (
                SiteId::new(self.second_site[idx] as usize),
                self.second_cost[idx],
            )
        })
    }

    /// Number of flips recorded for [`undo`](Self::undo).
    pub fn history_len(&self) -> usize {
        self.log.len()
    }

    /// Lifetime count of replica flips applied through this evaluator
    /// (adds, removes and undos alike). Plain always-on counters: callers
    /// publish them to a telemetry [`Recorder`](crate::telemetry::Recorder)
    /// after a run.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Lifetime count of O(|R_k|) second-nearest rescans triggered by
    /// removals whose replica sat in a cached top-2 slot.
    pub fn rescans(&self) -> u64 {
        self.rescans
    }

    /// Forgets the undo history (the cache itself is unaffected).
    pub fn clear_history(&mut self) {
        self.log.clear();
    }

    /// Read-only O(M) peek: exact change in `D` from adding a replica,
    /// computed entirely from the cache with zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `site` already replicates `object` or ids are out of range.
    pub fn delta_add(&self, site: SiteId, object: ObjectId) -> i64 {
        assert!(
            !self.scheme.holds(site, object),
            "delta_add requires a non-replicator site"
        );
        let i = site.index();
        let k = object.index();
        let m = self.problem.num_sites();
        let base = k * m;
        let o = self.problem.object_size(object);
        let sp = self.problem.primary(object).index();
        let c_isp = self.problem.costs().cost(i, sp);
        let w_tot = self.problem.total_writes(object);
        let i_row = self.problem.costs().row(i);
        let r_row = self.problem.object_reads(object);
        let w_i = self.problem.object_writes(object)[i];

        let old_i = o * (r_row[i] * self.best_cost[base + i] + w_i * c_isp);
        let new_i = w_tot * o * c_isp;
        let mut delta = new_i as i64 - old_i as i64;

        // Word-wise candidate pruning: only non-replicators can re-route
        // reads to the new replica, and the mask row yields exactly those
        // sites (`i` itself is among them — it was asserted non-replicating
        // above — so it is skipped explicitly).
        self.for_each_non_replicator(k, |x| {
            if x == i {
                return;
            }
            let c = i_row[x];
            let bc = self.best_cost[base + x];
            if c < bc {
                delta -= (r_row[x] * o * (bc - c)) as i64;
            }
        });
        delta
    }

    /// Read-only O(M) peek: exact change in `D` from removing a replica —
    /// the second-nearest cache answers "where would reads re-route"
    /// without touching the replicator list.
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a replicator, is the primary, or ids are out
    /// of range.
    pub fn delta_remove(&self, site: SiteId, object: ObjectId) -> i64 {
        assert!(
            self.scheme.holds(site, object),
            "delta_remove requires a replicator site"
        );
        assert!(
            self.problem.primary(object) != site,
            "the primary copy cannot be removed"
        );
        let i = site.index();
        let k = object.index();
        let m = self.problem.num_sites();
        let base = k * m;
        let o = self.problem.object_size(object);
        let sp = self.problem.primary(object).index();
        let c_isp = self.problem.costs().cost(i, sp);
        let w_tot = self.problem.total_writes(object);
        let r_row = self.problem.object_reads(object);
        let w_i = self.problem.object_writes(object)[i];

        // Site i itself re-routes to its second-nearest (it exists: the
        // primary is always a distinct replicator here).
        let old_i = w_tot * o * c_isp;
        let new_i = o * (r_row[i] * self.second_cost[base + i] + w_i * c_isp);
        let mut delta = new_i as i64 - old_i as i64;

        // Word-wise candidate pruning over non-replicators; `i` is still a
        // replicator here (asserted above), so the mask row excludes it.
        self.for_each_non_replicator(k, |x| {
            if self.best_site[base + x] as usize == i {
                delta +=
                    (r_row[x] * o * (self.second_cost[base + x] - self.best_cost[base + x])) as i64;
            }
        });
        delta
    }

    /// Adds a replica and folds its exact delta into the cached total in
    /// O(M). Returns the delta (new − old, negative when the replica helps).
    ///
    /// # Errors
    ///
    /// Propagates [`ReplicationScheme::add_replica`] errors (capacity,
    /// duplicate replica); the cache is untouched on error.
    pub fn apply_add(&mut self, site: SiteId, object: ObjectId) -> Result<i64> {
        self.scheme.add_replica(self.problem, site, object)?;
        self.flips += 1;
        let delta = self.integrate_add(site.index(), object.index());
        self.log.push(FlipRecord {
            added: true,
            site: site.index() as u32,
            object: object.index() as u32,
        });
        Ok(delta)
    }

    /// Removes a replica and folds its exact delta into the cached total
    /// (O(M) plus a second-nearest rescan for the affected sites). Returns
    /// the delta.
    ///
    /// # Errors
    ///
    /// Propagates [`ReplicationScheme::remove_replica`] errors (not a
    /// replica, primary); the cache is untouched on error.
    pub fn apply_remove(&mut self, site: SiteId, object: ObjectId) -> Result<i64> {
        self.scheme.remove_replica(self.problem, site, object)?;
        self.flips += 1;
        let delta = self.integrate_remove(site.index(), object.index());
        self.log.push(FlipRecord {
            added: false,
            site: site.index() as u32,
            object: object.index() as u32,
        });
        Ok(delta)
    }

    /// Reverts the most recent un-undone flip by applying its inverse.
    /// Returns the delta of the inverse flip, or `None` when the log is
    /// empty.
    ///
    /// Because the cached state is a pure function of the replica set (see
    /// the module docs), the inverse flip restores it exactly.
    pub fn undo(&mut self) -> Option<i64> {
        let record = self.log.pop()?;
        self.flips += 1;
        let site = SiteId::new(record.site as usize);
        let object = ObjectId::new(record.object as usize);
        let delta = if record.added {
            self.scheme
                .remove_replica(self.problem, site, object)
                .expect("undo of an add always removes a non-primary replica");
            self.integrate_remove(site.index(), object.index())
        } else {
            self.scheme
                .add_replica(self.problem, site, object)
                .expect("undo of a remove always fits the freed capacity");
            self.integrate_add(site.index(), object.index())
        };
        Some(delta)
    }

    #[inline]
    fn cell(&self, site: SiteId, object: ObjectId) -> usize {
        let m = self.problem.num_sites();
        assert!(site.index() < m && object.index() < self.problem.num_objects());
        object.index() * m + site.index()
    }

    /// Object `k`'s replica membership words (bit `x` ⇔ site `x`
    /// replicates `k`).
    #[inline]
    fn mask_row(&self, k: usize) -> &[u64] {
        &self.replica_mask[k * self.mask_words..(k + 1) * self.mask_words]
    }

    #[inline]
    fn set_mask_bit(&mut self, k: usize, x: usize) {
        self.replica_mask[k * self.mask_words + x / 64] |= 1u64 << (x % 64);
    }

    #[inline]
    fn clear_mask_bit(&mut self, k: usize, x: usize) {
        self.replica_mask[k * self.mask_words + x / 64] &= !(1u64 << (x % 64));
    }

    /// Whether site `x` replicates object `k`, from the mask mirror.
    #[inline]
    fn is_replicator(&self, k: usize, x: usize) -> bool {
        self.replica_mask[k * self.mask_words + x / 64] & (1u64 << (x % 64)) != 0
    }

    /// Calls `f(x)` for every *non*-replicator site of object `k`,
    /// word-wise: fully-replicated words are skipped in one test and
    /// candidate bits are popped with `trailing_zeros`, so the loop
    /// never probes membership per site.
    #[inline]
    fn for_each_non_replicator(&self, k: usize, mut f: impl FnMut(usize)) {
        let m = self.problem.num_sites();
        let row = self.mask_row(k);
        for (wi, &word) in row.iter().enumerate() {
            let base = wi * 64;
            let mut cand = !word;
            if base + 64 > m {
                // Mask off the bits past the last site in the tail word.
                cand &= (1u64 << (m - base)) - 1;
            }
            while cand != 0 {
                let x = base + cand.trailing_zeros() as usize;
                cand &= cand - 1;
                f(x);
            }
        }
    }

    /// Rebuilds one object's top-2 arrays and `V_k` from the scheme.
    fn rebuild_object(&mut self, k: usize) {
        let m = self.problem.num_sites();
        let object = ObjectId::new(k);
        let base = k * m;
        let o = self.problem.object_size(object);
        let sp = self.problem.primary(object).index();
        let w_tot = self.problem.total_writes(object);
        let sp_row = self.problem.costs().row(sp);

        self.best_cost[base..base + m].fill(u64::MAX);
        self.best_site[base..base + m].fill(NO_SITE);
        self.second_cost[base..base + m].fill(u64::MAX);
        self.second_site[base..base + m].fill(NO_SITE);
        let mask_row = &mut self.replica_mask[k * self.mask_words..(k + 1) * self.mask_words];
        mask_row.fill(0);
        for &j in self.scheme.replicator_indices(k) {
            mask_row[j / 64] |= 1u64 << (j % 64);
        }

        let mut broadcast = 0u64;
        for &j in self.scheme.replicator_indices(k) {
            broadcast += sp_row[j];
            let row = self.problem.costs().row(j);
            for (x, &c) in row.iter().enumerate() {
                Self::insert_top2(
                    &mut self.best_cost[base + x],
                    &mut self.best_site[base + x],
                    &mut self.second_cost[base + x],
                    &mut self.second_site[base + x],
                    c,
                    j as u32,
                );
            }
        }

        // Branchless V_k: stream the contiguous per-object rows over every
        // site, then subtract the replicator write terms collected above —
        // replicators contribute zero read traffic (their cached nearest
        // distance is 0), so no per-site membership test is needed.
        let r_row = self.problem.object_reads(object);
        let w_row = self.problem.object_writes(object);
        let mut replica_writes = 0u64;
        for &j in self.scheme.replicator_indices(k) {
            replica_writes += w_row[j] * sp_row[j];
        }
        let traffic = kernels::traffic_scan(r_row, w_row, &self.best_cost[base..base + m], sp_row);
        let cost = w_tot * o * broadcast + o * (traffic - replica_writes);
        self.total = self.total - self.object_cost[k] + cost;
        self.object_cost[k] = cost;
    }

    /// Inserts `(cost, site)` into a top-2 slot under the canonical
    /// `(cost, site)` order.
    #[inline]
    fn insert_top2(
        best_cost: &mut u64,
        best_site: &mut u32,
        second_cost: &mut u64,
        second_site: &mut u32,
        cost: u64,
        site: u32,
    ) -> bool {
        if (cost, site) < (*best_cost, *best_site) {
            *second_cost = *best_cost;
            *second_site = *best_site;
            *best_cost = cost;
            *best_site = site;
            true
        } else {
            if (cost, site) < (*second_cost, *second_site) {
                *second_cost = cost;
                *second_site = site;
            }
            false
        }
    }

    /// Folds a just-applied add of `(site i, object k)` into the cache.
    /// The scheme already contains the new replica.
    fn integrate_add(&mut self, i: usize, k: usize) -> i64 {
        let m = self.problem.num_sites();
        let object = ObjectId::new(k);
        let base = k * m;
        let o = self.problem.object_size(object);
        let sp = self.problem.primary(object).index();
        let c_isp = self.problem.costs().cost(i, sp);
        let w_tot = self.problem.total_writes(object);
        let i_row = self.problem.costs().row(i);
        let r_row = self.problem.object_reads(object);
        let w_i = self.problem.object_writes(object)[i];

        // The scheme already contains the new replica: mirror it first so
        // the membership probes below see coherent state.
        self.set_mask_bit(k, i);

        let mut delta: i64 = 0;
        for (x, &c_ix) in i_row.iter().enumerate() {
            let idx = base + x;
            let old_best = self.best_cost[idx];
            let replaced_best = Self::insert_top2(
                &mut self.best_cost[idx],
                &mut self.best_site[idx],
                &mut self.second_cost[idx],
                &mut self.second_site[idx],
                c_ix,
                i as u32,
            );
            if x == i {
                // Stops remote reads and write shipping, joins the broadcast.
                delta +=
                    (w_tot * o * c_isp) as i64 - (o * (r_row[i] * old_best + w_i * c_isp)) as i64;
            } else if replaced_best && !self.is_replicator(k, x) {
                // A non-replicator re-routes its reads to the new replica.
                delta -= (r_row[x] * o * (old_best - self.best_cost[idx])) as i64;
            }
        }
        self.apply_object_delta(k, delta);
        delta
    }

    /// Folds a just-applied remove of `(site i, object k)` into the cache.
    /// The scheme no longer contains the replica.
    fn integrate_remove(&mut self, i: usize, k: usize) -> i64 {
        let m = self.problem.num_sites();
        let object = ObjectId::new(k);
        let base = k * m;
        let o = self.problem.object_size(object);
        let sp = self.problem.primary(object).index();
        let c_isp = self.problem.costs().cost(i, sp);
        let w_tot = self.problem.total_writes(object);
        let r_row = self.problem.object_reads(object);
        let w_i = self.problem.object_writes(object)[i];

        // The scheme no longer contains the replica: mirror the removal
        // before probing membership below.
        self.clear_mask_bit(k, i);

        let mut delta: i64 = 0;
        for x in 0..m {
            let idx = base + x;
            if self.best_site[idx] as usize == i {
                // The removed replica was the nearest: promote the second
                // (it exists — the primary is always another replicator)
                // and rescan for a new second.
                let old_best = self.best_cost[idx];
                self.best_cost[idx] = self.second_cost[idx];
                self.best_site[idx] = self.second_site[idx];
                self.rescan_second(k, x);
                if x == i {
                    // Resumes remote reads/writes, leaves the broadcast.
                    delta += (o * (r_row[i] * self.best_cost[idx] + w_i * c_isp)) as i64
                        - (w_tot * o * c_isp) as i64;
                } else if !self.is_replicator(k, x) {
                    delta += (r_row[x] * o * (self.best_cost[idx] - old_best)) as i64;
                }
            } else if self.second_site[idx] as usize == i {
                self.rescan_second(k, x);
            }
        }
        self.apply_object_delta(k, delta);
        delta
    }

    /// Recomputes `second(k, x)` by scanning the replicator list, excluding
    /// the current best. O(|R_k|).
    fn rescan_second(&mut self, k: usize, x: usize) {
        self.rescans += 1;
        let m = self.problem.num_sites();
        let idx = k * m + x;
        let best_site = self.best_site[idx];
        let mut cost = u64::MAX;
        let mut site = NO_SITE;
        for &j in self.scheme.replicator_indices(k) {
            if j as u32 == best_site {
                continue;
            }
            let c = self.problem.costs().cost(j, x);
            if (c, j as u32) < (cost, site) {
                cost = c;
                site = j as u32;
            }
        }
        self.second_cost[idx] = cost;
        self.second_site[idx] = site;
    }

    #[inline]
    fn apply_object_delta(&mut self, k: usize, delta: i64) {
        let v = self.object_cost[k] as i64 + delta;
        debug_assert!(v >= 0, "object cost went negative");
        self.object_cost[k] = v as u64;
        self.total = (self.total as i64 + delta) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    /// 3 sites on a line (C(0,1)=1, C(1,2)=1, C(0,2)=2), 2 objects.
    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 2])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    fn assert_coherent(eval: &CostEvaluator<'_>) {
        let p = eval.problem();
        assert_eq!(eval.total(), p.total_cost(eval.scheme()), "total drifted");
        for k in p.objects() {
            assert_eq!(
                eval.object_cost(k),
                p.object_cost(eval.scheme(), k),
                "V_{k} drifted"
            );
            for i in p.sites() {
                let (sn, c) = eval.nearest(i, k);
                let (sn_ref, c_ref) = eval.scheme().nearest_replica(p, i, k);
                assert_eq!((sn, c), (sn_ref, c_ref), "nearest({i}, {k}) drifted");
            }
        }
    }

    #[test]
    fn primary_only_matches_d_prime() {
        let p = problem();
        let eval = CostEvaluator::primary_only(&p);
        assert_eq!(eval.total(), p.d_prime());
        assert_eq!(eval.savings_percent(), 0.0);
        assert_coherent(&eval);
    }

    #[test]
    fn apply_add_and_remove_track_full_recomputation() {
        let p = problem();
        let mut eval = CostEvaluator::primary_only(&p);
        let d1 = eval.apply_add(SiteId::new(2), ObjectId::new(0)).unwrap();
        assert_coherent(&eval);
        let d2 = eval.apply_add(SiteId::new(1), ObjectId::new(0)).unwrap();
        assert_coherent(&eval);
        let d3 = eval.apply_add(SiteId::new(0), ObjectId::new(1)).unwrap();
        assert_coherent(&eval);
        let before = eval.total() as i64 - d3 - d2 - d1;
        assert_eq!(before, p.d_prime() as i64);

        let d4 = eval.apply_remove(SiteId::new(2), ObjectId::new(0)).unwrap();
        assert_coherent(&eval);
        let d5 = eval.apply_remove(SiteId::new(1), ObjectId::new(0)).unwrap();
        assert_coherent(&eval);
        assert_eq!(
            eval.total() as i64,
            p.d_prime() as i64 + d1 + d2 + d3 + d4 + d5
        );
    }

    #[test]
    fn peek_deltas_match_apply() {
        let p = problem();
        let mut eval = CostEvaluator::primary_only(&p);
        for k in p.objects() {
            for i in p.sites() {
                if eval.scheme().holds(i, k) {
                    continue;
                }
                let peek = eval.delta_add(i, k);
                assert_eq!(peek, p.delta_add_replica(eval.scheme(), i, k));
                let applied = eval.apply_add(i, k).unwrap();
                assert_eq!(peek, applied, "add ({i}, {k})");
                let peek_back = eval.delta_remove(i, k);
                assert_eq!(peek_back, p.delta_remove_replica(eval.scheme(), i, k));
                let removed = eval.apply_remove(i, k).unwrap();
                assert_eq!(peek_back, removed);
                assert_eq!(applied + removed, 0, "flip round trip ({i}, {k})");
            }
        }
        assert_coherent(&eval);
    }

    #[test]
    fn undo_restores_exact_state() {
        let p = problem();
        let mut eval = CostEvaluator::primary_only(&p);
        let reference = eval.clone();

        eval.apply_add(SiteId::new(2), ObjectId::new(0)).unwrap();
        eval.apply_add(SiteId::new(1), ObjectId::new(0)).unwrap();
        eval.apply_remove(SiteId::new(2), ObjectId::new(0)).unwrap();
        eval.apply_add(SiteId::new(0), ObjectId::new(1)).unwrap();
        assert_eq!(eval.history_len(), 4);

        while eval.undo().is_some() {}
        assert_eq!(eval.history_len(), 0);
        assert_eq!(eval.total(), reference.total());
        assert_eq!(eval.scheme(), reference.scheme());
        assert_eq!(eval.best_cost, reference.best_cost);
        assert_eq!(eval.best_site, reference.best_site);
        assert_eq!(eval.second_cost, reference.second_cost);
        assert_eq!(eval.second_site, reference.second_site);
        assert_eq!(eval.replica_mask, reference.replica_mask);
        assert_eq!(eval.object_cost, reference.object_cost);
        assert_coherent(&eval);
    }

    #[test]
    fn second_nearest_tracks_membership() {
        let p = problem();
        let mut eval = CostEvaluator::primary_only(&p);
        // One replica: no second-nearest anywhere.
        assert_eq!(eval.second_nearest(SiteId::new(1), ObjectId::new(0)), None);
        eval.apply_add(SiteId::new(2), ObjectId::new(0)).unwrap();
        // Replicas {0, 2}: from site 1 both cost 1, canonical order prefers
        // site 0 as nearest, site 2 as second.
        assert_eq!(
            eval.nearest(SiteId::new(1), ObjectId::new(0)),
            (SiteId::new(0), 1)
        );
        assert_eq!(
            eval.second_nearest(SiteId::new(1), ObjectId::new(0)),
            Some((SiteId::new(2), 1))
        );
    }

    #[test]
    fn errors_leave_cache_untouched() {
        let p = problem();
        let mut eval = CostEvaluator::primary_only(&p);
        let snapshot = eval.clone();
        // Adding an existing replica fails.
        assert!(eval.apply_add(SiteId::new(0), ObjectId::new(0)).is_err());
        // Removing a primary fails.
        assert!(eval.apply_remove(SiteId::new(0), ObjectId::new(0)).is_err());
        assert_eq!(eval.total(), snapshot.total());
        assert_eq!(eval.scheme(), snapshot.scheme());
        assert_eq!(eval.history_len(), 0);
    }

    #[test]
    fn flip_and_rescan_counters_track_operations() {
        let p = problem();
        let mut eval = CostEvaluator::primary_only(&p);
        assert_eq!((eval.flips(), eval.rescans()), (0, 0));
        eval.apply_add(SiteId::new(2), ObjectId::new(0)).unwrap();
        eval.apply_add(SiteId::new(1), ObjectId::new(0)).unwrap();
        assert_eq!(eval.flips(), 2);
        assert_eq!(eval.rescans(), 0, "adds never rescan");
        eval.apply_remove(SiteId::new(1), ObjectId::new(0)).unwrap();
        assert_eq!(eval.flips(), 3);
        assert!(eval.rescans() > 0, "removing a cached replicator rescans");
        let before = eval.flips();
        eval.undo().unwrap();
        assert_eq!(eval.flips(), before + 1, "undo is a flip too");
        // Failed operations leave the counters alone.
        let (f, r) = (eval.flips(), eval.rescans());
        assert!(eval.apply_add(SiteId::new(0), ObjectId::new(0)).is_err());
        assert_eq!((eval.flips(), eval.rescans()), (f, r));
    }

    #[test]
    fn new_accepts_arbitrary_schemes() {
        let p = problem();
        let mut scheme = ReplicationScheme::primary_only(&p);
        scheme
            .add_replica(&p, SiteId::new(2), ObjectId::new(0))
            .unwrap();
        scheme
            .add_replica(&p, SiteId::new(0), ObjectId::new(1))
            .unwrap();
        let eval = CostEvaluator::new(&p, scheme.clone());
        assert_eq!(eval.total(), p.total_cost(&scheme));
        assert_coherent(&eval);
    }
}
