use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! index_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(usize);

        impl $name {
            /// Wraps a dense index.
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The underlying dense index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

index_newtype! {
    /// Identifier of a site `S(i)`, a dense index in `0..M`.
    ///
    /// # Examples
    ///
    /// ```
    /// use drp_core::SiteId;
    /// let s = SiteId::new(3);
    /// assert_eq!(s.index(), 3);
    /// assert_eq!(s.to_string(), "3");
    /// ```
    SiteId
}

index_newtype! {
    /// Identifier of an object `O(k)`, a dense index in `0..N`.
    ///
    /// # Examples
    ///
    /// ```
    /// use drp_core::ObjectId;
    /// let o = ObjectId::from(7usize);
    /// assert_eq!(usize::from(o), 7);
    /// ```
    ObjectId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(SiteId::new(5).index(), 5);
        assert_eq!(usize::from(ObjectId::new(9)), 9);
        assert_eq!(SiteId::from(2), SiteId::new(2));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SiteId::new(1) < SiteId::new(2));
        assert!(ObjectId::new(0) < ObjectId::new(10));
    }

    #[test]
    fn distinct_types_do_not_conflate() {
        // This is a compile-time property; we just exercise both displays.
        assert_eq!(format!("{} {}", SiteId::new(1), ObjectId::new(2)), "1 2");
    }
}
