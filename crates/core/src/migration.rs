//! Migration planning between replication schemes.
//!
//! Section 5 of the paper: "The newly defined schemes are realized during
//! night hours through object migration and deallocation." This module
//! computes that realization plan — which replicas to create (each fetched
//! from the nearest *existing* holder) and which to deallocate — plus the
//! one-off NTC the migration itself costs, so a monitor can weigh a scheme
//! switch against its transition price.

use serde::{Deserialize, Serialize};

use crate::{CoreError, ObjectId, Problem, ReplicationScheme, Result, SiteId};

/// One replica creation: fetch `object` to `site` from `source`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Addition {
    /// The site gaining the replica.
    pub site: SiteId,
    /// The replicated object.
    pub object: ObjectId,
    /// The nearest old holder the data is fetched from.
    pub source: SiteId,
    /// Transfer cost of the fetch (`o_k · C(site, source)`).
    pub transfer_cost: u64,
}

/// The realization plan between two schemes over the same instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// Replicas to create, each with its cheapest source.
    pub additions: Vec<Addition>,
    /// Replicas to deallocate (free, in NTC terms).
    pub removals: Vec<(SiteId, ObjectId)>,
}

impl MigrationPlan {
    /// Total one-off NTC of carrying out the plan.
    pub fn transfer_cost(&self) -> u64 {
        self.additions.iter().map(|a| a.transfer_cost).sum()
    }

    /// Number of replica movements (additions + removals).
    pub fn moves(&self) -> usize {
        self.additions.len() + self.removals.len()
    }

    /// Applies the plan to `old`, producing the target scheme (removals
    /// first, so freed capacity is available to the additions).
    ///
    /// # Errors
    ///
    /// Propagates scheme-manipulation errors; a plan produced by
    /// [`plan_migration`] over matching schemes always applies cleanly.
    pub fn apply(&self, problem: &Problem, old: &ReplicationScheme) -> Result<ReplicationScheme> {
        let mut scheme = old.clone();
        for &(site, object) in &self.removals {
            scheme.remove_replica(problem, site, object)?;
        }
        for addition in &self.additions {
            scheme.add_replica(problem, addition.site, addition.object)?;
        }
        Ok(scheme)
    }

    /// How many access periods of the new scheme's per-period savings are
    /// needed to amortize the migration (`None` when the new scheme saves
    /// nothing over the old one).
    pub fn payback_periods(
        &self,
        problem: &Problem,
        old: &ReplicationScheme,
        new: &ReplicationScheme,
    ) -> Option<f64> {
        let old_cost = problem.total_cost(old);
        let new_cost = problem.total_cost(new);
        (new_cost < old_cost).then(|| self.transfer_cost() as f64 / (old_cost - new_cost) as f64)
    }
}

/// Plans the migration from `old` to `new`.
///
/// Additions are sourced from the nearest holder in the *old* scheme (all
/// fetches can proceed in parallel before any deallocation, so sources are
/// guaranteed to exist).
///
/// # Errors
///
/// Returns [`CoreError::InvalidInstance`] when the schemes' shapes differ
/// from the instance.
pub fn plan_migration(
    problem: &Problem,
    old: &ReplicationScheme,
    new: &ReplicationScheme,
) -> Result<MigrationPlan> {
    for scheme in [old, new] {
        if scheme.num_sites() != problem.num_sites()
            || scheme.num_objects() != problem.num_objects()
        {
            return Err(CoreError::InvalidInstance {
                reason: "scheme shape differs from the instance".into(),
            });
        }
    }
    let mut additions = Vec::new();
    let mut removals = Vec::new();
    for k in problem.objects() {
        for i in problem.sites() {
            match (old.holds(i, k), new.holds(i, k)) {
                (false, true) => {
                    let (source, cost) = old.nearest_replica(problem, i, k);
                    additions.push(Addition {
                        site: i,
                        object: k,
                        source,
                        transfer_cost: problem.object_size(k) * cost,
                    });
                }
                (true, false) => removals.push((i, k)),
                _ => {}
            }
        }
    }
    Ok(MigrationPlan {
        additions,
        removals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 20])
            .writes(vec![1, 0, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn identical_schemes_need_no_moves() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        let plan = plan_migration(&p, &s, &s).unwrap();
        assert_eq!(plan.moves(), 0);
        assert_eq!(plan.transfer_cost(), 0);
    }

    #[test]
    fn additions_fetch_from_nearest_old_holder() {
        let p = problem();
        let old = ReplicationScheme::primary_only(&p);
        let mut new = old.clone();
        new.add_replica(&p, SiteId::new(2), ObjectId::new(0))
            .unwrap();
        let plan = plan_migration(&p, &old, &new).unwrap();
        assert_eq!(plan.additions.len(), 1);
        let a = plan.additions[0];
        assert_eq!(a.source, SiteId::new(0)); // only old holder
        assert_eq!(a.transfer_cost, 10 * 2); // o=10 × C(2,0)=2
        assert!(plan.removals.is_empty());
    }

    #[test]
    fn removals_are_free_and_listed() {
        let p = problem();
        let mut old = ReplicationScheme::primary_only(&p);
        old.add_replica(&p, SiteId::new(1), ObjectId::new(0))
            .unwrap();
        let new = ReplicationScheme::primary_only(&p);
        let plan = plan_migration(&p, &old, &new).unwrap();
        assert_eq!(plan.removals, vec![(SiteId::new(1), ObjectId::new(0))]);
        assert_eq!(plan.transfer_cost(), 0);
    }

    #[test]
    fn payback_reflects_the_savings_rate() {
        let p = problem();
        let old = ReplicationScheme::primary_only(&p);
        let mut new = old.clone();
        // Site 2 reads object 0 heavily: replicating there pays back fast.
        new.add_replica(&p, SiteId::new(2), ObjectId::new(0))
            .unwrap();
        let plan = plan_migration(&p, &old, &new).unwrap();
        let payback = plan.payback_periods(&p, &old, &new).unwrap();
        // Migration costs 20; per-period saving is 20·10·2 − broadcast
        // overhead (1·10·2) = 380.
        assert!(payback < 0.1, "payback {payback}");
        // Reverse direction saves nothing.
        assert_eq!(
            plan_migration(&p, &new, &old)
                .unwrap()
                .payback_periods(&p, &new, &old),
            None
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let p = problem();
        let other = {
            let costs = CostMatrix::from_rows(2, vec![0, 1, 1, 0]).unwrap();
            Problem::builder(costs)
                .capacities(vec![10, 10])
                .object(1, SiteId::new(0))
                .build()
                .unwrap()
        };
        let s_small = ReplicationScheme::primary_only(&other);
        let s_big = ReplicationScheme::primary_only(&p);
        assert!(plan_migration(&p, &s_small, &s_big).is_err());
    }
}
