//! Graph-backed DRP instances and the k-nearest incremental evaluator —
//! the structures that break the dense `M × M` ceiling.
//!
//! A [`Problem`] carries a validated [`CostMatrix`]: 800 MB of shortest
//! paths at `M = 10 000` before a single placement decision is made. A
//! [`SparseProblem`] keeps the [`Graph`] itself plus the workload tables
//! (`O(M·N + E)`), and answers every cost question with Dijkstra runs:
//!
//! * [`SparseProblem::total_cost`] — the *exact* Eq. 4 NTC of a placement,
//!   via one multi-source Dijkstra per object (nearest-replica reads) on
//!   top of one Dijkstra per distinct primary (write shipping and the
//!   update broadcast);
//! * [`SparseEvaluator`] — the k-nearest rewrite of [`CostEvaluator`]'s
//!   nearest/second-nearest replicator cache: candidates come from
//!   [`SparseCostRows`] instead of full matrix rows, so a replica flip
//!   touches `O(k)` sites instead of `O(M)`. Reads that would route to a
//!   replica beyond a site's k nearest fall back to the primary distance,
//!   making the evaluator's NTC an upper bound that coincides with the
//!   exact value whenever `k` covers the true nearest replica (always when
//!   `k ≥ M`).
//!
//! [`CostMatrix`]: drp_net::CostMatrix
//! [`CostEvaluator`]: crate::CostEvaluator

use drp_net::shortest::{self, UNREACHABLE};
use drp_net::{CostMatrix, Graph, SparseCostRows};

use crate::{CoreError, DenseMatrix, ObjectId, Problem, Result, SiteId};

/// A DRP instance over an explicit network graph, without the dense
/// all-pairs cost matrix.
///
/// Holds the same data as [`Problem`] — object sizes, primaries, site
/// capacities, read/write tables, the `D_prime`/`V_prime` normalization
/// baselines — but distances live implicitly in the graph. Placements are
/// plain sorted replica lists (one `Vec<usize>` per object, always
/// containing the primary) rather than [`ReplicationScheme`]s, since the
/// scheme bitset types are married to `Problem`.
///
/// [`ReplicationScheme`]: crate::ReplicationScheme
#[derive(Debug, Clone, PartialEq)]
pub struct SparseProblem {
    graph: Graph,
    object_sizes: Vec<u64>,
    primaries: Vec<SiteId>,
    capacities: Vec<u64>,
    reads: DenseMatrix<u64>,
    writes: DenseMatrix<u64>,
    reads_by_object: DenseMatrix<u64>,
    writes_by_object: DenseMatrix<u64>,
    total_reads: Vec<u64>,
    total_writes: Vec<u64>,
    write_volumes: Vec<u64>,
    d_prime: u64,
    v_prime: Vec<u64>,
}

impl SparseProblem {
    /// Builds and validates a sparse instance. `reads` and `writes` are
    /// site-major `M × N` tables, the same orientation as
    /// [`Problem::read_matrix`].
    ///
    /// Validation mirrors [`Problem::builder`]: positive object sizes,
    /// primaries in range, every site able to store its own primary
    /// copies, and the Eq. 4 overflow guard — here with the sum of all
    /// edge costs standing in for the unknown network diameter (no
    /// shortest path can cost more than every edge once). The graph must
    /// additionally be connected.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] describing the first
    /// violation.
    pub fn new(
        graph: Graph,
        object_sizes: Vec<u64>,
        primaries: Vec<SiteId>,
        capacities: Vec<u64>,
        reads: DenseMatrix<u64>,
        writes: DenseMatrix<u64>,
    ) -> Result<Self> {
        let invalid = |reason: String| CoreError::InvalidInstance { reason };
        let m = graph.num_sites();
        let n = object_sizes.len();
        if m == 0 {
            return Err(invalid("an instance needs at least one site".into()));
        }
        if n == 0 {
            return Err(invalid("an instance needs at least one object".into()));
        }
        if !graph.is_connected() {
            return Err(invalid("the network graph must be connected".into()));
        }
        if primaries.len() != n {
            return Err(invalid(format!(
                "{} primaries supplied for {n} objects",
                primaries.len()
            )));
        }
        if capacities.len() != m {
            return Err(invalid(format!(
                "{} capacities supplied for {m} sites",
                capacities.len()
            )));
        }
        for (table, what) in [(&reads, "read"), (&writes, "write")] {
            if table.rows() != m || table.cols() != n {
                return Err(invalid(format!(
                    "{what} table is {}x{}, expected {m}x{n}",
                    table.rows(),
                    table.cols()
                )));
            }
        }
        if object_sizes.contains(&0) {
            return Err(invalid("object sizes must be positive".into()));
        }
        let mut primary_load = vec![0u64; m];
        for (k, p) in primaries.iter().enumerate() {
            if p.index() >= m {
                return Err(CoreError::SiteOutOfRange {
                    site: *p,
                    num_sites: m,
                });
            }
            primary_load[p.index()] += object_sizes[k];
        }
        for (i, (&load, &cap)) in primary_load.iter().zip(&capacities).enumerate() {
            if load > cap {
                return Err(invalid(format!(
                    "site {i} stores primary copies totalling {load} data units \
                     but has capacity {cap}"
                )));
            }
        }

        let mut reads_by_object = DenseMatrix::zeros(n, m);
        let mut writes_by_object = DenseMatrix::zeros(n, m);
        for i in 0..m {
            for k in 0..n {
                reads_by_object.set(k, i, *reads.get(i, k));
                writes_by_object.set(k, i, *writes.get(i, k));
            }
        }
        let total_reads: Vec<u64> = (0..n)
            .map(|k| reads_by_object.row(k).iter().sum())
            .collect();
        let total_writes: Vec<u64> = (0..n)
            .map(|k| writes_by_object.row(k).iter().sum())
            .collect();

        // Overflow guard, as in `Problem::build` but with Σ edge costs
        // bounding the (uncomputed) maximum shortest-path distance.
        let max_rw = (0..n)
            .map(|k| total_reads[k].saturating_add(total_writes[k]))
            .max()
            .unwrap_or(0);
        let max_size = object_sizes.iter().copied().max().unwrap_or(0);
        let path_bound = graph
            .edges()
            .iter()
            .try_fold(0u64, |acc, e| acc.checked_add(e.cost));
        let fits = path_bound
            .and_then(|bound| max_rw.checked_mul(max_size).zip(Some(bound)))
            .and_then(|(x, bound)| x.checked_mul(bound.max(1)))
            .and_then(|x| x.checked_mul(m as u64))
            .and_then(|x| x.checked_mul(n as u64))
            .is_some();
        if !fits {
            return Err(invalid(format!(
                "cost terms may overflow u64: max access total {max_rw} x max object \
                 size {max_size} x path bound (sum of edge costs) x {m} sites x {n} objects"
            )));
        }
        let write_volumes: Vec<u64> = (0..n).map(|k| total_writes[k] * object_sizes[k]).collect();

        let mut sp = Self {
            graph,
            object_sizes,
            primaries,
            capacities,
            reads,
            writes,
            reads_by_object,
            writes_by_object,
            total_reads,
            total_writes,
            write_volumes,
            d_prime: 0,
            v_prime: vec![0; n],
        };
        // D_prime / V_prime: one Dijkstra per distinct primary site.
        let dists = PrimaryDistances::build(&sp);
        for k in 0..n {
            let o = sp.object_sizes[k];
            let spd = dists.row(k);
            let r_row = sp.reads_by_object.row(k);
            let w_row = sp.writes_by_object.row(k);
            let mut v = 0u64;
            for i in 0..m {
                v += (r_row[i] + w_row[i]) * o * spd[i];
            }
            sp.v_prime[k] = v;
            sp.d_prime += v;
        }
        Ok(sp)
    }

    /// Re-expresses a dense [`Problem`] as a sparse instance over the
    /// complete graph of its cost matrix (`M²/2` edges — for parity
    /// testing and CLI convenience at moderate `M`, not for scale).
    ///
    /// The matrix is a validated metric, so shortest paths over that
    /// complete graph reproduce it exactly: `d_prime` and every cost agree
    /// bit-for-bit with the dense instance.
    ///
    /// # Errors
    ///
    /// Propagates validation failures (none are expected from a validated
    /// `Problem`).
    pub fn from_problem(problem: &Problem) -> Result<Self> {
        let m = problem.num_sites();
        let mut graph = Graph::new(m).map_err(CoreError::Net)?;
        for i in 0..m {
            for j in (i + 1)..m {
                graph
                    .add_edge(i, j, problem.costs().cost(i, j))
                    .map_err(CoreError::Net)?;
            }
        }
        Self::new(
            graph,
            (0..problem.num_objects())
                .map(|k| problem.object_size(ObjectId::new(k)))
                .collect(),
            (0..problem.num_objects())
                .map(|k| problem.primary(ObjectId::new(k)))
                .collect(),
            (0..m).map(|i| problem.capacity(SiteId::new(i))).collect(),
            problem.read_matrix().clone(),
            problem.write_matrix().clone(),
        )
    }

    /// Materializes the dense twin: all-pairs shortest paths plus a
    /// [`Problem::builder`] run. Quadratic memory — only for `M` where a
    /// flat solve is feasible anyway (the sharded-vs-flat parity tests).
    ///
    /// # Errors
    ///
    /// Propagates cost-matrix and builder failures.
    pub fn to_dense(&self) -> Result<Problem> {
        let costs = CostMatrix::from_graph(&self.graph).map_err(CoreError::Net)?;
        let mut builder = Problem::builder(costs);
        builder.objects_bulk(self.object_sizes.clone(), self.primaries.clone());
        builder.capacities(self.capacities.clone());
        builder.read_matrix(self.reads.clone());
        builder.write_matrix(self.writes.clone());
        builder.build()
    }

    /// Number of sites `M`.
    pub fn num_sites(&self) -> usize {
        self.graph.num_sites()
    }

    /// Number of objects `N`.
    pub fn num_objects(&self) -> usize {
        self.object_sizes.len()
    }

    /// The underlying network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Size `o_k` of an object in data units.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn object_size(&self, object: ObjectId) -> u64 {
        self.object_sizes[object.index()]
    }

    /// Primary site `SP_k` of an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn primary(&self, object: ObjectId) -> SiteId {
        self.primaries[object.index()]
    }

    /// Storage capacity `s(i)` of a site in data units.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn capacity(&self, site: SiteId) -> u64 {
        self.capacities[site.index()]
    }

    /// Contiguous per-site read counts `r_k(·)` of one object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn object_reads(&self, object: ObjectId) -> &[u64] {
        self.reads_by_object.row(object.index())
    }

    /// Contiguous per-site write counts `w_k(·)` of one object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn object_writes(&self, object: ObjectId) -> &[u64] {
        self.writes_by_object.row(object.index())
    }

    /// Total reads `Σ_i r_k(i)` for an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn total_reads(&self, object: ObjectId) -> u64 {
        self.total_reads[object.index()]
    }

    /// Total writes `Σ_i w_k(i)` for an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn total_writes(&self, object: ObjectId) -> u64 {
        self.total_writes[object.index()]
    }

    /// Update volume `Σ_x w_k(x) · o_k` of one object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn write_volume(&self, object: ObjectId) -> u64 {
        self.write_volumes[object.index()]
    }

    /// NTC of the primary-only allocation (`D_prime`).
    pub fn d_prime(&self) -> u64 {
        self.d_prime
    }

    /// Per-object NTC under the primary-only allocation.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn v_prime(&self, object: ObjectId) -> u64 {
        self.v_prime[object.index()]
    }

    /// Iterates over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.num_objects()).map(ObjectId::new)
    }

    /// The primary-only placement: one singleton replica list per object.
    pub fn primary_only_placement(&self) -> Vec<Vec<usize>> {
        self.primaries.iter().map(|p| vec![p.index()]).collect()
    }

    /// Checks that `placement` is a feasible scheme: one sorted,
    /// duplicate-free replica list per object, each containing the
    /// object's primary, all sites in range, and no site over capacity.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CoreError`] for the first violation.
    pub fn validate_placement(&self, placement: &[Vec<usize>]) -> Result<()> {
        let invalid = |reason: String| CoreError::InvalidInstance { reason };
        let m = self.num_sites();
        let n = self.num_objects();
        if placement.len() != n {
            return Err(invalid(format!(
                "placement covers {} objects, instance has {n}",
                placement.len()
            )));
        }
        let mut used = vec![0u64; m];
        for (k, replicas) in placement.iter().enumerate() {
            if !replicas.windows(2).all(|w| w[0] < w[1]) {
                return Err(invalid(format!(
                    "object {k}: replica list must be sorted and duplicate-free"
                )));
            }
            if let Some(&site) = replicas.iter().find(|&&j| j >= m) {
                return Err(CoreError::SiteOutOfRange {
                    site: SiteId::new(site),
                    num_sites: m,
                });
            }
            let sp = self.primaries[k].index();
            if replicas.binary_search(&sp).is_err() {
                return Err(CoreError::PrimaryUndeletable {
                    object: ObjectId::new(k),
                });
            }
            for &j in replicas {
                used[j] += self.object_sizes[k];
            }
        }
        for (i, (&u, &cap)) in used.iter().zip(&self.capacities).enumerate() {
            if u > cap {
                return Err(invalid(format!(
                    "site {i} holds {u} data units of replicas but has capacity {cap}"
                )));
            }
        }
        Ok(())
    }

    /// The *exact* Eq. 4 NTC of a placement over the graph metric: per
    /// object, reads route to the truly nearest replica (one multi-source
    /// Dijkstra from the replica set), writes ship to the primary, and
    /// every replica receives the update broadcast (one Dijkstra per
    /// distinct primary, shared across objects). `O(N · E log M)` total —
    /// no `M²` anywhere.
    ///
    /// # Errors
    ///
    /// Propagates [`validate_placement`](Self::validate_placement)
    /// failures.
    pub fn total_cost(&self, placement: &[Vec<usize>]) -> Result<u64> {
        self.validate_placement(placement)?;
        let dists = PrimaryDistances::build(self);
        let m = self.num_sites();
        let mut total = 0u64;
        let mut nearest_scratch: Vec<u64>;
        for (k, replicas) in placement.iter().enumerate() {
            let o = self.object_sizes[k];
            let spd = dists.row(k);
            let r_row = self.reads_by_object.row(k);
            let w_row = self.writes_by_object.row(k);
            let (nearest, _) = shortest::multi_source_owner(&self.graph, replicas)
                .expect("validated placement has in-range, non-empty replica lists");
            nearest_scratch = nearest;
            let mut broadcast = 0u64;
            let mut replica_writes = 0u64;
            for &j in replicas {
                broadcast += spd[j];
                replica_writes += w_row[j] * spd[j];
            }
            let mut traffic = 0u64;
            for i in 0..m {
                traffic += r_row[i] * nearest_scratch[i] + w_row[i] * spd[i];
            }
            total += self.write_volumes[k] * broadcast + o * (traffic - replica_writes);
        }
        Ok(total)
    }

    /// Percentage of NTC saved relative to the primary-only allocation.
    ///
    /// # Errors
    ///
    /// Propagates [`total_cost`](Self::total_cost) failures.
    pub fn savings_percent(&self, placement: &[Vec<usize>]) -> Result<f64> {
        if self.d_prime == 0 {
            return Ok(0.0);
        }
        let d = self.total_cost(placement)?;
        Ok(100.0 * (self.d_prime as f64 - d as f64) / self.d_prime as f64)
    }
}

/// Distances from every site to each object's primary, deduplicated by
/// primary site: one Dijkstra per *distinct* primary, shared by all the
/// objects it hosts.
struct PrimaryDistances {
    /// Concatenated M-length rows, one per distinct primary.
    rows: Vec<u64>,
    /// Per object, the row index of its primary's distances.
    row_of: Vec<usize>,
    num_sites: usize,
}

impl PrimaryDistances {
    fn build(sp: &SparseProblem) -> Self {
        let m = sp.num_sites();
        let mut row_index = vec![usize::MAX; m];
        let mut rows = Vec::new();
        let mut row_of = Vec::with_capacity(sp.num_objects());
        for p in &sp.primaries {
            let site = p.index();
            if row_index[site] == usize::MAX {
                row_index[site] = rows.len() / m;
                let dist = shortest::dijkstra_flat(sp.graph(), site)
                    .expect("validated primaries are in range");
                debug_assert!(dist.iter().all(|&d| d != UNREACHABLE));
                rows.extend_from_slice(&dist);
            }
            row_of.push(row_index[site]);
        }
        Self {
            rows,
            row_of,
            num_sites: m,
        }
    }

    /// Distance row of `object`'s primary: entry `i` is `C(i, SP_k)`.
    fn row(&self, object: usize) -> &[u64] {
        let r = self.row_of[object];
        &self.rows[r * self.num_sites..(r + 1) * self.num_sites]
    }
}

/// Sentinel for "no second-nearest candidate".
const NO_SITE: u32 = u32::MAX;

/// Incremental Eq. 4 evaluator over k-nearest candidate lists — the
/// sparse rewrite of [`CostEvaluator`]'s nearest/second-nearest
/// replicator cache.
///
/// For every `(object, site)` pair the evaluator caches the best and
/// second-best replicator among the site's [`SparseCostRows`] candidates
/// plus the object's primary (always a candidate, at its exact Dijkstra
/// distance). Adding or removing a replica at `j` walks `j`'s *reverse*
/// candidate list — the only sites whose picture can change — so a flip
/// costs `O(k)` amortized instead of `O(M)`.
///
/// Reads from a site whose `k` nearest candidates hold no replica fall
/// back to the primary distance; the evaluator's total is therefore an
/// upper bound on the exact NTC, tight whenever every site's true nearest
/// replica is within its k-nearest list (and always exact for `k ≥ M`).
///
/// [`CostEvaluator`]: crate::CostEvaluator
pub struct SparseEvaluator<'p> {
    sp: &'p SparseProblem,
    rows: &'p SparseCostRows,
    dists: PrimaryDistances,
    /// Flattened N×M best/second candidate caches, ordered by
    /// `(cost, site)` over distinct sites — content is a pure function of
    /// the replica sets, independent of flip order.
    best_cost: Vec<u64>,
    best_site: Vec<u32>,
    second_cost: Vec<u64>,
    second_site: Vec<u32>,
    /// N × ⌈M/64⌉ replica membership bitmask.
    mask: Vec<u64>,
    mask_words: usize,
    replicas: Vec<Vec<usize>>,
    used: Vec<u64>,
    /// Per-object running sums of the Eq. 4 terms.
    broadcast: Vec<u64>,
    read_traffic: Vec<u64>,
    replica_writes: Vec<u64>,
    /// Per-object constant `Σ_i w_k(i) · C(i, SP_k)`.
    write_ship: Vec<u64>,
    object_cost: Vec<u64>,
    total: u64,
}

impl<'p> SparseEvaluator<'p> {
    /// Builds the evaluator for an initial placement.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseProblem::validate_placement`] failures; also
    /// rejects `rows` built for a different site count.
    pub fn new(
        sp: &'p SparseProblem,
        rows: &'p SparseCostRows,
        placement: &[Vec<usize>],
    ) -> Result<Self> {
        if rows.num_sites() != sp.num_sites() {
            return Err(CoreError::InvalidInstance {
                reason: format!(
                    "candidate rows cover {} sites, instance has {}",
                    rows.num_sites(),
                    sp.num_sites()
                ),
            });
        }
        sp.validate_placement(placement)?;
        let m = sp.num_sites();
        let n = sp.num_objects();
        let mask_words = m.div_ceil(64);
        let dists = PrimaryDistances::build(sp);
        let mut eval = Self {
            sp,
            rows,
            dists,
            best_cost: vec![u64::MAX; n * m],
            best_site: vec![NO_SITE; n * m],
            second_cost: vec![u64::MAX; n * m],
            second_site: vec![NO_SITE; n * m],
            mask: vec![0; n * mask_words],
            mask_words,
            replicas: placement.to_vec(),
            used: vec![0; m],
            broadcast: vec![0; n],
            read_traffic: vec![0; n],
            replica_writes: vec![0; n],
            write_ship: vec![0; n],
            object_cost: vec![0; n],
            total: 0,
        };
        for k in 0..n {
            // Copied out of `eval.dists` so the candidate cache can be
            // borrowed mutably below; one M-row per object, build-time only.
            let spd = eval.dists.row(k).to_vec();
            let sp_site = sp.primaries[k].index();
            let w_row = sp.object_writes(ObjectId::new(k));
            let r_row = sp.object_reads(ObjectId::new(k));
            // The primary is a candidate for everyone, at exact distance.
            for (i, &d) in spd.iter().enumerate() {
                eval.insert_candidate(k, i, d, sp_site as u32);
            }
            for idx in 0..eval.replicas[k].len() {
                let j = eval.replicas[k][idx];
                eval.mask[k * mask_words + j / 64] |= 1 << (j % 64);
                eval.used[j] += sp.object_sizes[k];
                eval.broadcast[k] += spd[j];
                eval.replica_writes[k] += w_row[j] * spd[j];
                if j != sp_site {
                    let (sites, costs) = rows.reverse_row(j);
                    for (&x, &c) in sites.iter().zip(costs) {
                        eval.insert_candidate(k, x as usize, c, j as u32);
                    }
                }
            }
            let mut reads = 0u64;
            let mut ship = 0u64;
            for i in 0..m {
                reads += r_row[i] * eval.best_cost[k * m + i];
                ship += w_row[i] * spd[i];
            }
            eval.read_traffic[k] = reads;
            eval.write_ship[k] = ship;
            let cost = eval.recompute_object_cost(k);
            eval.object_cost[k] = cost;
            eval.total += cost;
        }
        Ok(eval)
    }

    /// The evaluator for the primary-only placement.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseEvaluator::new`] failures.
    pub fn primary_only(sp: &'p SparseProblem, rows: &'p SparseCostRows) -> Result<Self> {
        let placement = sp.primary_only_placement();
        Self::new(sp, rows, &placement)
    }

    /// The instance under evaluation.
    pub fn problem(&self) -> &'p SparseProblem {
        self.sp
    }

    /// Current upper-bound NTC (exact when `k` covers every true nearest
    /// replica; see the type docs).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cached cost of one object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn object_cost(&self, object: ObjectId) -> u64 {
        self.object_cost[object.index()]
    }

    /// The current sorted replica list of an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn replicas(&self, object: ObjectId) -> &[usize] {
        &self.replicas[object.index()]
    }

    /// The full placement (sorted replica lists, one per object).
    pub fn placement(&self) -> &[Vec<usize>] {
        &self.replicas
    }

    /// Whether `site` currently replicates `object`.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn holds(&self, site: SiteId, object: ObjectId) -> bool {
        let (i, k) = (site.index(), object.index());
        self.mask[k * self.mask_words + i / 64] & (1 << (i % 64)) != 0
    }

    /// Free capacity of a site under the current placement.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn free_capacity(&self, site: SiteId) -> u64 {
        self.sp.capacity(site) - self.used[site.index()]
    }

    /// Best candidate replicator of `object` for reads from `site`:
    /// `(site, cost)` over the k-nearest candidates plus the primary.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn nearest(&self, site: SiteId, object: ObjectId) -> (SiteId, u64) {
        let slot = object.index() * self.sp.num_sites() + site.index();
        (
            SiteId::new(self.best_site[slot] as usize),
            self.best_cost[slot],
        )
    }

    /// Second-best candidate replicator, if any.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn second_nearest(&self, site: SiteId, object: ObjectId) -> Option<(SiteId, u64)> {
        let slot = object.index() * self.sp.num_sites() + site.index();
        (self.second_site[slot] != NO_SITE).then(|| {
            (
                SiteId::new(self.second_site[slot] as usize),
                self.second_cost[slot],
            )
        })
    }

    fn recompute_object_cost(&self, k: usize) -> u64 {
        let o = self.sp.object_sizes[k];
        self.sp.write_volumes[k] * self.broadcast[k]
            + o * (self.read_traffic[k] + self.write_ship[k] - self.replica_writes[k])
    }

    /// Inserts candidate `(cost, site)` into the `(object, at)` top-2,
    /// deduplicating by site. Ordering is by `(cost, site)`, so the cached
    /// pair is exactly the two smallest over distinct candidate sites —
    /// independent of insertion order.
    fn insert_candidate(&mut self, k: usize, at: usize, cost: u64, site: u32) {
        let slot = k * self.sp.num_sites() + at;
        if site == self.best_site[slot] || site == self.second_site[slot] {
            debug_assert!(
                cost == if site == self.best_site[slot] {
                    self.best_cost[slot]
                } else {
                    self.second_cost[slot]
                },
                "a candidate site re-inserts at its established distance"
            );
            return;
        }
        if (cost, site) < (self.best_cost[slot], self.best_site[slot]) {
            self.second_cost[slot] = self.best_cost[slot];
            self.second_site[slot] = self.best_site[slot];
            self.best_cost[slot] = cost;
            self.best_site[slot] = site;
        } else if (cost, site) < (self.second_cost[slot], self.second_site[slot]) {
            self.second_cost[slot] = cost;
            self.second_site[slot] = site;
        }
    }

    /// Recomputes the `(object, at)` top-2 from scratch: the site's
    /// k-nearest candidates that currently replicate the object, plus the
    /// primary. `O(k)`.
    fn rescan(&mut self, k: usize, at: usize) {
        let m = self.sp.num_sites();
        let slot = k * m + at;
        self.best_cost[slot] = u64::MAX;
        self.best_site[slot] = NO_SITE;
        self.second_cost[slot] = u64::MAX;
        self.second_site[slot] = NO_SITE;
        let sp_site = self.sp.primaries[k].index();
        self.insert_candidate(k, at, self.dists.row(k)[at], sp_site as u32);
        let (sites, costs) = self.rows.row(at);
        for idx in 0..sites.len() {
            let j = sites[idx] as usize;
            if j != sp_site && self.mask[k * self.mask_words + j / 64] & (1 << (j % 64)) != 0 {
                self.insert_candidate(k, at, costs[idx], j as u32);
            }
        }
    }

    /// Exact change in the evaluator's total from adding a replica of
    /// `object` at `site`, without applying it. `O(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `site` already replicates `object` or ids are out of
    /// range.
    pub fn delta_add(&self, site: SiteId, object: ObjectId) -> i64 {
        assert!(
            !self.holds(site, object),
            "delta_add requires a non-replicator site"
        );
        let (j, k) = (site.index(), object.index());
        let m = self.sp.num_sites();
        let o = self.sp.object_sizes[k];
        let spd_j = self.dists.row(k)[j];
        let w_j = self.sp.object_writes(object)[j];
        let r_row = self.sp.object_reads(object);
        let mut delta = (self.sp.write_volumes[k] * spd_j) as i64 - (o * w_j * spd_j) as i64;
        let (sites, costs) = self.rows.reverse_row(j);
        for (&x, &c) in sites.iter().zip(costs) {
            let best = self.best_cost[k * m + x as usize];
            if c < best {
                delta -= (r_row[x as usize] * o * (best - c)) as i64;
            }
        }
        delta
    }

    /// Adds a replica and returns the applied delta (equal to what
    /// [`delta_add`](Self::delta_add) predicted). `O(k)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AlreadyReplica`] or
    /// [`CoreError::InsufficientCapacity`].
    pub fn apply_add(&mut self, site: SiteId, object: ObjectId) -> Result<i64> {
        let (j, k) = (site.index(), object.index());
        if self.holds(site, object) {
            return Err(CoreError::AlreadyReplica { site, object });
        }
        let size = self.sp.object_sizes[k];
        let free = self.free_capacity(site);
        if size > free {
            return Err(CoreError::InsufficientCapacity {
                site,
                object,
                free,
                size,
            });
        }
        let m = self.sp.num_sites();
        let spd_j = self.dists.row(k)[j];
        let w_j = self.sp.object_writes(object)[j];
        let r_row = self.sp.object_reads(object);
        let old_cost = self.object_cost[k];

        self.mask[k * self.mask_words + j / 64] |= 1 << (j % 64);
        let pos = self.replicas[k].binary_search(&j).unwrap_err();
        self.replicas[k].insert(pos, j);
        self.used[j] += size;
        self.broadcast[k] += spd_j;
        self.replica_writes[k] += w_j * spd_j;
        let (sites, costs) = self.rows.reverse_row(j);
        for idx in 0..sites.len() {
            let (x, c) = (sites[idx] as usize, costs[idx]);
            let before = self.best_cost[k * m + x];
            self.insert_candidate(k, x, c, j as u32);
            let after = self.best_cost[k * m + x];
            if after < before {
                self.read_traffic[k] -= r_row[x] * (before - after);
            }
        }
        let new_cost = self.recompute_object_cost(k);
        self.object_cost[k] = new_cost;
        self.total = self.total - old_cost + new_cost;
        Ok(new_cost as i64 - old_cost as i64)
    }

    /// Exact change in the evaluator's total from removing the replica of
    /// `object` at `site`, without applying it. `O(k²)` worst case (one
    /// rescan per affected reverse-candidate).
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a replicator, is the primary, or ids are
    /// out of range.
    pub fn delta_remove(&self, site: SiteId, object: ObjectId) -> i64 {
        assert!(
            self.holds(site, object),
            "delta_remove requires a replicator site"
        );
        assert!(
            self.sp.primary(object) != site,
            "the primary copy cannot be removed"
        );
        let (j, k) = (site.index(), object.index());
        let m = self.sp.num_sites();
        let o = self.sp.object_sizes[k];
        let spd = self.dists.row(k);
        let w_j = self.sp.object_writes(object)[j];
        let r_row = self.sp.object_reads(object);
        let sp_site = self.sp.primaries[k].index();
        let mut delta = (o * w_j * spd[j]) as i64 - (self.sp.write_volumes[k] * spd[j]) as i64;
        let (sites, _) = self.rows.reverse_row(j);
        for &x in sites {
            let x = x as usize;
            let slot = k * m + x;
            if self.best_site[slot] != j as u32 {
                continue;
            }
            // Best without j: the cached second unless that is j too
            // (impossible — sites are distinct), re-checked against the
            // always-available primary fallback.
            let mut new_best = (self.second_cost[slot], self.second_site[slot]);
            if new_best.1 == NO_SITE || new_best.1 == j as u32 {
                new_best = (spd[x], sp_site as u32);
            }
            // The second cache may also hide a third candidate; rescan
            // candidates for exactness.
            let (c_sites, c_costs) = self.rows.row(x);
            let mut exact = (spd[x], sp_site as u32);
            for idx in 0..c_sites.len() {
                let cand = c_sites[idx] as usize;
                if cand != j
                    && cand != sp_site
                    && self.mask[k * self.mask_words + cand / 64] & (1 << (cand % 64)) != 0
                {
                    let pair = (c_costs[idx], cand as u32);
                    if pair < exact {
                        exact = pair;
                    }
                }
            }
            if exact < new_best {
                new_best = exact;
            }
            delta += (r_row[x] * o * (new_best.0 - self.best_cost[slot])) as i64;
        }
        delta
    }

    /// Removes a replica and returns the applied delta. `O(k²)` worst
    /// case.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotReplica`] or
    /// [`CoreError::PrimaryUndeletable`].
    pub fn apply_remove(&mut self, site: SiteId, object: ObjectId) -> Result<i64> {
        let (j, k) = (site.index(), object.index());
        if !self.holds(site, object) {
            return Err(CoreError::NotReplica { site, object });
        }
        if self.sp.primary(object) == site {
            return Err(CoreError::PrimaryUndeletable { object });
        }
        let m = self.sp.num_sites();
        let spd_j = self.dists.row(k)[j];
        let w_j = self.sp.object_writes(object)[j];
        let r_row = self.sp.object_reads(object);
        let old_cost = self.object_cost[k];

        self.mask[k * self.mask_words + j / 64] &= !(1 << (j % 64));
        let pos = self.replicas[k].binary_search(&j).expect("holds() checked");
        self.replicas[k].remove(pos);
        self.used[j] -= self.sp.object_sizes[k];
        self.broadcast[k] -= spd_j;
        self.replica_writes[k] -= w_j * spd_j;
        let (sites, _) = self.rows.reverse_row(j);
        let affected: Vec<usize> = sites
            .iter()
            .map(|&x| x as usize)
            .filter(|&x| {
                let slot = k * m + x;
                self.best_site[slot] == j as u32 || self.second_site[slot] == j as u32
            })
            .collect();
        for x in affected {
            let before = self.best_cost[k * m + x];
            self.rescan(k, x);
            let after = self.best_cost[k * m + x];
            if after > before {
                self.read_traffic[k] += r_row[x] * (after - before);
            }
        }
        let new_cost = self.recompute_object_cost(k);
        self.object_cost[k] = new_cost;
        self.total = self.total - old_cost + new_cost;
        Ok(new_cost as i64 - old_cost as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line 0-1-2-3 with unit edges, 2 objects.
    fn line_instance() -> SparseProblem {
        let mut g = Graph::new(4).unwrap();
        for a in 0..3 {
            g.add_edge(a, a + 1, 1).unwrap();
        }
        let mut reads = DenseMatrix::zeros(4, 2);
        let mut writes = DenseMatrix::zeros(4, 2);
        for (i, r) in [3u64, 0, 2, 7].iter().enumerate() {
            reads.set(i, 0, *r);
        }
        for (i, r) in [0u64, 5, 1, 0].iter().enumerate() {
            reads.set(i, 1, *r);
        }
        writes.set(1, 0, 2);
        writes.set(3, 1, 1);
        SparseProblem::new(
            g,
            vec![10, 4],
            vec![SiteId::new(0), SiteId::new(3)],
            vec![30, 30, 30, 30],
            reads,
            writes,
        )
        .unwrap()
    }

    #[test]
    fn primary_only_cost_is_d_prime() {
        let sp = line_instance();
        let placement = sp.primary_only_placement();
        assert_eq!(sp.total_cost(&placement).unwrap(), sp.d_prime());
        assert!(sp.d_prime() > 0);
        assert_eq!(sp.savings_percent(&placement).unwrap(), 0.0);
    }

    #[test]
    fn matches_dense_problem_exactly() {
        let sp = line_instance();
        let dense = sp.to_dense().unwrap();
        assert_eq!(sp.d_prime(), dense.d_prime());
        for k in sp.objects() {
            assert_eq!(sp.v_prime(k), dense.v_prime(k));
        }
        // An arbitrary feasible placement costs the same in both worlds.
        let placement = vec![vec![0, 2], vec![1, 3]];
        let scheme = crate::ReplicationScheme::from_fn(&dense, |i, k| {
            placement[k.index()].contains(&i.index())
        })
        .unwrap();
        assert_eq!(
            sp.total_cost(&placement).unwrap(),
            dense.total_cost(&scheme)
        );
    }

    #[test]
    fn from_problem_round_trips() {
        let sp = line_instance();
        let dense = sp.to_dense().unwrap();
        let back = SparseProblem::from_problem(&dense).unwrap();
        assert_eq!(back.d_prime(), dense.d_prime());
        let placement = vec![vec![0, 3], vec![3]];
        let scheme = crate::ReplicationScheme::from_fn(&dense, |i, k| {
            placement[k.index()].contains(&i.index())
        })
        .unwrap();
        assert_eq!(
            back.total_cost(&placement).unwrap(),
            dense.total_cost(&scheme)
        );
    }

    #[test]
    fn validation_rejects_bad_placements() {
        let sp = line_instance();
        // Unsorted.
        assert!(sp.validate_placement(&[vec![2, 0], vec![3]]).is_err());
        // Missing primary.
        assert!(sp.validate_placement(&[vec![1], vec![3]]).is_err());
        // Site out of range.
        assert!(sp.validate_placement(&[vec![0, 9], vec![3]]).is_err());
        // Wrong object count.
        assert!(sp.validate_placement(&[vec![0]]).is_err());
        // Over capacity: site 2 has capacity 30; 3 copies of object 0
        // (10 each) plus object 1 (4) exceed it... use a tighter case.
        let mut g = Graph::new(2).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        let mut reads = DenseMatrix::zeros(2, 1);
        reads.set(1, 0, 1);
        let tight = SparseProblem::new(
            g,
            vec![10],
            vec![SiteId::new(0)],
            vec![10, 5],
            reads,
            DenseMatrix::zeros(2, 1),
        )
        .unwrap();
        assert!(tight.validate_placement(&[vec![0, 1]]).is_err());
    }

    #[test]
    fn construction_rejects_invalid_instances() {
        let g = || {
            let mut g = Graph::new(2).unwrap();
            g.add_edge(0, 1, 1).unwrap();
            g
        };
        let r = DenseMatrix::zeros(2, 1);
        let w = DenseMatrix::zeros(2, 1);
        // Zero-size object.
        assert!(SparseProblem::new(
            g(),
            vec![0],
            vec![SiteId::new(0)],
            vec![5, 5],
            r.clone(),
            w.clone()
        )
        .is_err());
        // Primary out of range.
        assert!(SparseProblem::new(
            g(),
            vec![1],
            vec![SiteId::new(7)],
            vec![5, 5],
            r.clone(),
            w.clone()
        )
        .is_err());
        // Primary does not fit.
        assert!(SparseProblem::new(
            g(),
            vec![9],
            vec![SiteId::new(0)],
            vec![5, 5],
            r.clone(),
            w.clone()
        )
        .is_err());
        // Disconnected graph.
        assert!(SparseProblem::new(
            Graph::new(2).unwrap(),
            vec![1],
            vec![SiteId::new(0)],
            vec![5, 5],
            r.clone(),
            w.clone()
        )
        .is_err());
        // Overflow guard.
        let mut big = Graph::new(2).unwrap();
        big.add_edge(0, 1, u64::MAX / 2).unwrap();
        let mut reads = DenseMatrix::zeros(2, 1);
        reads.set(1, 0, u64::MAX / 4);
        assert!(
            SparseProblem::new(big, vec![2], vec![SiteId::new(0)], vec![9, 9], reads, w).is_err()
        );
    }

    #[test]
    fn evaluator_with_full_k_matches_exact_costs() {
        let sp = line_instance();
        let rows = SparseCostRows::from_graph(sp.graph(), sp.num_sites()).unwrap();
        let mut eval = SparseEvaluator::primary_only(&sp, &rows).unwrap();
        assert_eq!(eval.total(), sp.d_prime());
        // Walk through some flips, checking against the exact Dijkstra
        // total after each.
        let flips = [(2usize, 0usize), (1, 1), (1, 0), (0, 1)];
        for &(site, object) in &flips {
            let (s, o) = (SiteId::new(site), ObjectId::new(object));
            let peek = eval.delta_add(s, o);
            let applied = eval.apply_add(s, o).unwrap();
            assert_eq!(peek, applied);
            assert_eq!(
                eval.total(),
                sp.total_cost(eval.placement()).unwrap(),
                "after add ({site}, {object})"
            );
        }
        for &(site, object) in flips.iter().rev() {
            let (s, o) = (SiteId::new(site), ObjectId::new(object));
            let peek = eval.delta_remove(s, o);
            let applied = eval.apply_remove(s, o).unwrap();
            assert_eq!(peek, applied);
            assert_eq!(
                eval.total(),
                sp.total_cost(eval.placement()).unwrap(),
                "after remove ({site}, {object})"
            );
        }
        assert_eq!(eval.total(), sp.d_prime());
    }

    #[test]
    fn truncated_k_upper_bounds_the_exact_cost() {
        let sp = line_instance();
        let rows = SparseCostRows::from_graph(sp.graph(), 2).unwrap();
        let mut eval = SparseEvaluator::primary_only(&sp, &rows).unwrap();
        // Primary-only is always exact (the primary is a candidate at its
        // exact distance).
        assert_eq!(eval.total(), sp.d_prime());
        eval.apply_add(SiteId::new(2), ObjectId::new(0)).unwrap();
        eval.apply_add(SiteId::new(1), ObjectId::new(1)).unwrap();
        let exact = sp.total_cost(eval.placement()).unwrap();
        assert!(eval.total() >= exact, "{} >= {exact}", eval.total());
    }

    #[test]
    fn evaluator_guards_capacity_and_membership() {
        let sp = line_instance();
        let rows = SparseCostRows::from_graph(sp.graph(), 4).unwrap();
        let mut eval = SparseEvaluator::primary_only(&sp, &rows).unwrap();
        assert!(matches!(
            eval.apply_add(SiteId::new(0), ObjectId::new(0)),
            Err(CoreError::AlreadyReplica { .. })
        ));
        assert!(matches!(
            eval.apply_remove(SiteId::new(1), ObjectId::new(0)),
            Err(CoreError::NotReplica { .. })
        ));
        assert!(matches!(
            eval.apply_remove(SiteId::new(0), ObjectId::new(0)),
            Err(CoreError::PrimaryUndeletable { .. })
        ));
        // Fill site 1 to capacity with object-0 replicas of size 10 — its
        // capacity 30 minus the existing primaries leaves room, so shrink
        // capacity via a bespoke instance instead.
        let mut g = Graph::new(2).unwrap();
        g.add_edge(0, 1, 1).unwrap();
        let mut reads = DenseMatrix::zeros(2, 1);
        reads.set(1, 0, 3);
        let tight = SparseProblem::new(
            g,
            vec![10],
            vec![SiteId::new(0)],
            vec![10, 5],
            reads,
            DenseMatrix::zeros(2, 1),
        )
        .unwrap();
        let rows = SparseCostRows::from_graph(tight.graph(), 2).unwrap();
        let mut eval = SparseEvaluator::primary_only(&tight, &rows).unwrap();
        assert!(matches!(
            eval.apply_add(SiteId::new(1), ObjectId::new(0)),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn nearest_cache_tracks_flips() {
        let sp = line_instance();
        let rows = SparseCostRows::from_graph(sp.graph(), 4).unwrap();
        let mut eval = SparseEvaluator::primary_only(&sp, &rows).unwrap();
        let k0 = ObjectId::new(0);
        assert_eq!(eval.nearest(SiteId::new(3), k0), (SiteId::new(0), 3));
        eval.apply_add(SiteId::new(2), k0).unwrap();
        assert_eq!(eval.nearest(SiteId::new(3), k0), (SiteId::new(2), 1));
        let second = eval.second_nearest(SiteId::new(3), k0).unwrap();
        assert_eq!(second, (SiteId::new(0), 3));
        eval.apply_remove(SiteId::new(2), k0).unwrap();
        assert_eq!(eval.nearest(SiteId::new(3), k0), (SiteId::new(0), 3));
    }
}
