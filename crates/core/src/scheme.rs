use serde::{Deserialize, Serialize};

use crate::{kernels, CoreError, ObjectId, Problem, Result, SiteId};

/// A replication scheme: the boolean `M × N` matrix `X` of the paper, with
/// `X_ik = 1` when site `i` holds a replica of object `k`.
///
/// Invariants maintained by construction:
///
/// * every object is replicated at its primary site (`X_{SP_k, k} = 1`) and
///   that replica can never be removed;
/// * the total size of objects replicated at a site never exceeds its
///   storage capacity.
///
/// The per-object replicator lists are kept sorted, which makes
/// nearest-replica queries O(|R_k|) and keeps iteration deterministic.
///
/// # Examples
///
/// ```
/// use drp_core::{Problem, ReplicationScheme, SiteId, ObjectId};
/// use drp_net::CostMatrix;
///
/// let costs = CostMatrix::from_rows(2, vec![0, 2, 2, 0])?;
/// let problem = Problem::builder(costs)
///     .capacities(vec![10, 10])
///     .object(4, SiteId::new(0))
///     .reads(vec![0, 5])
///     .build()?;
/// let mut scheme = ReplicationScheme::primary_only(&problem);
/// assert!(scheme.holds(SiteId::new(0), ObjectId::new(0)));
/// scheme.add_replica(&problem, SiteId::new(1), ObjectId::new(0))?;
/// assert_eq!(scheme.replica_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationScheme {
    num_sites: usize,
    num_objects: usize,
    /// Bitset, site-major: bit `i * N + k` is `X_ik`.
    bits: Vec<u64>,
    /// Sorted replicator site indices per object (always contains the
    /// primary).
    replicas: Vec<Vec<usize>>,
    /// Data units stored per site.
    used: Vec<u64>,
}

impl ReplicationScheme {
    /// The initial allocation: every object exists only at its primary site.
    pub fn primary_only(problem: &Problem) -> Self {
        let m = problem.num_sites();
        let n = problem.num_objects();
        let words = (m * n).div_ceil(64);
        let mut scheme = Self {
            num_sites: m,
            num_objects: n,
            bits: vec![0; words.max(1)],
            replicas: vec![Vec::new(); n],
            used: vec![0; m],
        };
        for k in 0..n {
            let object = ObjectId::new(k);
            let p = problem.primary(object).index();
            scheme.set_bit(p, k);
            scheme.replicas[k].push(p);
            scheme.used[p] += problem.object_size(object);
        }
        scheme
    }

    /// Builds a scheme from a predicate over `(site, object)` pairs, adding
    /// primary copies regardless of the predicate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientCapacity`] if the predicate selects
    /// more data than some site can store.
    pub fn from_fn<F>(problem: &Problem, mut holds: F) -> Result<Self>
    where
        F: FnMut(SiteId, ObjectId) -> bool,
    {
        let mut scheme = Self::primary_only(problem);
        for k in 0..problem.num_objects() {
            let object = ObjectId::new(k);
            for i in 0..problem.num_sites() {
                let site = SiteId::new(i);
                if holds(site, object) && !scheme.holds(site, object) {
                    scheme.add_replica(problem, site, object)?;
                }
            }
        }
        Ok(scheme)
    }

    #[inline]
    fn bit_index(&self, i: usize, k: usize) -> (usize, u64) {
        let bit = i * self.num_objects + k;
        (bit / 64, 1u64 << (bit % 64))
    }

    #[inline]
    fn set_bit(&mut self, i: usize, k: usize) {
        let (word, mask) = self.bit_index(i, k);
        self.bits[word] |= mask;
    }

    #[inline]
    fn clear_bit(&mut self, i: usize, k: usize) {
        let (word, mask) = self.bit_index(i, k);
        self.bits[word] &= !mask;
    }

    /// Number of sites the scheme was built for.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Number of objects the scheme was built for.
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Whether `site` holds a replica of `object` (`X_ik`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn holds(&self, site: SiteId, object: ObjectId) -> bool {
        assert!(site.index() < self.num_sites && object.index() < self.num_objects);
        let (word, mask) = self.bit_index(site.index(), object.index());
        self.bits[word] & mask != 0
    }

    /// The sorted replicator sites of an object (always non-empty: the
    /// primary is a permanent member).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn replicators(&self, object: ObjectId) -> impl Iterator<Item = SiteId> + '_ {
        self.replicas[object.index()]
            .iter()
            .copied()
            .map(SiteId::new)
    }

    /// Internal fast path used by the cost model.
    #[inline]
    pub(crate) fn replicator_indices(&self, k: usize) -> &[usize] {
        &self.replicas[k]
    }

    /// Number of replicas of an object (its *replication degree*).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn replica_degree(&self, object: ObjectId) -> usize {
        self.replicas[object.index()].len()
    }

    /// Total number of replicas in the network, primaries included.
    ///
    /// One `popcnt` per bitset word — O(M·N/64) regardless of how many
    /// replicas exist, instead of walking the per-object lists.
    pub fn replica_count(&self) -> usize {
        kernels::popcount(&self.bits)
    }

    /// Number of distinct objects replicated at `site` — the column sum
    /// `Σ_k X_ik`, computed by masked popcount over the site's
    /// contiguous bit row.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn site_replica_count(&self, site: SiteId) -> usize {
        let i = site.index();
        assert!(i < self.num_sites, "site index out of range");
        kernels::popcount_range(&self.bits, i * self.num_objects, (i + 1) * self.num_objects)
    }

    /// Number of replicas beyond the mandatory primaries — the paper's
    /// "number of replicas created" metric.
    pub fn extra_replica_count(&self) -> usize {
        self.replica_count() - self.num_objects
    }

    /// Data units currently stored at a site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn used_capacity(&self, site: SiteId) -> u64 {
        self.used[site.index()]
    }

    /// Remaining free data units at a site (`b(i)` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn free_capacity(&self, problem: &Problem, site: SiteId) -> u64 {
        problem.capacity(site) - self.used[site.index()]
    }

    /// The objects replicated at a site, in ascending object order.
    ///
    /// Word-wise: the site's row occupies the contiguous bit range
    /// `[i·N, (i+1)·N)`, so empty words are skipped 64 objects at a time
    /// and set bits are popped with `trailing_zeros`.
    pub fn objects_at(&self, site: SiteId) -> impl Iterator<Item = ObjectId> + '_ {
        let start = site.index() * self.num_objects;
        let end = start + self.num_objects;
        let first_word = start / 64;
        let words = &self.bits[first_word..end.div_ceil(64).max(first_word)];
        words
            .iter()
            .enumerate()
            .flat_map(move |(wi, &word)| {
                let base = (first_word + wi) * 64;
                let mut bits = word;
                // Mask off bits outside the site's row in boundary words.
                if base < start {
                    bits &= u64::MAX << (start - base);
                }
                if base + 64 > end {
                    bits &= u64::MAX >> (base + 64 - end);
                }
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(base + tz)
                })
            })
            .map(move |bit| ObjectId::new(bit - start))
    }

    fn check_pair(&self, problem: &Problem, site: SiteId, object: ObjectId) -> Result<()> {
        if self.num_sites != problem.num_sites() || self.num_objects != problem.num_objects() {
            return Err(CoreError::InvalidInstance {
                reason: format!(
                    "scheme is {}x{} but problem is {}x{}",
                    self.num_sites,
                    self.num_objects,
                    problem.num_sites(),
                    problem.num_objects()
                ),
            });
        }
        problem.check_site(site)?;
        problem.check_object(object)?;
        Ok(())
    }

    /// Adds a replica of `object` at `site`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::AlreadyReplica`] if the site already holds one;
    /// * [`CoreError::InsufficientCapacity`] if the object does not fit;
    /// * range errors for invalid ids.
    pub fn add_replica(&mut self, problem: &Problem, site: SiteId, object: ObjectId) -> Result<()> {
        self.check_pair(problem, site, object)?;
        if self.holds(site, object) {
            return Err(CoreError::AlreadyReplica { site, object });
        }
        let size = problem.object_size(object);
        let free = self.free_capacity(problem, site);
        if size > free {
            return Err(CoreError::InsufficientCapacity {
                site,
                object,
                free,
                size,
            });
        }
        self.set_bit(site.index(), object.index());
        let list = &mut self.replicas[object.index()];
        let pos = list.partition_point(|&s| s < site.index());
        list.insert(pos, site.index());
        self.used[site.index()] += size;
        Ok(())
    }

    /// Removes a replica of `object` from `site`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotReplica`] if the site holds no replica;
    /// * [`CoreError::PrimaryUndeletable`] if `site` is the primary;
    /// * range errors for invalid ids.
    pub fn remove_replica(
        &mut self,
        problem: &Problem,
        site: SiteId,
        object: ObjectId,
    ) -> Result<()> {
        self.check_pair(problem, site, object)?;
        if !self.holds(site, object) {
            return Err(CoreError::NotReplica { site, object });
        }
        if problem.primary(object) == site {
            return Err(CoreError::PrimaryUndeletable { object });
        }
        self.clear_bit(site.index(), object.index());
        let list = &mut self.replicas[object.index()];
        let pos = list
            .binary_search(&site.index())
            .expect("replica list out of sync");
        list.remove(pos);
        self.used[site.index()] -= problem.object_size(object);
        Ok(())
    }

    /// The nearest replicator `SN_k(i)` of `object` for reads from `site`,
    /// together with the transfer cost to it. Ties break toward the lower
    /// site index. If `site` itself is a replicator the result is
    /// `(site, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range for the problem.
    pub fn nearest_replica(
        &self,
        problem: &Problem,
        site: SiteId,
        object: ObjectId,
    ) -> (SiteId, u64) {
        let (j, c) = problem
            .costs()
            .nearest_of(site.index(), self.replicator_indices(object.index()))
            .expect("replica list always contains the primary");
        (SiteId::new(j), c)
    }

    /// Exhaustively revalidates every invariant against the problem.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant. Useful in tests and after
    /// deserializing a scheme from untrusted input.
    #[allow(clippy::needless_range_loop)] // parallel-array checks read clearest
    pub fn validate(&self, problem: &Problem) -> Result<()> {
        if self.num_sites != problem.num_sites() || self.num_objects != problem.num_objects() {
            return Err(CoreError::InvalidInstance {
                reason: "scheme dimensions do not match the problem".into(),
            });
        }
        let mut used = vec![0u64; self.num_sites];
        for k in 0..self.num_objects {
            let object = ObjectId::new(k);
            let primary = problem.primary(object);
            if !self.holds(primary, object) {
                return Err(CoreError::InvalidInstance {
                    reason: format!("object {object} lost its primary copy"),
                });
            }
            let list = &self.replicas[k];
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(CoreError::InvalidInstance {
                    reason: format!("replica list of object {object} is not sorted/unique"),
                });
            }
            for &i in list {
                if i >= self.num_sites {
                    return Err(CoreError::InvalidInstance {
                        reason: format!("replica list of object {object} references site {i}"),
                    });
                }
                if !self.holds(SiteId::new(i), object) {
                    return Err(CoreError::InvalidInstance {
                        reason: format!("bitset and replica list disagree at ({i}, {object})"),
                    });
                }
                used[i] += problem.object_size(object);
            }
            for i in 0..self.num_sites {
                let site = SiteId::new(i);
                if self.holds(site, object) && list.binary_search(&i).is_err() {
                    return Err(CoreError::InvalidInstance {
                        reason: format!("bitset holds ({site}, {object}) missing from list"),
                    });
                }
            }
        }
        for i in 0..self.num_sites {
            let site = SiteId::new(i);
            if used[i] != self.used[i] {
                return Err(CoreError::InvalidInstance {
                    reason: format!("cached usage of site {site} is stale"),
                });
            }
            if used[i] > problem.capacity(site) {
                return Err(CoreError::InsufficientCapacity {
                    site,
                    object: ObjectId::new(0),
                    free: 0,
                    size: used[i] - problem.capacity(site),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![20, 8, 20])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 0])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn primary_only_holds_exactly_primaries() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        assert!(s.holds(SiteId::new(0), ObjectId::new(0)));
        assert!(s.holds(SiteId::new(2), ObjectId::new(1)));
        assert!(!s.holds(SiteId::new(1), ObjectId::new(0)));
        assert_eq!(s.replica_count(), 2);
        assert_eq!(s.extra_replica_count(), 0);
        assert_eq!(s.used_capacity(SiteId::new(0)), 10);
        s.validate(&p).unwrap();
    }

    #[test]
    fn add_and_remove_replicas() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        assert_eq!(s.replica_degree(ObjectId::new(0)), 2);
        assert_eq!(s.used_capacity(SiteId::new(2)), 15);
        assert_eq!(
            s.replicators(ObjectId::new(0)).collect::<Vec<_>>(),
            vec![SiteId::new(0), SiteId::new(2)]
        );
        s.validate(&p).unwrap();
        s.remove_replica(&p, SiteId::new(2), ObjectId::new(0))
            .unwrap();
        assert_eq!(s.replica_degree(ObjectId::new(0)), 1);
        s.validate(&p).unwrap();
    }

    #[test]
    fn capacity_is_enforced() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        // Site 1 has capacity 8 < object 0's size 10.
        let err = s
            .add_replica(&p, SiteId::new(1), ObjectId::new(0))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InsufficientCapacity {
                free: 8,
                size: 10,
                ..
            }
        ));
        // Object 1 (size 5) fits.
        s.add_replica(&p, SiteId::new(1), ObjectId::new(1)).unwrap();
        s.validate(&p).unwrap();
    }

    #[test]
    fn double_add_and_missing_remove_are_errors() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        assert!(matches!(
            s.add_replica(&p, SiteId::new(0), ObjectId::new(0)),
            Err(CoreError::AlreadyReplica { .. })
        ));
        assert!(matches!(
            s.remove_replica(&p, SiteId::new(1), ObjectId::new(0)),
            Err(CoreError::NotReplica { .. })
        ));
    }

    #[test]
    fn primary_cannot_be_removed() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        assert!(matches!(
            s.remove_replica(&p, SiteId::new(0), ObjectId::new(0)),
            Err(CoreError::PrimaryUndeletable { .. })
        ));
    }

    #[test]
    fn nearest_replica_tracks_additions() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        let (sn, c) = s.nearest_replica(&p, SiteId::new(2), ObjectId::new(0));
        assert_eq!((sn, c), (SiteId::new(0), 2));
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        let (sn, c) = s.nearest_replica(&p, SiteId::new(2), ObjectId::new(0));
        assert_eq!((sn, c), (SiteId::new(2), 0));
        let (sn, c) = s.nearest_replica(&p, SiteId::new(1), ObjectId::new(0));
        assert_eq!((sn, c), (SiteId::new(0), 1)); // tie C=1 to both 0 and 2; lower index wins
    }

    #[test]
    fn from_fn_builds_and_validates() {
        let p = problem();
        let s =
            ReplicationScheme::from_fn(&p, |site, object| site.index() == 2 && object.index() == 0)
                .unwrap();
        assert!(s.holds(SiteId::new(2), ObjectId::new(0)));
        assert_eq!(s.replica_count(), 3);
        s.validate(&p).unwrap();
        // Overflowing predicate errors out: site 1 (cap 8) cannot take object 0.
        let err = ReplicationScheme::from_fn(&p, |site, _| site.index() == 1);
        assert!(err.is_err());
    }

    #[test]
    fn objects_at_lists_holdings() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(0), ObjectId::new(1)).unwrap();
        let held: Vec<_> = s.objects_at(SiteId::new(0)).collect();
        assert_eq!(held, vec![ObjectId::new(0), ObjectId::new(1)]);
    }

    #[test]
    fn popcount_scans_agree_with_list_walks() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        s.add_replica(&p, SiteId::new(0), ObjectId::new(1)).unwrap();
        let list_total: usize = p.objects().map(|k| s.replica_degree(k)).sum();
        assert_eq!(s.replica_count(), list_total);
        for i in p.sites() {
            assert_eq!(s.site_replica_count(i), s.objects_at(i).count(), "site {i}");
        }
    }

    #[test]
    fn scheme_problem_mismatch_is_detected() {
        let p = problem();
        let costs2 = CostMatrix::from_rows(2, vec![0, 1, 1, 0]).unwrap();
        let small = Problem::builder(costs2)
            .capacities(vec![10, 10])
            .object(1, SiteId::new(0))
            .build()
            .unwrap();
        let mut s = ReplicationScheme::primary_only(&small);
        assert!(s.add_replica(&p, SiteId::new(1), ObjectId::new(0)).is_err());
        assert!(s.validate(&p).is_err());
    }
}
