//! The Data Replication Problem (DRP) of Loukopoulos & Ahmad (ICDCS 2000).
//!
//! A distributed system has `M` sites with storage capacities and `N`
//! objects, each with one undeletable *primary copy*. Given per-site read and
//! write frequencies, the DRP asks for the set of additional replicas (the
//! *replication scheme*) minimizing the total network transfer cost (NTC):
//! reads travel from the nearest replica, writes go to the primary which
//! broadcasts updates to every replica. The problem is NP-complete.
//!
//! This crate defines:
//!
//! * [`Problem`] — a validated DRP instance (network costs, sizes,
//!   capacities, read/write patterns, primary sites);
//! * [`ReplicationScheme`] — the X-matrix of replicas with capacity tracking;
//! * the exact Eq. 4 cost model ([`Problem::total_cost`],
//!   [`Problem::object_cost`], incremental [`Problem::delta_add_replica`] /
//!   [`Problem::delta_remove_replica`]);
//! * [`CostEvaluator`] — incremental Eq. 4 evaluation: cached
//!   nearest/second-nearest replicators make a replica flip O(M) with
//!   exact-integer agreement with [`Problem::total_cost`];
//! * the greedy *benefit* value of Eq. 5 ([`Problem::local_benefit`]) and the
//!   adaptive *deallocation estimator* of Eq. 6
//!   ([`Problem::replica_value_estimate`]);
//! * the [`ReplicationAlgorithm`] trait implemented by the solvers in
//!   `drp-algo`;
//! * [`replay`] — a discrete-event replay of the read/write pattern that
//!   reproduces the analytic NTC message by message.
//!
//! # Examples
//!
//! Build a tiny instance by hand and compare a replica against the
//! primary-only allocation:
//!
//! ```
//! use drp_core::{Problem, ReplicationScheme, SiteId, ObjectId};
//! use drp_net::CostMatrix;
//!
//! // Three sites on a line: C(0,1)=1, C(1,2)=1, C(0,2)=2.
//! let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0])?;
//! let problem = Problem::builder(costs)
//!     .object(10, SiteId::new(0))          // one object of size 10, primary at site 0
//!     .capacities(vec![100, 100, 100])
//!     .reads(vec![0, 5, 9])                // site 2 reads a lot
//!     .writes(vec![1, 0, 0])
//!     .build()?;
//!
//! let mut scheme = ReplicationScheme::primary_only(&problem);
//! let before = problem.total_cost(&scheme);
//! scheme.add_replica(&problem, SiteId::new(2), ObjectId::new(0))?;
//! let after = problem.total_cost(&scheme);
//! assert!(after < before, "replicating near the reader saves traffic");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod algorithm;
pub mod availability;
mod benefit;
mod cost;
mod error;
mod evaluator;
pub mod format;
mod ids;
pub mod kernels;
mod matrix;
mod metrics;
pub mod migration;
pub mod narrow;
pub mod pool;
mod problem;
pub mod replay;
mod scheme;
mod sparse;
pub mod telemetry;

pub use algorithm::ReplicationAlgorithm;
pub use error::{CoreError, ServeError};
pub use evaluator::CostEvaluator;
pub use ids::{ObjectId, SiteId};
pub use matrix::DenseMatrix;
pub use metrics::{DegradationReport, IngestReport, SolutionReport};
pub use narrow::NarrowMirror;
pub use problem::{Problem, ProblemBuilder};
pub use scheme::ReplicationScheme;
pub use sparse::{SparseEvaluator, SparseProblem};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
