//! Cache-friendly scalar kernels shared by the cost model, the
//! incremental evaluator and the solvers.
//!
//! Every Eq. 4 evaluation reduces to streaming over contiguous `M`-length
//! rows: a cost-matrix row per replicator and the per-object `r_k(·)` /
//! `w_k(·)` rows of [`Problem::object_reads`] /
//! [`Problem::object_writes`]. Keeping the inner loops here — branchless,
//! slice-to-slice, bounds-checks hoisted by `zip` — gives the compiler
//! straight-line code it can unroll and vectorise, and gives the humans
//! one place to reason about it.
//!
//! [`Problem::object_reads`]: crate::Problem::object_reads
//! [`Problem::object_writes`]: crate::Problem::object_writes

/// Folds one cost-matrix row into the running nearest-replicator
/// distances: `nearest[i] = min(nearest[i], row[i])` for every site.
///
/// This is the nearest-replicator min-scan: calling it once per
/// replicator row leaves `nearest[i] = min_{j ∈ R_k} C(i, j)`, the
/// `C(i, SN_k(i))` term of Eq. 4. `min` on unsigned integers compiles to
/// a branchless `cmov`/`pminub`-style select, so the scan costs one pass
/// of sequential memory traffic per replicator with no mispredictions.
///
/// Only the first `min(nearest.len(), row.len())` entries are touched;
/// callers in this workspace always pass equal-length `M` slices.
#[inline]
pub fn min_scan(nearest: &mut [u64], row: &[u64]) {
    for (slot, &cost) in nearest.iter_mut().zip(row) {
        *slot = (*slot).min(cost);
    }
}

/// The read-plus-write traffic of one object over all sites, given the
/// per-site nearest-replicator distances: `Σ_i r[i]·nearest[i] +
/// w[i]·sp_row[i]`, i.e. the non-broadcast half of Eq. 4 *before* scaling
/// by the object size. Replicator sites must have `nearest[i] == 0`
/// (their own distance), which also zeroes their read term; their write
/// term is the ordinary "send the update to the primary" cost, which
/// Eq. 4 only charges to non-replicators — callers subtract or skip those
/// sites themselves when required.
#[inline]
pub fn traffic_scan(reads: &[u64], writes: &[u64], nearest: &[u64], sp_row: &[u64]) -> u64 {
    let mut total = 0u64;
    for (((&r, &w), &near), &sp) in reads.iter().zip(writes).zip(nearest).zip(sp_row) {
        total += r * near + w * sp;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_scan_keeps_the_pointwise_minimum() {
        let mut nearest = vec![u64::MAX, 5, 0, 7];
        min_scan(&mut nearest, &[3, 9, 2, 7]);
        assert_eq!(nearest, vec![3, 5, 0, 7]);
        min_scan(&mut nearest, &[4, 1, 1, 1]);
        assert_eq!(nearest, vec![3, 1, 0, 1]);
    }

    #[test]
    fn traffic_scan_matches_the_naive_sum() {
        let reads = [2, 0, 5];
        let writes = [1, 3, 0];
        let nearest = [0, 4, 2];
        let sp = [0, 7, 9];
        let naive: u64 = (0..3)
            .map(|i| reads[i] * nearest[i] + writes[i] * sp[i])
            .sum();
        assert_eq!(traffic_scan(&reads, &writes, &nearest, &sp), naive);
    }
}
