//! Cache-friendly scalar kernels shared by the cost model, the
//! incremental evaluator and the solvers.
//!
//! Every Eq. 4 evaluation reduces to streaming over contiguous `M`-length
//! rows: a cost-matrix row per replicator and the per-object `r_k(·)` /
//! `w_k(·)` rows of [`Problem::object_reads`] /
//! [`Problem::object_writes`]. Keeping the inner loops here — branchless,
//! slice-to-slice, bounds-checks hoisted by `zip` — gives the compiler
//! straight-line code it can unroll and vectorise, and gives the humans
//! one place to reason about it.
//!
//! [`Problem::object_reads`]: crate::Problem::object_reads
//! [`Problem::object_writes`]: crate::Problem::object_writes

/// Folds one cost-matrix row into the running nearest-replicator
/// distances: `nearest[i] = min(nearest[i], row[i])` for every site.
///
/// This is the nearest-replicator min-scan: calling it once per
/// replicator row leaves `nearest[i] = min_{j ∈ R_k} C(i, j)`, the
/// `C(i, SN_k(i))` term of Eq. 4. `min` on unsigned integers compiles to
/// a branchless `cmov`/`pminub`-style select, so the scan costs one pass
/// of sequential memory traffic per replicator with no mispredictions.
///
/// Only the first `min(nearest.len(), row.len())` entries are touched;
/// callers in this workspace always pass equal-length `M` slices.
#[inline]
pub fn min_scan(nearest: &mut [u64], row: &[u64]) {
    for (slot, &cost) in nearest.iter_mut().zip(row) {
        *slot = (*slot).min(cost);
    }
}

/// The read-plus-write traffic of one object over all sites, given the
/// per-site nearest-replicator distances: `Σ_i r[i]·nearest[i] +
/// w[i]·sp_row[i]`, i.e. the non-broadcast half of Eq. 4 *before* scaling
/// by the object size. Replicator sites must have `nearest[i] == 0`
/// (their own distance), which also zeroes their read term; their write
/// term is the ordinary "send the update to the primary" cost, which
/// Eq. 4 only charges to non-replicators — callers subtract or skip those
/// sites themselves when required.
#[inline]
pub fn traffic_scan(reads: &[u64], writes: &[u64], nearest: &[u64], sp_row: &[u64]) -> u64 {
    let mut total = 0u64;
    for (((&r, &w), &near), &sp) in reads.iter().zip(writes).zip(nearest).zip(sp_row) {
        total += r * near + w * sp;
    }
    total
}

/// Narrow-word variant of [`min_scan`] over `u32` rows.
///
/// Same pointwise-minimum semantics, half the memory traffic: a `u32`
/// cost matrix row streams twice as many lanes per cache line and per
/// SIMD register, so the autovectorised scan (`vpminud`) covers `M`
/// sites in half the passes. Used when the whole instance fits the
/// [`NarrowMirror`](crate::narrow::NarrowMirror) width check; since the
/// narrow values are exact copies of the wide ones, the surviving
/// minima are bitwise identical to the `u64` path.
#[inline]
pub fn min_scan_u32(nearest: &mut [u32], row: &[u32]) {
    for (slot, &cost) in nearest.iter_mut().zip(row) {
        *slot = (*slot).min(cost);
    }
}

/// Narrow-word variant of [`traffic_scan`]: `u32` inputs, `u64` sum.
///
/// Each product is computed in `u64` (`r·near` of two `u32` values
/// cannot overflow 64 bits: `(2³²−1)² < 2⁶⁴`), and the accumulator is
/// the same `u64` as the wide path, so for inputs that are exact `u32`
/// copies of the `u64` rows the result is bitwise identical. The
/// widening multiply keeps the loop a straight zip the compiler can
/// unroll and vectorise (`vpmuludq`).
#[inline]
pub fn traffic_scan_u32(reads: &[u32], writes: &[u32], nearest: &[u32], sp_row: &[u32]) -> u64 {
    let mut total = 0u64;
    for (((&r, &w), &near), &sp) in reads.iter().zip(writes).zip(nearest).zip(sp_row) {
        total += u64::from(r) * u64::from(near) + u64::from(w) * u64::from(sp);
    }
    total
}

/// Total set bits across a packed `u64` word slice.
///
/// One `popcnt` per word; this is the whole-scheme replica count over
/// [`ReplicationScheme`](crate::ReplicationScheme)'s bit matrix.
#[inline]
pub fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Set bits within the half-open bit range `[start, end)` of a packed
/// little-endian `u64` word slice.
///
/// Interior words cost one `popcnt` each; the two boundary words are
/// masked first. This makes per-site replica-degree scans over a
/// contiguous bit row `O(range/64)` instead of one probe per bit.
///
/// # Panics
///
/// Panics if `end < start` or `end > words.len() * 64`.
#[inline]
pub fn popcount_range(words: &[u64], start: usize, end: usize) -> usize {
    assert!(start <= end && end <= words.len() * 64, "bad bit range");
    if start == end {
        return 0;
    }
    let first = start / 64;
    let last = (end - 1) / 64;
    // Mask of bits >= the in-word offset of `start`.
    let head = u64::MAX << (start % 64);
    // Mask of bits < the in-word offset of `end` (inclusive last bit).
    let tail = u64::MAX >> (63 - (end - 1) % 64);
    if first == last {
        return (words[first] & head & tail).count_ones() as usize;
    }
    let mut total = (words[first] & head).count_ones() as usize;
    for &w in &words[first + 1..last] {
        total += w.count_ones() as usize;
    }
    total + (words[last] & tail).count_ones() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_scan_keeps_the_pointwise_minimum() {
        let mut nearest = vec![u64::MAX, 5, 0, 7];
        min_scan(&mut nearest, &[3, 9, 2, 7]);
        assert_eq!(nearest, vec![3, 5, 0, 7]);
        min_scan(&mut nearest, &[4, 1, 1, 1]);
        assert_eq!(nearest, vec![3, 1, 0, 1]);
    }

    #[test]
    fn traffic_scan_matches_the_naive_sum() {
        let reads = [2, 0, 5];
        let writes = [1, 3, 0];
        let nearest = [0, 4, 2];
        let sp = [0, 7, 9];
        let naive: u64 = (0..3)
            .map(|i| reads[i] * nearest[i] + writes[i] * sp[i])
            .sum();
        assert_eq!(traffic_scan(&reads, &writes, &nearest, &sp), naive);
    }

    /// Runs both widths over the same values and demands bit-identical
    /// results: the narrow kernels must be a pure representation change.
    fn assert_widths_agree(reads: &[u32], writes: &[u32], nearest: &[u32], sp: &[u32]) {
        let wide = |v: &[u32]| v.iter().map(|&x| u64::from(x)).collect::<Vec<u64>>();
        let (r64, w64, n64, s64) = (wide(reads), wide(writes), wide(nearest), wide(sp));
        assert_eq!(
            traffic_scan_u32(reads, writes, nearest, sp),
            traffic_scan(&r64, &w64, &n64, &s64),
        );
        let mut narrow = nearest.to_vec();
        let mut wide_nearest = n64.clone();
        min_scan_u32(&mut narrow, sp);
        min_scan(&mut wide_nearest, &s64);
        assert_eq!(wide(&narrow), wide_nearest);
    }

    #[test]
    fn u32_kernels_match_u64_on_boundary_values() {
        // Saturated u32 volumes: one product is (2^32-1)^2, just under
        // u64::MAX — the widening multiply must not wrap. (Only one
        // product may saturate: the u64 accumulator itself is covered by
        // the Problem build-time overflow guard, not by the kernels.)
        assert_widths_agree(
            &[u32::MAX, 0, 1],
            &[0, 3, 1],
            &[u32::MAX, 3, 0],
            &[5, 7, u32::MAX],
        );
        assert_eq!(
            traffic_scan_u32(&[u32::MAX], &[0], &[u32::MAX], &[0]),
            (u64::from(u32::MAX)) * (u64::from(u32::MAX)),
        );
    }

    #[test]
    fn u32_kernels_match_u64_on_zero_read_rows() {
        // All-zero read row: traffic collapses to the write half.
        assert_widths_agree(
            &[0, 0, 0, 0],
            &[7, 0, 2, u32::MAX],
            &[9, 9, 9, 9],
            &[1, 0, 3, 1],
        );
        assert_eq!(traffic_scan_u32(&[0; 4], &[0; 4], &[1; 4], &[1; 4]), 0);
    }

    #[test]
    fn popcount_sums_word_populations() {
        assert_eq!(popcount(&[]), 0);
        assert_eq!(popcount(&[0, u64::MAX, 1 << 63]), 65);
    }

    #[test]
    fn popcount_range_matches_per_bit_probes() {
        let words = [0xdead_beef_0123_4567u64, 0xffff_0000_aaaa_5555, 0x1];
        let total_bits = words.len() * 64;
        let probe = |start: usize, end: usize| {
            (start..end)
                .filter(|&i| words[i / 64] & (1u64 << (i % 64)) != 0)
                .count()
        };
        for start in [0, 1, 63, 64, 65, 100, 127, 128, 150, total_bits] {
            for end in [start, start + 1, 64, 128, 129, total_bits] {
                if end < start || end > total_bits {
                    continue;
                }
                assert_eq!(
                    popcount_range(&words, start, end),
                    probe(start, end),
                    "range [{start}, {end})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad bit range")]
    fn popcount_range_rejects_out_of_bounds() {
        popcount_range(&[0], 0, 65);
    }
}
