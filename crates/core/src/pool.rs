//! Re-export of the persistent worker pool.
//!
//! The canonical implementation lives in [`drp_net::pool`] — the bottom
//! of the workspace dependency DAG — so the parallel all-pairs
//! shortest-path kernel can use the same pool as the solvers without a
//! dependency cycle. Everything above `drp-net` should import from here
//! (`drp_core::pool`).

pub use drp_net::pool::*;
