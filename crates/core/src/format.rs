//! Plain-text serialization of instances and schemes.
//!
//! A small line-oriented format (no external parser dependencies) so the
//! CLI and scripts can exchange problems and solutions:
//!
//! ```text
//! drp-instance v1
//! sites 3
//! objects 2
//! costs 0 1 2  1 0 1  2 1 0
//! capacities 30 30 30
//! sizes 10 5
//! primaries 0 2
//! reads 0 3  4 0  6 0
//! writes 1 0  2 0  0 1
//! ```
//!
//! `costs` is the `M × M` matrix row-major; `reads`/`writes` are `M × N`
//! row-major (one row per site). Blank lines and `#` comments are ignored.
//! The scheme format lists, for every object, its replicator sites:
//!
//! ```text
//! drp-scheme v1
//! sites 3
//! objects 2
//! object 0 replicas 0 2
//! object 1 replicas 2
//! ```

use std::error::Error;
use std::fmt;

use drp_net::CostMatrix;

use crate::{DenseMatrix, ObjectId, Problem, ReplicationScheme, SiteId};

/// Errors produced when parsing the text formats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// The header line was missing or wrong.
    BadHeader {
        /// What was expected.
        expected: &'static str,
    },
    /// A required field was missing.
    MissingField {
        /// Field keyword.
        field: &'static str,
    },
    /// A line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The parsed data failed instance/scheme validation.
    Invalid {
        /// Underlying reason.
        reason: String,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadHeader { expected } => {
                write!(f, "bad header: expected `{expected}`")
            }
            FormatError::MissingField { field } => write!(f, "missing field `{field}`"),
            FormatError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            FormatError::Invalid { reason } => write!(f, "invalid data: {reason}"),
        }
    }
}

impl Error for FormatError {}

/// Renders a problem in the `drp-instance v1` format.
pub fn write_instance(problem: &Problem) -> String {
    use std::fmt::Write;
    let m = problem.num_sites();
    let n = problem.num_objects();
    let mut out = String::new();
    let _ = writeln!(out, "drp-instance v1");
    let _ = writeln!(out, "sites {m}");
    let _ = writeln!(out, "objects {n}");
    let mut costs = Vec::with_capacity(m * m);
    for i in 0..m {
        costs.extend(problem.costs().row(i).iter().map(|c| c.to_string()));
    }
    let _ = writeln!(out, "costs {}", costs.join(" "));
    let _ = writeln!(
        out,
        "capacities {}",
        problem
            .sites()
            .map(|i| problem.capacity(i).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        out,
        "sizes {}",
        problem
            .objects()
            .map(|k| problem.object_size(k).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let _ = writeln!(
        out,
        "primaries {}",
        problem
            .objects()
            .map(|k| problem.primary(k).to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let flat = |table: &DenseMatrix<u64>| -> String {
        table
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "reads {}", flat(problem.read_matrix()));
    let _ = writeln!(out, "writes {}", flat(problem.write_matrix()));
    out
}

struct FieldParser<'a> {
    lines: Vec<(usize, &'a str)>,
}

impl<'a> FieldParser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .collect();
        Self { lines }
    }

    fn header(&self, expected: &'static str) -> Result<(), FormatError> {
        match self.lines.first() {
            Some((_, line)) if *line == expected => Ok(()),
            _ => Err(FormatError::BadHeader { expected }),
        }
    }

    fn field(&self, keyword: &'static str) -> Result<(usize, &'a str), FormatError> {
        self.lines
            .iter()
            .find_map(|&(num, line)| {
                line.strip_prefix(keyword).and_then(|rest| {
                    rest.starts_with(char::is_whitespace)
                        .then(|| (num, rest.trim()))
                })
            })
            .ok_or(FormatError::MissingField { field: keyword })
    }

    fn numbers(&self, keyword: &'static str, expected_len: usize) -> Result<Vec<u64>, FormatError> {
        let (line, body) = self.field(keyword)?;
        let values: Result<Vec<u64>, _> = body.split_whitespace().map(str::parse).collect();
        let values = values.map_err(|e| FormatError::BadLine {
            line,
            reason: format!("bad number in `{keyword}`: {e}"),
        })?;
        if values.len() != expected_len {
            return Err(FormatError::BadLine {
                line,
                reason: format!(
                    "`{keyword}` expected {expected_len} values, got {}",
                    values.len()
                ),
            });
        }
        Ok(values)
    }

    fn scalar(&self, keyword: &'static str) -> Result<usize, FormatError> {
        let values = self.numbers(keyword, 1)?;
        Ok(values[0] as usize)
    }
}

/// Parses the `drp-instance v1` format.
///
/// # Errors
///
/// Returns a [`FormatError`] describing the first syntactic or semantic
/// problem (including cost-matrix and capacity validation).
pub fn read_instance(text: &str) -> Result<Problem, FormatError> {
    let parser = FieldParser::new(text);
    parser.header("drp-instance v1")?;
    let m = parser.scalar("sites")?;
    let n = parser.scalar("objects")?;
    let costs = parser.numbers("costs", m * m)?;
    let capacities = parser.numbers("capacities", m)?;
    let sizes = parser.numbers("sizes", n)?;
    let primaries = parser.numbers("primaries", n)?;
    let reads = parser.numbers("reads", m * n)?;
    let writes = parser.numbers("writes", m * n)?;

    let costs = CostMatrix::from_rows(m, costs).map_err(|e| FormatError::Invalid {
        reason: e.to_string(),
    })?;
    let reads = DenseMatrix::from_rows(m, n, reads).expect("length checked");
    let writes = DenseMatrix::from_rows(m, n, writes).expect("length checked");
    let mut builder = Problem::builder(costs);
    builder.objects_bulk(
        sizes,
        primaries
            .into_iter()
            .map(|p| SiteId::new(p as usize))
            .collect(),
    );
    builder.capacities(capacities);
    builder.read_matrix(reads);
    builder.write_matrix(writes);
    builder.build().map_err(|e| FormatError::Invalid {
        reason: e.to_string(),
    })
}

/// Renders a scheme in the `drp-scheme v1` format.
pub fn write_scheme(scheme: &ReplicationScheme) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "drp-scheme v1");
    let _ = writeln!(out, "sites {}", scheme.num_sites());
    let _ = writeln!(out, "objects {}", scheme.num_objects());
    for k in 0..scheme.num_objects() {
        let object = ObjectId::new(k);
        let replicas: Vec<String> = scheme.replicators(object).map(|s| s.to_string()).collect();
        let _ = writeln!(out, "object {k} replicas {}", replicas.join(" "));
    }
    out
}

/// Parses the `drp-scheme v1` format against an instance, revalidating
/// every invariant.
///
/// # Errors
///
/// Returns a [`FormatError`] on syntax errors, dimension mismatches,
/// missing primaries or capacity violations.
pub fn read_scheme(text: &str, problem: &Problem) -> Result<ReplicationScheme, FormatError> {
    let parser = FieldParser::new(text);
    parser.header("drp-scheme v1")?;
    let m = parser.scalar("sites")?;
    let n = parser.scalar("objects")?;
    if m != problem.num_sites() || n != problem.num_objects() {
        return Err(FormatError::Invalid {
            reason: format!(
                "scheme is {m}x{n}, instance is {}x{}",
                problem.num_sites(),
                problem.num_objects()
            ),
        });
    }
    let mut replicas: Vec<Option<Vec<usize>>> = vec![None; n];
    for &(line, body) in &parser.lines {
        let Some(rest) = body.strip_prefix("object ") else {
            continue;
        };
        let mut parts = rest.split_whitespace();
        let object: usize =
            parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(FormatError::BadLine {
                    line,
                    reason: "bad object id".into(),
                })?;
        if object >= n {
            return Err(FormatError::BadLine {
                line,
                reason: format!("object {object} out of range for {n} objects"),
            });
        }
        if parts.next() != Some("replicas") {
            return Err(FormatError::BadLine {
                line,
                reason: "expected `replicas` keyword".into(),
            });
        }
        let sites: Result<Vec<usize>, _> = parts.map(str::parse).collect();
        let sites = sites.map_err(|e| FormatError::BadLine {
            line,
            reason: format!("bad site id: {e}"),
        })?;
        replicas[object] = Some(sites);
    }
    for (k, slot) in replicas.iter().enumerate() {
        if slot.is_none() {
            return Err(FormatError::Invalid {
                reason: format!("object {k} has no `object {k} replicas ...` line"),
            });
        }
    }

    let scheme = ReplicationScheme::from_fn(problem, |site, object| {
        replicas[object.index()]
            .as_ref()
            .is_some_and(|sites| sites.contains(&site.index()))
    })
    .map_err(|e| FormatError::Invalid {
        reason: e.to_string(),
    })?;

    // Every listed site must be in range (from_fn silently ignores ids ≥ M,
    // so check explicitly) and the primary must have been listed.
    for (k, sites) in replicas.iter().enumerate() {
        let sites = sites.as_ref().expect("checked above");
        for &site in sites {
            if site >= m {
                return Err(FormatError::Invalid {
                    reason: format!("object {k} lists site {site}, network has {m} sites"),
                });
            }
        }
        let primary = problem.primary(ObjectId::new(k)).index();
        if !sites.contains(&primary) {
            return Err(FormatError::Invalid {
                reason: format!("object {k} is missing its primary site {primary}"),
            });
        }
    }
    Ok(scheme)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![30, 30, 30])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 0])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn instance_round_trips() {
        let p = sample_problem();
        let text = write_instance(&p);
        let back = read_instance(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn scheme_round_trips() {
        let p = sample_problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(1), ObjectId::new(1)).unwrap();
        let text = write_scheme(&s);
        let back = read_scheme(&text, &p).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = sample_problem();
        let mut text = String::from("# a comment\n\n");
        text.push_str(&write_instance(&p));
        text.push_str("\n# trailing\n");
        assert_eq!(read_instance(&text).unwrap(), p);
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(
            read_instance("sites 3\n"),
            Err(FormatError::BadHeader { .. })
        ));
        let p = sample_problem();
        assert!(matches!(
            read_scheme("drp-instance v1\n", &p),
            Err(FormatError::BadHeader { .. })
        ));
    }

    #[test]
    fn missing_and_malformed_fields_are_reported() {
        let text = "drp-instance v1\nsites 2\nobjects 1\n";
        assert!(matches!(
            read_instance(text),
            Err(FormatError::MissingField { field: "costs" })
        ));
        let text = "drp-instance v1\nsites 2\nobjects 1\ncosts 0 x 1 0\n";
        assert!(matches!(
            read_instance(text),
            Err(FormatError::BadLine { .. })
        ));
        let text = "drp-instance v1\nsites 2\nobjects 1\ncosts 0 1 1\n";
        assert!(matches!(
            read_instance(text),
            Err(FormatError::BadLine { .. })
        ));
    }

    #[test]
    fn semantic_validation_applies() {
        // Asymmetric cost matrix is rejected by CostMatrix validation.
        let text = "drp-instance v1\nsites 2\nobjects 1\ncosts 0 1 2 0\n\
                    capacities 10 10\nsizes 5\nprimaries 0\nreads 1 1\nwrites 0 0\n";
        assert!(matches!(
            read_instance(text),
            Err(FormatError::Invalid { .. })
        ));
    }

    #[test]
    fn scheme_validation_catches_bad_data() {
        let p = sample_problem();
        // Missing object line.
        let text = "drp-scheme v1\nsites 3\nobjects 2\nobject 0 replicas 0\n";
        assert!(matches!(
            read_scheme(text, &p),
            Err(FormatError::Invalid { .. })
        ));
        // Replica set missing the primary.
        let text = "drp-scheme v1\nsites 3\nobjects 2\nobject 0 replicas 1\nobject 1 replicas 2\n";
        assert!(matches!(
            read_scheme(text, &p),
            Err(FormatError::Invalid { .. })
        ));
        // Site out of range.
        let text =
            "drp-scheme v1\nsites 3\nobjects 2\nobject 0 replicas 0 9\nobject 1 replicas 2\n";
        assert!(matches!(
            read_scheme(text, &p),
            Err(FormatError::Invalid { .. })
        ));
        // Dimension mismatch.
        let text = "drp-scheme v1\nsites 5\nobjects 2\nobject 0 replicas 0\nobject 1 replicas 2\n";
        assert!(matches!(
            read_scheme(text, &p),
            Err(FormatError::Invalid { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = FormatError::BadLine {
            line: 4,
            reason: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 4: boom");
        assert!(FormatError::MissingField { field: "reads" }
            .to_string()
            .contains("reads"));
    }
}
