//! Re-export of the observability layer.
//!
//! The canonical implementation lives in [`drp_net::telemetry`] — the
//! bottom of the workspace dependency DAG — so the simulator can use the
//! same [`Recorder`] trait as the solvers without a dependency cycle.
//! Everything above `drp-net` should import from here
//! (`drp_core::telemetry`).

pub use drp_net::telemetry::*;
