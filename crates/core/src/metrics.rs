use std::fmt;
use std::time::Duration;

use crate::{Problem, ReplicationScheme};

/// Summary of one solver run on one instance, in the units the paper
/// reports: NTC, % savings over the primary-only allocation, replicas
/// created and wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionReport {
    /// Name of the algorithm that produced the scheme.
    pub algorithm: String,
    /// Total network transfer cost `D` of the scheme.
    pub cost: u64,
    /// Percentage of NTC saved versus the primary-only allocation.
    pub savings_percent: f64,
    /// Replicas created beyond the mandatory primary copies.
    pub extra_replicas: usize,
    /// Wall-clock time of the solver run.
    pub elapsed: Duration,
}

impl SolutionReport {
    /// Builds a report by evaluating `scheme` against `problem`.
    pub fn evaluate(
        algorithm: impl Into<String>,
        problem: &Problem,
        scheme: &ReplicationScheme,
        elapsed: Duration,
    ) -> Self {
        Self {
            algorithm: algorithm.into(),
            cost: problem.total_cost(scheme),
            savings_percent: problem.savings_percent(scheme),
            extra_replicas: scheme.extra_replica_count(),
            elapsed,
        }
    }
}

impl fmt::Display for SolutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cost={} savings={:.2}% replicas=+{} time={:.3}s",
            self.algorithm,
            self.cost,
            self.savings_percent,
            self.extra_replicas,
            self.elapsed.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;
    use drp_net::CostMatrix;

    #[test]
    fn evaluate_and_display() {
        let costs = CostMatrix::from_rows(2, vec![0, 2, 2, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![10, 10])
            .object(4, SiteId::new(0))
            .reads(vec![0, 5])
            .build()
            .unwrap();
        let s = ReplicationScheme::primary_only(&p);
        let report = SolutionReport::evaluate("test", &p, &s, Duration::from_millis(5));
        assert_eq!(report.cost, p.d_prime());
        assert_eq!(report.savings_percent, 0.0);
        assert_eq!(report.extra_replicas, 0);
        let text = report.to_string();
        assert!(text.contains("test") && text.contains("savings=0.00%"));
    }
}
