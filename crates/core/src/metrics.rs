use std::fmt;
use std::time::Duration;

use crate::{Problem, ReplicationScheme};

/// Summary of one solver run on one instance, in the units the paper
/// reports: NTC, % savings over the primary-only allocation, replicas
/// created and wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct SolutionReport {
    /// Name of the algorithm that produced the scheme.
    pub algorithm: String,
    /// Total network transfer cost `D` of the scheme.
    pub cost: u64,
    /// Percentage of NTC saved versus the primary-only allocation.
    pub savings_percent: f64,
    /// Replicas created beyond the mandatory primary copies.
    pub extra_replicas: usize,
    /// Wall-clock time of the solver run.
    pub elapsed: Duration,
}

impl SolutionReport {
    /// Builds a report by evaluating `scheme` against `problem`.
    pub fn evaluate(
        algorithm: impl Into<String>,
        problem: &Problem,
        scheme: &ReplicationScheme,
        elapsed: Duration,
    ) -> Self {
        Self {
            algorithm: algorithm.into(),
            cost: problem.total_cost(scheme),
            savings_percent: problem.savings_percent(scheme),
            extra_replicas: scheme.extra_replica_count(),
            elapsed,
        }
    }
}

impl fmt::Display for SolutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: cost={} savings={:.2}% replicas=+{} time={:.3}s",
            self.algorithm,
            self.cost,
            self.savings_percent,
            self.extra_replicas,
            self.elapsed.as_secs_f64()
        )
    }
}

/// What a fault-injected simulation cost the clients, in observed (not
/// analytic) terms.
///
/// Produced by `drp_algo::repair::run_faulted`, which drives a replication
/// scheme through a seeded `FaultPlan` with retrying readers, a queueing
/// write path and a background repair loop. Every field is integral and
/// deterministic for a fixed plan, so regression tests can assert reports
/// bitwise (`==`).
///
/// Accounting invariant: `reads_total = reads_local + reads_remote +
/// reads_degraded + reads_lost + reads_abandoned` (and likewise for
/// writes with `writes_first_try + writes_recovered + writes_lost +
/// writes_abandoned`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Client reads issued.
    pub reads_total: u64,
    /// Reads served from a replica co-located with the reader (NTC-free,
    /// as in Eq. 4's `C(i, SN_k(i)) = 0` case).
    pub reads_local: u64,
    /// Reads served by the nearest replicator on the first attempt — the
    /// undisturbed Eq. 4 read path.
    pub reads_remote: u64,
    /// Reads served only after timeout, retry or failover to a farther
    /// replicator: they paid more than Eq. 4 budgets for them.
    pub reads_degraded: u64,
    /// Reads served from a replica that lagged the primary's version.
    pub reads_stale: u64,
    /// Reads abandoned after exhausting the retry budget or the deadline.
    pub reads_lost: u64,
    /// Reads pending at a reader when it crashed (client-side loss).
    pub reads_abandoned: u64,
    /// Client writes issued.
    pub writes_total: u64,
    /// Writes acknowledged by the primary on the first attempt.
    pub writes_first_try: u64,
    /// Writes that found their primary down at least once and were queued
    /// at the writer until it drained on recovery.
    pub writes_queued: u64,
    /// Individual write retransmissions while draining queued writes.
    pub write_retries: u64,
    /// Queued writes that eventually got an acknowledgement.
    pub writes_recovered: u64,
    /// Writes abandoned after the retry budget or deadline.
    pub writes_lost: u64,
    /// Writes pending at a writer when it crashed.
    pub writes_abandoned: u64,
    /// Replicas created by the repair loop to restore the degree floor.
    pub repair_replicas_created: u64,
    /// NTC spent shipping object copies for repair and resynchronization.
    pub repair_traffic: u64,
    /// Sum over (replica, interval) of simulated time spent serving while
    /// out of date — the stale-read exposure window.
    pub stale_window: u64,
    /// Objects still below the degree floor when the run ended (capacity
    /// made the floor unsatisfiable, or no live source existed).
    pub min_degree_unmet: u64,
    /// First instant any object's live degree fell below the floor
    /// (`None` if that never happened).
    pub first_degradation_at: Option<u64>,
    /// Simulated time from the first degradation until the repair loop
    /// last restored every object to the floor (0 if never degraded;
    /// `completion_time - first` if never restored).
    pub time_to_restored_degree: u64,
    /// Simulated time at which the run went quiescent.
    pub completion_time: u64,
}

impl DegradationReport {
    /// Reads that were actually served, by any path.
    pub fn reads_served(&self) -> u64 {
        self.reads_local + self.reads_remote + self.reads_degraded
    }

    /// Does the read accounting add up?
    pub fn reads_balanced(&self) -> bool {
        self.reads_total == self.reads_served() + self.reads_lost + self.reads_abandoned
    }

    /// Does the write accounting add up?
    pub fn writes_balanced(&self) -> bool {
        self.writes_total
            == self.writes_first_try
                + self.writes_recovered
                + self.writes_lost
                + self.writes_abandoned
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reads: total={} local={} remote={} degraded={} stale={} lost={} abandoned={}",
            self.reads_total,
            self.reads_local,
            self.reads_remote,
            self.reads_degraded,
            self.reads_stale,
            self.reads_lost,
            self.reads_abandoned
        )?;
        writeln!(
            f,
            "writes: total={} first-try={} queued={} retries={} recovered={} lost={} abandoned={}",
            self.writes_total,
            self.writes_first_try,
            self.writes_queued,
            self.write_retries,
            self.writes_recovered,
            self.writes_lost,
            self.writes_abandoned
        )?;
        write!(
            f,
            "repair: replicas=+{} traffic={} stale-window={} unmet-floor={} \
             degraded-at={} restore-time={} completed-at={}",
            self.repair_replicas_created,
            self.repair_traffic,
            self.stale_window,
            self.min_degree_unmet,
            self.first_degradation_at
                .map_or_else(|| "never".into(), |t| t.to_string()),
            self.time_to_restored_degree,
            self.completion_time
        )
    }
}

/// Admission accounting for one ingested epoch, per site and in total.
///
/// Produced by the `drp-serve` ingestion front end: every offered request
/// is either admitted (handed to the epoch engine) or shed at the site's
/// admission limit, so `offered[i] == admitted[i] + shed[i]` holds for
/// every site — asserted by the ingestion property tests. All counts are
/// integral and independent of how many ingestion threads ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Requests the trace offered to each site this epoch.
    pub offered_by_site: Vec<u64>,
    /// Requests admitted into each site's epoch queue.
    pub admitted_by_site: Vec<u64>,
    /// Requests shed at each site's admission limit.
    pub shed_by_site: Vec<u64>,
    /// Batches the producer pulled from the trace stream.
    pub batches: u64,
}

impl IngestReport {
    /// Creates an all-zero report for `num_sites` sites.
    pub fn zeros(num_sites: usize) -> Self {
        Self {
            offered_by_site: vec![0; num_sites],
            admitted_by_site: vec![0; num_sites],
            shed_by_site: vec![0; num_sites],
            batches: 0,
        }
    }

    /// Total requests offered across all sites.
    pub fn offered(&self) -> u64 {
        self.offered_by_site.iter().sum()
    }

    /// Total requests admitted across all sites.
    pub fn admitted(&self) -> u64 {
        self.admitted_by_site.iter().sum()
    }

    /// Total requests shed across all sites.
    pub fn shed(&self) -> u64 {
        self.shed_by_site.iter().sum()
    }

    /// Does `offered == admitted + shed` hold at every site?
    pub fn balanced(&self) -> bool {
        self.offered_by_site.len() == self.admitted_by_site.len()
            && self.offered_by_site.len() == self.shed_by_site.len()
            && (0..self.offered_by_site.len())
                .all(|i| self.offered_by_site[i] == self.admitted_by_site[i] + self.shed_by_site[i])
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest: offered={} admitted={} shed={} batches={}",
            self.offered(),
            self.admitted(),
            self.shed(),
            self.batches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;
    use drp_net::CostMatrix;

    #[test]
    fn evaluate_and_display() {
        let costs = CostMatrix::from_rows(2, vec![0, 2, 2, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![10, 10])
            .object(4, SiteId::new(0))
            .reads(vec![0, 5])
            .build()
            .unwrap();
        let s = ReplicationScheme::primary_only(&p);
        let report = SolutionReport::evaluate("test", &p, &s, Duration::from_millis(5));
        assert_eq!(report.cost, p.d_prime());
        assert_eq!(report.savings_percent, 0.0);
        assert_eq!(report.extra_replicas, 0);
        let text = report.to_string();
        assert!(text.contains("test") && text.contains("savings=0.00%"));
    }

    #[test]
    fn ingest_report_balances_and_displays() {
        let mut r = IngestReport::zeros(3);
        assert!(r.balanced());
        r.offered_by_site = vec![5, 0, 7];
        r.admitted_by_site = vec![5, 0, 4];
        r.shed_by_site = vec![0, 0, 3];
        r.batches = 2;
        assert!(r.balanced());
        assert_eq!(r.offered(), 12);
        assert_eq!(r.admitted(), 9);
        assert_eq!(r.shed(), 3);
        r.shed_by_site[0] = 1;
        assert!(!r.balanced());
        r.shed_by_site[0] = 0;
        let text = r.to_string();
        assert!(text.contains("offered=12") && text.contains("batches=2"));
    }

    #[test]
    fn degradation_report_balances_and_displays() {
        let mut r = DegradationReport::default();
        assert!(r.reads_balanced() && r.writes_balanced());
        r.reads_total = 10;
        r.reads_local = 3;
        r.reads_remote = 4;
        r.reads_degraded = 2;
        r.reads_lost = 1;
        assert!(r.reads_balanced());
        assert_eq!(r.reads_served(), 9);
        r.reads_lost = 0;
        assert!(!r.reads_balanced());
        r.first_degradation_at = Some(42);
        let text = r.to_string();
        assert!(text.contains("degraded-at=42"));
        assert!(text.contains("reads: total=10"));
    }
}
