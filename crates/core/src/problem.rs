use drp_net::CostMatrix;
use serde::{Deserialize, Serialize};

use crate::{CoreError, DenseMatrix, ObjectId, Result, SiteId};

/// A validated instance of the Data Replication Problem.
///
/// Holds the network cost matrix `C(i, j)`, per-object sizes and primary
/// sites, per-site storage capacities and the read/write frequency tables,
/// plus precomputed aggregates used throughout the cost model:
///
/// * `total_reads(k)` / `total_writes(k)` — `Σ_i r_k(i)` / `Σ_i w_k(i)`;
/// * [`d_prime`](Self::d_prime) — the NTC of the primary-only allocation,
///   the paper's normalization baseline `D_prime`;
/// * [`v_prime`](Self::v_prime) — the per-object equivalent used by AGRA.
///
/// Instances are immutable; adaptive experiments derive new instances with
/// [`with_patterns`](Self::with_patterns) when read/write patterns shift.
///
/// Construct instances with [`Problem::builder`] or, for the paper's
/// synthetic workloads, with the generator in `drp-workload`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    costs: CostMatrix,
    object_sizes: Vec<u64>,
    primaries: Vec<SiteId>,
    capacities: Vec<u64>,
    reads: DenseMatrix<u64>,
    writes: DenseMatrix<u64>,
    /// Object-major (`N × M`) transpose of `reads`: row `k` is the
    /// contiguous `r_k(i)` vector the cost kernels stream over.
    reads_by_object: DenseMatrix<u64>,
    /// Object-major (`N × M`) transpose of `writes`.
    writes_by_object: DenseMatrix<u64>,
    total_reads: Vec<u64>,
    total_writes: Vec<u64>,
    /// Per-object update volume `Σ_x w_k(x) · o_k`: the factor every
    /// replica of `k` multiplies its primary-distance by in Eq. 4.
    write_volumes: Vec<u64>,
    d_prime: u64,
    v_prime: Vec<u64>,
}

impl Problem {
    /// Starts building an instance over the given network.
    pub fn builder(costs: CostMatrix) -> ProblemBuilder {
        ProblemBuilder::new(costs)
    }

    /// Number of sites `M`.
    pub fn num_sites(&self) -> usize {
        self.costs.num_sites()
    }

    /// Number of objects `N`.
    pub fn num_objects(&self) -> usize {
        self.object_sizes.len()
    }

    /// The network transfer cost matrix.
    pub fn costs(&self) -> &CostMatrix {
        &self.costs
    }

    /// Size `o_k` of an object in data units.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn object_size(&self, object: ObjectId) -> u64 {
        self.object_sizes[object.index()]
    }

    /// Primary site `SP_k` of an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn primary(&self, object: ObjectId) -> SiteId {
        self.primaries[object.index()]
    }

    /// Storage capacity `s(i)` of a site in data units.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn capacity(&self, site: SiteId) -> u64 {
        self.capacities[site.index()]
    }

    /// Reads `r_k(i)` issued from `site` for `object` during the period.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn reads(&self, site: SiteId, object: ObjectId) -> u64 {
        *self.reads.get(site.index(), object.index())
    }

    /// Writes `w_k(i)` issued from `site` for `object` during the period.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn writes(&self, site: SiteId, object: ObjectId) -> u64 {
        *self.writes.get(site.index(), object.index())
    }

    /// Total reads `Σ_i r_k(i)` for an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn total_reads(&self, object: ObjectId) -> u64 {
        self.total_reads[object.index()]
    }

    /// Total writes `Σ_i w_k(i)` for an object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn total_writes(&self, object: ObjectId) -> u64 {
        self.total_writes[object.index()]
    }

    /// Combined size of all objects, `Σ_k o_k`.
    pub fn total_object_size(&self) -> u64 {
        self.object_sizes.iter().sum()
    }

    /// Contiguous per-site read counts `r_k(·)` of one object — the
    /// structure-of-arrays row the cost kernels stream over instead of
    /// striding through the sites × objects table.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    #[inline]
    pub fn object_reads(&self, object: ObjectId) -> &[u64] {
        self.reads_by_object.row(object.index())
    }

    /// Contiguous per-site write counts `w_k(·)` of one object.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    #[inline]
    pub fn object_writes(&self, object: ObjectId) -> &[u64] {
        self.writes_by_object.row(object.index())
    }

    /// Precomputed update volume `Σ_x w_k(x) · o_k` of one object: what
    /// each replica site `j` contributes to Eq. 4 per unit of distance
    /// `C(j, SP_k)`.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    #[inline]
    pub fn write_volume(&self, object: ObjectId) -> u64 {
        self.write_volumes[object.index()]
    }

    /// The full read table (sites × objects).
    pub fn read_matrix(&self) -> &DenseMatrix<u64> {
        &self.reads
    }

    /// The full write table (sites × objects).
    pub fn write_matrix(&self) -> &DenseMatrix<u64> {
        &self.writes
    }

    /// NTC of the primary-only allocation (`D_prime`), the paper's
    /// normalization baseline for fitness and savings.
    pub fn d_prime(&self) -> u64 {
        self.d_prime
    }

    /// Per-object NTC under the primary-only allocation (`V_prime` of the
    /// AGRA fitness function).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range.
    pub fn v_prime(&self, object: ObjectId) -> u64 {
        self.v_prime[object.index()]
    }

    /// Iterates over all site ids.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> {
        (0..self.num_sites()).map(SiteId::new)
    }

    /// Iterates over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.num_objects()).map(ObjectId::new)
    }

    /// Derives a new instance with the same network, objects and capacities
    /// but different read/write patterns — the adaptive experiments' "the
    /// daytime pattern no longer matches last night's statistics" situation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] if the tables have the wrong
    /// shape.
    pub fn with_patterns(
        &self,
        reads: DenseMatrix<u64>,
        writes: DenseMatrix<u64>,
    ) -> Result<Problem> {
        let mut builder = ProblemBuilder::new(self.costs.clone());
        builder.objects_bulk(self.object_sizes.clone(), self.primaries.clone());
        builder.capacities(self.capacities.clone());
        builder.read_matrix(reads);
        builder.write_matrix(writes);
        builder.build()
    }

    /// Checks a site id, for callers that construct ids from raw input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SiteOutOfRange`] when invalid.
    pub fn check_site(&self, site: SiteId) -> Result<()> {
        if site.index() >= self.num_sites() {
            return Err(CoreError::SiteOutOfRange {
                site,
                num_sites: self.num_sites(),
            });
        }
        Ok(())
    }

    /// Checks an object id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ObjectOutOfRange`] when invalid.
    pub fn check_object(&self, object: ObjectId) -> Result<()> {
        if object.index() >= self.num_objects() {
            return Err(CoreError::ObjectOutOfRange {
                object,
                num_objects: self.num_objects(),
            });
        }
        Ok(())
    }
}

/// Incremental builder for [`Problem`].
///
/// # Examples
///
/// ```
/// use drp_core::{Problem, SiteId};
/// use drp_net::CostMatrix;
///
/// let costs = CostMatrix::from_rows(2, vec![0, 3, 3, 0])?;
/// let problem = Problem::builder(costs)
///     .capacities(vec![50, 50])
///     .object(10, SiteId::new(0))
///     .reads(vec![2, 8])
///     .writes(vec![1, 1])
///     .object(5, SiteId::new(1))
///     .reads(vec![4, 0])
///     .writes(vec![0, 2])
///     .build()?;
/// assert_eq!(problem.num_objects(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    costs: CostMatrix,
    object_sizes: Vec<u64>,
    primaries: Vec<SiteId>,
    capacities: Option<Vec<u64>>,
    per_object_reads: Vec<Vec<u64>>,
    per_object_writes: Vec<Vec<u64>>,
    bulk_reads: Option<DenseMatrix<u64>>,
    bulk_writes: Option<DenseMatrix<u64>>,
    error: Option<CoreError>,
}

impl ProblemBuilder {
    fn new(costs: CostMatrix) -> Self {
        Self {
            costs,
            object_sizes: Vec::new(),
            primaries: Vec::new(),
            capacities: None,
            per_object_reads: Vec::new(),
            per_object_writes: Vec::new(),
            bulk_reads: None,
            bulk_writes: None,
            error: None,
        }
    }

    fn fail(&mut self, e: CoreError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Sets the per-site storage capacities (length `M`).
    pub fn capacities(&mut self, capacities: Vec<u64>) -> &mut Self {
        if capacities.len() != self.costs.num_sites() {
            self.fail(CoreError::InvalidInstance {
                reason: format!(
                    "{} capacities supplied for {} sites",
                    capacities.len(),
                    self.costs.num_sites()
                ),
            });
        } else {
            self.capacities = Some(capacities);
        }
        self
    }

    /// Appends one object with the given size and primary site. Follow with
    /// [`reads`](Self::reads) / [`writes`](Self::writes) to set its pattern
    /// (defaults to all zeros).
    pub fn object(&mut self, size: u64, primary: SiteId) -> &mut Self {
        let m = self.costs.num_sites();
        if size == 0 {
            self.fail(CoreError::InvalidInstance {
                reason: "object sizes must be positive".into(),
            });
        } else if primary.index() >= m {
            self.fail(CoreError::SiteOutOfRange {
                site: primary,
                num_sites: m,
            });
        } else {
            self.object_sizes.push(size);
            self.primaries.push(primary);
            self.per_object_reads.push(vec![0; m]);
            self.per_object_writes.push(vec![0; m]);
        }
        self
    }

    /// Appends many objects at once (used by the workload generator).
    pub fn objects_bulk(&mut self, sizes: Vec<u64>, primaries: Vec<SiteId>) -> &mut Self {
        if sizes.len() != primaries.len() {
            self.fail(CoreError::InvalidInstance {
                reason: format!(
                    "{} sizes supplied for {} primaries",
                    sizes.len(),
                    primaries.len()
                ),
            });
            return self;
        }
        for (size, primary) in sizes.into_iter().zip(primaries) {
            self.object(size, primary);
        }
        self
    }

    /// Sets the per-site read counts (length `M`) of the most recently added
    /// object.
    pub fn reads(&mut self, reads: Vec<u64>) -> &mut Self {
        self.set_last_pattern(reads, true)
    }

    /// Sets the per-site write counts (length `M`) of the most recently
    /// added object.
    pub fn writes(&mut self, writes: Vec<u64>) -> &mut Self {
        self.set_last_pattern(writes, false)
    }

    fn set_last_pattern(&mut self, values: Vec<u64>, is_reads: bool) -> &mut Self {
        let m = self.costs.num_sites();
        if values.len() != m {
            self.fail(CoreError::InvalidInstance {
                reason: format!("pattern of length {} supplied for {m} sites", values.len()),
            });
            return self;
        }
        let table = if is_reads {
            &mut self.per_object_reads
        } else {
            &mut self.per_object_writes
        };
        match table.last_mut() {
            Some(slot) => *slot = values,
            None => self.fail(CoreError::InvalidInstance {
                reason: "reads/writes set before any object was added".into(),
            }),
        }
        self
    }

    /// Sets the entire read table at once (sites × objects); overrides any
    /// per-object values.
    pub fn read_matrix(&mut self, reads: DenseMatrix<u64>) -> &mut Self {
        self.bulk_reads = Some(reads);
        self
    }

    /// Sets the entire write table at once (sites × objects); overrides any
    /// per-object values.
    pub fn write_matrix(&mut self, writes: DenseMatrix<u64>) -> &mut Self {
        self.bulk_writes = Some(writes);
        self
    }

    fn assemble_table(
        per_object: &[Vec<u64>],
        bulk: Option<DenseMatrix<u64>>,
        m: usize,
        n: usize,
        what: &str,
    ) -> Result<DenseMatrix<u64>> {
        if let Some(bulk) = bulk {
            if bulk.rows() != m || bulk.cols() != n {
                return Err(CoreError::InvalidInstance {
                    reason: format!(
                        "{what} table is {}x{}, expected {m}x{n}",
                        bulk.rows(),
                        bulk.cols()
                    ),
                });
            }
            return Ok(bulk);
        }
        let mut table = DenseMatrix::zeros(m, n);
        for (k, column) in per_object.iter().enumerate() {
            for (i, &v) in column.iter().enumerate() {
                table.set(i, k, v);
            }
        }
        Ok(table)
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] (or a more specific error
    /// recorded during building) when:
    ///
    /// * any builder step failed (wrong lengths, zero sizes, bad primaries);
    /// * capacities were never supplied;
    /// * there are no objects;
    /// * some site cannot store its own primary copies.
    pub fn build(&mut self) -> Result<Problem> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let m = self.costs.num_sites();
        let n = self.object_sizes.len();
        if n == 0 {
            return Err(CoreError::InvalidInstance {
                reason: "an instance needs at least one object".into(),
            });
        }
        let capacities = self
            .capacities
            .clone()
            .ok_or_else(|| CoreError::InvalidInstance {
                reason: "capacities were never supplied".into(),
            })?;
        let reads =
            Self::assemble_table(&self.per_object_reads, self.bulk_reads.take(), m, n, "read")?;
        let writes = Self::assemble_table(
            &self.per_object_writes,
            self.bulk_writes.take(),
            m,
            n,
            "write",
        )?;

        // Every site must at least store its primary copies.
        let mut primary_load = vec![0u64; m];
        for (k, &primary) in self.primaries.iter().enumerate() {
            primary_load[primary.index()] += self.object_sizes[k];
        }
        for (i, (&load, &cap)) in primary_load.iter().zip(&capacities).enumerate() {
            if load > cap {
                return Err(CoreError::InvalidInstance {
                    reason: format!(
                        "site {i} stores primary copies totalling {load} data units \
                         but has capacity {cap}"
                    ),
                });
            }
        }

        // Object-major transposes: one contiguous row per object for the
        // cache-friendly cost kernels.
        let mut reads_by_object = DenseMatrix::zeros(n, m);
        let mut writes_by_object = DenseMatrix::zeros(n, m);
        for i in 0..m {
            for k in 0..n {
                reads_by_object.set(k, i, *reads.get(i, k));
                writes_by_object.set(k, i, *writes.get(i, k));
            }
        }

        let total_reads: Vec<u64> = (0..n)
            .map(|k| reads_by_object.row(k).iter().sum())
            .collect();
        let total_writes: Vec<u64> = (0..n)
            .map(|k| writes_by_object.row(k).iter().sum())
            .collect();

        // Eq. 4 multiplies a frequency total by an object size and a link
        // cost, and the update broadcast repeats such a term once per
        // replica. Per object that bounds V_k by
        // max_rw · max_size · max_cost · M exactly (the broadcast sum has
        // at most M − 1 nonzero terms since C(SP, SP) = 0, and the
        // read/write traffic contributes at most one more
        // max_rw · max_cost · max_size), and the total D accumulates N
        // such objects. The cost kernels use plain arithmetic, so reject
        // any instance whose extreme values could wrap u64 in release
        // builds — the full M · N chain, not just one object's term:
        // at M = 10k-scale traffic volumes the per-object guard alone
        // leaves the cross-object sum unprotected.
        let max_rw = (0..n)
            .map(|k| total_reads[k].saturating_add(total_writes[k]))
            .max()
            .unwrap_or(0);
        let max_size = self.object_sizes.iter().copied().max().unwrap_or(0);
        let max_cost = (0..m)
            .flat_map(|i| {
                let costs = &self.costs;
                (0..m).map(move |j| costs.cost(i, j))
            })
            .max()
            .unwrap_or(0);
        let fits = max_rw
            .checked_mul(max_size)
            .and_then(|x| x.checked_mul(max_cost))
            .and_then(|x| x.checked_mul(m as u64))
            .and_then(|x| x.checked_mul(n as u64))
            .is_some();
        if !fits {
            return Err(CoreError::InvalidInstance {
                reason: format!(
                    "cost terms may overflow u64: max access total {max_rw} x max object \
                     size {max_size} x max link cost {max_cost} x {m} sites x {n} objects"
                ),
            });
        }

        // Per-object update volumes Σ_x w_k(x) · o_k; the overflow guard
        // above bounds total_writes · size, so plain multiplication is safe.
        let write_volumes: Vec<u64> = (0..n)
            .map(|k| total_writes[k] * self.object_sizes[k])
            .collect();

        // D_prime / V_prime: with only primaries, every non-primary site pays
        // (r + w) · o · C(i, SP) and the primary itself pays nothing.
        let mut d_prime = 0u64;
        let mut v_prime = vec![0u64; n];
        for (k, &primary) in self.primaries.iter().enumerate() {
            let o = self.object_sizes[k];
            let sp_row = self.costs.row(primary.index());
            let r_row = reads_by_object.row(k);
            let w_row = writes_by_object.row(k);
            let mut v = 0u64;
            for i in 0..m {
                v += (r_row[i] + w_row[i]) * o * sp_row[i];
            }
            v_prime[k] = v;
            d_prime += v;
        }

        Ok(Problem {
            costs: self.costs.clone(),
            object_sizes: self.object_sizes.clone(),
            primaries: self.primaries.clone(),
            capacities,
            reads,
            writes,
            reads_by_object,
            writes_by_object,
            total_reads,
            total_writes,
            write_volumes,
            d_prime,
            v_prime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_costs() -> CostMatrix {
        CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap()
    }

    fn sample() -> Problem {
        Problem::builder(line_costs())
            .capacities(vec![30, 30, 30])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 0])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.num_sites(), 3);
        assert_eq!(p.num_objects(), 2);
        assert_eq!(p.object_size(ObjectId::new(0)), 10);
        assert_eq!(p.primary(ObjectId::new(1)), SiteId::new(2));
        assert_eq!(p.reads(SiteId::new(2), ObjectId::new(0)), 6);
        assert_eq!(p.writes(SiteId::new(1), ObjectId::new(0)), 2);
        assert_eq!(p.total_reads(ObjectId::new(0)), 10);
        assert_eq!(p.total_writes(ObjectId::new(0)), 3);
        assert_eq!(p.total_object_size(), 15);
    }

    #[test]
    fn object_major_rows_mirror_the_site_major_tables() {
        let p = sample();
        assert_eq!(p.object_reads(ObjectId::new(0)), &[0, 4, 6]);
        assert_eq!(p.object_writes(ObjectId::new(0)), &[1, 2, 0]);
        assert_eq!(p.object_reads(ObjectId::new(1)), &[3, 0, 0]);
        assert_eq!(p.object_writes(ObjectId::new(1)), &[0, 0, 1]);
        // write_volume = total_writes · size.
        assert_eq!(p.write_volume(ObjectId::new(0)), 3 * 10);
        assert_eq!(p.write_volume(ObjectId::new(1)), 5);
    }

    #[test]
    fn d_prime_matches_hand_computation() {
        let p = sample();
        // Object 0 (o=10, SP=0): site1 (4r+2w)·10·C(1,0)=60, site2 (6r+0w)·10·2=120.
        // Object 1 (o=5, SP=2): site0 (3r)·5·C(0,2)=30, site1 0.
        assert_eq!(p.v_prime(ObjectId::new(0)), 180);
        assert_eq!(p.v_prime(ObjectId::new(1)), 30);
        assert_eq!(p.d_prime(), 210);
    }

    #[test]
    fn build_requires_capacities_and_objects() {
        assert!(matches!(
            Problem::builder(line_costs())
                .capacities(vec![1, 1, 1])
                .build(),
            Err(CoreError::InvalidInstance { .. })
        ));
        assert!(matches!(
            Problem::builder(line_costs())
                .object(5, SiteId::new(0))
                .build(),
            Err(CoreError::InvalidInstance { .. })
        ));
    }

    #[test]
    fn build_rejects_zero_size_and_bad_primary() {
        let err = Problem::builder(line_costs())
            .capacities(vec![9, 9, 9])
            .object(0, SiteId::new(0))
            .build();
        assert!(err.is_err());
        let err = Problem::builder(line_costs())
            .capacities(vec![9, 9, 9])
            .object(1, SiteId::new(7))
            .build();
        assert!(matches!(err, Err(CoreError::SiteOutOfRange { .. })));
    }

    #[test]
    fn build_rejects_overfull_primary_site() {
        let err = Problem::builder(line_costs())
            .capacities(vec![5, 9, 9])
            .object(6, SiteId::new(0))
            .build();
        assert!(matches!(err, Err(CoreError::InvalidInstance { .. })));
    }

    #[test]
    fn build_rejects_instances_whose_costs_could_overflow() {
        // max_rw · max_size · max_cost · M · N must fit in u64. With link
        // cost 3, M = 3, N = 1 and size 1 << 32, a read total of 1 << 31
        // pushes the product past u64::MAX (2^31 · 2^32 · 3 · 3 ≈ 2^66.2).
        let err = Problem::builder(line_costs())
            .capacities(vec![u64::MAX, u64::MAX, u64::MAX])
            .object(1 << 32, SiteId::new(0))
            .reads(vec![0, 1 << 31, 0])
            .build();
        match err {
            Err(CoreError::InvalidInstance { reason }) => {
                assert!(reason.contains("overflow"), "unexpected reason: {reason}");
            }
            other => panic!("expected InvalidInstance, got {other:?}"),
        }

        // Just inside the limit builds fine: 2^30 · 2^32 · 1 · 3 · 1 < 2^64
        // with unit link costs.
        let unit_costs = CostMatrix::from_rows(3, vec![0, 1, 1, 1, 0, 1, 1, 1, 0]).unwrap();
        let ok = Problem::builder(unit_costs.clone())
            .capacities(vec![u64::MAX, u64::MAX, u64::MAX])
            .object(1 << 32, SiteId::new(0))
            .reads(vec![0, 1 << 30, 0])
            .build();
        assert!(ok.is_ok(), "near-limit instance should build: {ok:?}");

        // The object axis is part of the guard: the same near-limit object
        // plus one more (even a silent one) doubles the worst-case total D
        // past u64::MAX, because D accumulates one V_k per object.
        let err = Problem::builder(unit_costs)
            .capacities(vec![u64::MAX, u64::MAX, u64::MAX])
            .object(1 << 32, SiteId::new(0))
            .reads(vec![0, 1 << 30, 0])
            .object(1 << 32, SiteId::new(1))
            .build();
        assert!(
            matches!(err, Err(CoreError::InvalidInstance { .. })),
            "cross-object accumulation must be guarded: {err:?}"
        );
    }

    #[test]
    fn pattern_length_is_validated() {
        let err = Problem::builder(line_costs())
            .capacities(vec![9, 9, 9])
            .object(1, SiteId::new(0))
            .reads(vec![1, 2])
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn with_patterns_replaces_tables() {
        let p = sample();
        let reads = DenseMatrix::from_rows(3, 2, vec![1, 0, 0, 0, 0, 0]).unwrap();
        let writes = DenseMatrix::zeros(3, 2);
        let q = p.with_patterns(reads, writes).unwrap();
        assert_eq!(q.total_reads(ObjectId::new(0)), 1);
        assert_eq!(q.total_writes(ObjectId::new(0)), 0);
        assert_eq!(q.num_sites(), p.num_sites());
        // Wrong shape is rejected.
        assert!(p
            .with_patterns(DenseMatrix::zeros(2, 2), DenseMatrix::zeros(3, 2))
            .is_err());
    }

    #[test]
    fn check_ids() {
        let p = sample();
        assert!(p.check_site(SiteId::new(2)).is_ok());
        assert!(p.check_site(SiteId::new(3)).is_err());
        assert!(p.check_object(ObjectId::new(1)).is_ok());
        assert!(p.check_object(ObjectId::new(2)).is_err());
    }

    #[test]
    fn bulk_matrix_shape_is_validated() {
        let err = Problem::builder(line_costs())
            .capacities(vec![9, 9, 9])
            .object(1, SiteId::new(0))
            .read_matrix(DenseMatrix::zeros(3, 5))
            .build();
        assert!(err.is_err());
    }
}
