//! Availability analysis of replication schemes — a reproduction extension.
//!
//! The paper's conclusion lists consistency and fault tolerance as future
//! work. This module quantifies the fault-tolerance *side effect* of the
//! NTC-driven placements: assuming sites fail independently with
//! probability `p`, a read of object `k` succeeds as long as at least one
//! replicator is alive, so
//!
//! ```text
//! availability(k) = 1 − p^{|R_k|}
//! ```
//!
//! and demand-weighted system availability weighs objects by their read
//! volume. The `repro` ablation tables use this to show that GRA's wider
//! replication (vs SRA) buys measurable availability for free.

use crate::{ObjectId, Problem, ReplicationScheme};

/// Availability of a single object under independent site-failure
/// probability `p`: the chance at least one replica survives.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or `object` is out of range.
pub fn object_availability(scheme: &ReplicationScheme, object: ObjectId, p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "failure probability must be in [0, 1]"
    );
    1.0 - p.powi(scheme.replica_degree(object) as i32)
}

/// Mean object availability (unweighted).
///
/// # Panics
///
/// Panics if `p` is out of range or the scheme has no objects.
pub fn mean_availability(scheme: &ReplicationScheme, p: f64) -> f64 {
    assert!(scheme.num_objects() > 0, "scheme has no objects");
    let total: f64 = (0..scheme.num_objects())
        .map(|k| object_availability(scheme, ObjectId::new(k), p))
        .sum();
    total / scheme.num_objects() as f64
}

/// Read-demand-weighted availability: objects that are read more count
/// proportionally more.
///
/// # Panics
///
/// Panics if `p` is out of range or the scheme shape mismatches the
/// problem.
pub fn demand_weighted_availability(problem: &Problem, scheme: &ReplicationScheme, p: f64) -> f64 {
    assert_eq!(
        scheme.num_objects(),
        problem.num_objects(),
        "shape mismatch"
    );
    let mut weighted = 0.0;
    let mut total_reads = 0.0;
    for k in problem.objects() {
        let reads = problem.total_reads(k) as f64;
        weighted += reads * object_availability(scheme, k, p);
        total_reads += reads;
    }
    if total_reads == 0.0 {
        mean_availability(scheme, p)
    } else {
        weighted / total_reads
    }
}

/// The expected fraction of the period's reads that survive the failure of
/// one specific site (every replica hosted there vanishes; reads re-route
/// when another replica exists).
///
/// # Panics
///
/// Panics if ids are out of range.
pub fn reads_surviving_site_failure(
    problem: &Problem,
    scheme: &ReplicationScheme,
    failed: crate::SiteId,
) -> f64 {
    let mut surviving = 0u64;
    let mut total = 0u64;
    for k in problem.objects() {
        let reads = problem.total_reads(k);
        total += reads;
        let lone_copy_lost = scheme.replica_degree(k) == 1 && scheme.holds(failed, k);
        if !lone_copy_lost {
            surviving += reads;
        }
    }
    if total == 0 {
        1.0
    } else {
        surviving as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiteId;
    use drp_net::CostMatrix;

    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .object(5, SiteId::new(2))
            .reads(vec![30, 0, 0])
            .build()
            .unwrap()
    }

    #[test]
    fn single_copy_availability_is_one_minus_p() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        let a = object_availability(&s, ObjectId::new(0), 0.1);
        assert!((a - 0.9).abs() < 1e-12);
    }

    #[test]
    fn replication_raises_availability() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        let before = mean_availability(&s, 0.2);
        s.add_replica(&p, SiteId::new(1), ObjectId::new(0)).unwrap();
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        let after = mean_availability(&s, 0.2);
        assert!(after > before);
        // Object 0 now has 3 replicas: 1 − 0.2³ = 0.992.
        assert!((object_availability(&s, ObjectId::new(0), 0.2) - 0.992).abs() < 1e-12);
    }

    #[test]
    fn demand_weighting_follows_the_hot_object() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        // Object 1 carries 30 of 40 total reads; replicating *it* moves the
        // weighted metric more than replicating object 0.
        let base = demand_weighted_availability(&p, &s, 0.3);
        let mut s0 = s.clone();
        s0.add_replica(&p, SiteId::new(1), ObjectId::new(0))
            .unwrap();
        let with_cold = demand_weighted_availability(&p, &s0, 0.3);
        s.add_replica(&p, SiteId::new(0), ObjectId::new(1)).unwrap();
        let with_hot = demand_weighted_availability(&p, &s, 0.3);
        assert!(with_hot > with_cold && with_cold > base);
    }

    #[test]
    fn site_failure_survival() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        // Killing site 0 loses object 0's only copy: 10 of 40 reads served.
        let survive = reads_surviving_site_failure(&p, &s, SiteId::new(0));
        assert!((survive - 30.0 / 40.0).abs() < 1e-12);
        // Site 1 hosts nothing: everything survives.
        assert_eq!(reads_surviving_site_failure(&p, &s, SiteId::new(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn out_of_range_probability_panics() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        object_availability(&s, ObjectId::new(0), 1.5);
    }
}
