//! Discrete-event replay of a read/write pattern against a replication
//! scheme.
//!
//! Every site issues its period's reads and writes as messages on the
//! `drp-net` simulator following the paper's replication policy:
//!
//! * reads go to the nearest replicator `SN_k(i)`, which returns the object;
//! * writes ship the updated object to the primary `SP_k`, which broadcasts
//!   it to every other replicator.
//!
//! Requests with the same `(site, object)` pair are batched into one message
//! whose size is the aggregate data volume, so the replay is O(M·N +
//! broadcasts) messages regardless of request counts.
//!
//! Two conventions align the replay with Eq. 4 exactly (and are asserted by
//! [`replay_total_cost`]'s tests):
//!
//! * a *replicator* that writes ships a zero-size control message — the
//!   model charges the `C(i, SP_k)` link once per write for replicators (it
//!   already receives the broadcast over that same shortest path);
//! * read *requests* are control messages (size 0); only the returned data
//!   is charged.

use std::sync::Arc;

use drp_net::sim::{Context, Message, Node, Simulator};

use crate::{ObjectId, Problem, ReplicationScheme, Result, SiteId};

/// Messages exchanged during the replay.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReplayMsg {
    /// `count` batched read requests for an object (control, size 0).
    ReadRequest { object: usize, count: u64 },
    /// The object data satisfying `count` reads.
    Data { object: usize, count: u64 },
    /// `count` batched writes shipped toward the primary.
    WriteShip { object: usize, count: u64 },
    /// The updated object broadcast to one replicator, `count` times.
    Update { object: usize, count: u64 },
}

struct Shared {
    problem: Problem,
    scheme: ReplicationScheme,
    /// updates_received[i * N + k]: update batches delivered to site i for
    /// object k, used to verify the broadcast half of the policy.
    updates_received: std::sync::Mutex<Vec<u64>>,
}

struct SiteNode {
    shared: Arc<Shared>,
}

impl SiteNode {
    fn broadcast_updates(&self, ctx: &mut Context<'_, ReplayMsg>, object: usize, count: u64) {
        let shared = &self.shared;
        let k = ObjectId::new(object);
        let size = shared.problem.object_size(k);
        let me = ctx.node_id();
        let replicators: Vec<usize> = shared
            .scheme
            .replicators(k)
            .map(SiteId::index)
            .filter(|&j| j != me)
            .collect();
        for j in replicators {
            ctx.send(j, count * size, ReplayMsg::Update { object, count });
        }
    }
}

impl Node<ReplayMsg> for SiteNode {
    fn on_start(&mut self, ctx: &mut Context<'_, ReplayMsg>) {
        let shared = Arc::clone(&self.shared);
        let me = SiteId::new(ctx.node_id());
        for k in shared.problem.objects() {
            let object = k.index();
            // Reads: fetch from the nearest replicator unless we hold one.
            let reads = shared.problem.reads(me, k);
            if reads > 0 {
                let (sn, _) = shared.scheme.nearest_replica(&shared.problem, me, k);
                if sn != me {
                    ctx.send(
                        sn.index(),
                        0,
                        ReplayMsg::ReadRequest {
                            object,
                            count: reads,
                        },
                    );
                }
            }
            // Writes: ship to the primary (object-sized for non-replicators,
            // control-sized for replicators), which broadcasts.
            let writes = shared.problem.writes(me, k);
            if writes > 0 {
                let sp = shared.problem.primary(k);
                if sp == me {
                    self.broadcast_updates(ctx, object, writes);
                } else {
                    let size = if shared.scheme.holds(me, k) {
                        0
                    } else {
                        writes * shared.problem.object_size(k)
                    };
                    ctx.send(
                        sp.index(),
                        size,
                        ReplayMsg::WriteShip {
                            object,
                            count: writes,
                        },
                    );
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ReplayMsg>, msg: Message<ReplayMsg>) {
        match msg.payload {
            ReplayMsg::ReadRequest { object, count } => {
                let size = self.shared.problem.object_size(ObjectId::new(object));
                ctx.send(msg.src, count * size, ReplayMsg::Data { object, count });
            }
            ReplayMsg::WriteShip { object, count } => {
                debug_assert_eq!(
                    self.shared.problem.primary(ObjectId::new(object)),
                    SiteId::new(ctx.node_id()),
                    "write shipped to a non-primary site"
                );
                self.broadcast_updates(ctx, object, count);
            }
            ReplayMsg::Update { object, count } => {
                let n = self.shared.problem.num_objects();
                let mut received = self
                    .shared
                    .updates_received
                    .lock()
                    .expect("update ledger poisoned");
                received[ctx.node_id() * n + object] += count;
            }
            ReplayMsg::Data { .. } => {}
        }
    }
}

/// Replays the whole read/write pattern and returns the measured network
/// transfer cost, which equals [`Problem::total_cost`] for the same scheme.
///
/// # Errors
///
/// Returns an error if the simulation exceeds its event budget (which would
/// indicate a protocol bug, not a property of the instance).
///
/// # Examples
///
/// ```
/// use drp_core::{Problem, ReplicationScheme, SiteId, replay::replay_total_cost};
/// use drp_net::CostMatrix;
///
/// let costs = CostMatrix::from_rows(2, vec![0, 3, 3, 0])?;
/// let problem = Problem::builder(costs)
///     .capacities(vec![10, 10])
///     .object(2, SiteId::new(0))
///     .reads(vec![0, 4])
///     .writes(vec![1, 1])
///     .build()?;
/// let scheme = ReplicationScheme::primary_only(&problem);
/// let measured = replay_total_cost(&problem, &scheme)?;
/// assert_eq!(measured, problem.total_cost(&scheme));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn replay_total_cost(problem: &Problem, scheme: &ReplicationScheme) -> Result<u64> {
    Ok(replay_verified(problem, scheme)?.transfer_cost)
}

/// Outcome of a verified replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// The measured NTC (equals [`Problem::total_cost`]).
    pub transfer_cost: u64,
    /// Update batches delivered across all replicas.
    pub updates_delivered: u64,
    /// Simulated completion time.
    pub completion_time: u64,
}

/// Replays the pattern and additionally verifies the *consistency* half of
/// the replication policy: every replicator of every object (other than the
/// primary) must receive exactly the object's total writes as updates —
/// i.e. no update is lost and none is delivered twice.
///
/// # Errors
///
/// Returns [`crate::CoreError::InvalidInstance`] if the delivery ledger
/// disagrees with the pattern (which would indicate a policy bug), or
/// simulator errors.
pub fn replay_verified(problem: &Problem, scheme: &ReplicationScheme) -> Result<ReplayReport> {
    let shared = Arc::new(Shared {
        problem: problem.clone(),
        scheme: scheme.clone(),
        updates_received: std::sync::Mutex::new(vec![
            0;
            problem.num_sites() * problem.num_objects()
        ]),
    });
    let nodes: Vec<Box<dyn Node<ReplayMsg>>> = (0..problem.num_sites())
        .map(|_| {
            Box::new(SiteNode {
                shared: Arc::clone(&shared),
            }) as Box<dyn Node<ReplayMsg>>
        })
        .collect();
    let mut sim = Simulator::new(problem.costs(), nodes)?;
    sim.run_to_completion()?;

    let received = shared
        .updates_received
        .lock()
        .expect("update ledger poisoned");
    let n = problem.num_objects();
    let mut delivered = 0u64;
    for k in problem.objects() {
        let expected = problem.total_writes(k);
        for i in problem.sites() {
            let got = received[i.index() * n + k.index()];
            let should = if scheme.holds(i, k) && problem.primary(k) != i {
                expected
            } else {
                0
            };
            if got != should {
                return Err(crate::CoreError::InvalidInstance {
                    reason: format!(
                        "site {i} received {got} updates for object {k}, expected {should}"
                    ),
                });
            }
            delivered += got;
        }
    }
    Ok(ReplayReport {
        transfer_cost: sim.stats().transfer_cost,
        updates_delivered: delivered,
        completion_time: sim.now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 2])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn replay_matches_analytic_cost_primary_only() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        assert_eq!(replay_total_cost(&p, &s).unwrap(), p.total_cost(&s));
    }

    #[test]
    fn replay_matches_analytic_cost_with_replicas() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        s.add_replica(&p, SiteId::new(1), ObjectId::new(0)).unwrap();
        s.add_replica(&p, SiteId::new(0), ObjectId::new(1)).unwrap();
        assert_eq!(replay_total_cost(&p, &s).unwrap(), p.total_cost(&s));
    }

    #[test]
    fn verified_replay_counts_update_deliveries() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        let report = replay_verified(&p, &s).unwrap();
        // Object 0 has 3 total writes and one non-primary replicator.
        assert_eq!(report.updates_delivered, 3);
        assert_eq!(report.transfer_cost, p.total_cost(&s));
        assert!(report.completion_time > 0);
    }

    #[test]
    fn replay_matches_analytic_cost_full_replication() {
        let p = problem();
        let s = ReplicationScheme::from_fn(&p, |_, _| true).unwrap();
        assert_eq!(replay_total_cost(&p, &s).unwrap(), p.total_cost(&s));
    }
}
