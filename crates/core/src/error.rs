use std::error::Error;
use std::fmt;

use crate::{ObjectId, SiteId};

/// Errors of the durable serving runtime's write-ahead log.
///
/// Recovery treats a torn tail as survivable: the reader stops at the last
/// valid record and reports what was dropped through these variants instead
/// of panicking, so a crash mid-append never bricks the log.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// A WAL record failed its CRC or structural decode. Everything before
    /// `record` is intact; the record itself and the rest of the log are
    /// dropped by recovery.
    WalCorrupt {
        /// Zero-based index of the first unreadable record.
        record: u64,
        /// What the decoder rejected.
        reason: String,
    },
    /// The WAL ends mid-record (a torn write at crash time). The valid
    /// prefix is kept; the torn bytes are dropped by recovery.
    WalTruncated {
        /// Zero-based index of the record whose frame is incomplete.
        record: u64,
        /// Bytes of intact log preceding the torn frame.
        valid_bytes: u64,
        /// Torn trailing bytes that were discarded.
        dropped_bytes: u64,
    },
    /// The WAL belongs to a different run: its `RunStart` header does not
    /// match the configuration recovery was asked to resume.
    WalMismatch {
        /// Human-readable difference.
        reason: String,
    },
    /// The WAL's backing store failed an I/O operation.
    WalIo {
        /// The underlying I/O failure, rendered.
        reason: String,
    },
    /// A value was too large for its fixed-width WAL frame (e.g. a monitor
    /// genome longer than `u32::MAX` bits). The snapshot is refused with
    /// this error instead of panicking mid-serve.
    FrameOverflow {
        /// What was being framed.
        what: &'static str,
        /// The value that did not fit.
        value: u64,
        /// The frame's maximum.
        limit: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WalCorrupt { record, reason } => {
                write!(f, "wal record {record} is corrupt: {reason}")
            }
            ServeError::WalTruncated {
                record,
                valid_bytes,
                dropped_bytes,
            } => write!(
                f,
                "wal truncated at record {record}: kept {valid_bytes} valid bytes, \
                 dropped {dropped_bytes} torn bytes"
            ),
            ServeError::WalMismatch { reason } => {
                write!(f, "wal does not match this run: {reason}")
            }
            ServeError::WalIo { reason } => write!(f, "wal i/o failed: {reason}"),
            ServeError::FrameOverflow { what, value, limit } => {
                write!(f, "{what} {value} exceeds the wal frame limit {limit}")
            }
        }
    }
}

impl Error for ServeError {}

/// Errors produced when constructing or manipulating DRP instances.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A site index was out of range.
    SiteOutOfRange {
        /// The offending site.
        site: SiteId,
        /// Number of sites in the instance.
        num_sites: usize,
    },
    /// An object index was out of range.
    ObjectOutOfRange {
        /// The offending object.
        object: ObjectId,
        /// Number of objects in the instance.
        num_objects: usize,
    },
    /// A site lacks the free capacity for a new replica.
    InsufficientCapacity {
        /// Target site.
        site: SiteId,
        /// Object that does not fit.
        object: ObjectId,
        /// Free data units at the site.
        free: u64,
        /// Size of the object.
        size: u64,
    },
    /// The site already holds a replica of the object.
    AlreadyReplica {
        /// Target site.
        site: SiteId,
        /// Replicated object.
        object: ObjectId,
    },
    /// The site holds no replica of the object.
    NotReplica {
        /// Target site.
        site: SiteId,
        /// Object in question.
        object: ObjectId,
    },
    /// Attempted to deallocate a primary copy, which the policy forbids.
    PrimaryUndeletable {
        /// Object whose primary was targeted.
        object: ObjectId,
    },
    /// An instance failed validation.
    InvalidInstance {
        /// Human-readable reason.
        reason: String,
    },
    /// An error bubbled up from the network substrate.
    Net(drp_net::NetError),
    /// An error from the durable serving runtime's write-ahead log.
    Serve(ServeError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SiteOutOfRange { site, num_sites } => {
                write!(f, "site {site} out of range for {num_sites} sites")
            }
            CoreError::ObjectOutOfRange {
                object,
                num_objects,
            } => {
                write!(f, "object {object} out of range for {num_objects} objects")
            }
            CoreError::InsufficientCapacity {
                site,
                object,
                free,
                size,
            } => write!(
                f,
                "site {site} has {free} free data units, object {object} needs {size}"
            ),
            CoreError::AlreadyReplica { site, object } => {
                write!(f, "site {site} already replicates object {object}")
            }
            CoreError::NotReplica { site, object } => {
                write!(f, "site {site} does not replicate object {object}")
            }
            CoreError::PrimaryUndeletable { object } => {
                write!(
                    f,
                    "the primary copy of object {object} cannot be deallocated"
                )
            }
            CoreError::InvalidInstance { reason } => write!(f, "invalid instance: {reason}"),
            CoreError::Net(e) => write!(f, "network error: {e}"),
            CoreError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Net(e) => Some(e),
            CoreError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for CoreError {
    fn from(e: ServeError) -> Self {
        CoreError::Serve(e)
    }
}

impl From<drp_net::NetError> for CoreError {
    fn from(e: drp_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<drp_net::sim::SimError> for CoreError {
    fn from(e: drp_net::sim::SimError) -> Self {
        CoreError::Net(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::InsufficientCapacity {
            site: SiteId::new(1),
            object: ObjectId::new(2),
            free: 3,
            size: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains('1') && msg.contains('2') && msg.contains('3') && msg.contains('9'));
    }

    #[test]
    fn net_errors_convert_and_chain() {
        let e: CoreError = drp_net::NetError::EmptyNetwork.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
        assert_send_sync::<ServeError>();
    }

    #[test]
    fn serve_errors_convert_chain_and_describe_the_damage() {
        let torn = ServeError::WalTruncated {
            record: 7,
            valid_bytes: 320,
            dropped_bytes: 11,
        };
        let msg = torn.to_string();
        assert!(
            msg.contains('7') && msg.contains("320") && msg.contains("11"),
            "{msg}"
        );
        let e: CoreError = torn.into();
        assert!(e.source().is_some());
        let corrupt = ServeError::WalCorrupt {
            record: 3,
            reason: "crc mismatch".into(),
        };
        assert!(corrupt.to_string().contains("crc mismatch"));
    }
}
