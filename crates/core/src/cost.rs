//! The Eq. 4 network-transfer-cost model, implemented as methods on
//! [`Problem`].
//!
//! All quantities are exact integers: costs, sizes and frequencies are
//! integral, so the NTC is too. Savings percentages are the only floating
//! point values.

use crate::{kernels, ObjectId, Problem, ReplicationScheme, SiteId};

impl Problem {
    /// Fills `nearest[i] = min { C(i, j) : j ∈ replicas }` without
    /// allocating — one [`kernels::min_scan`] per replica row. `replicas`
    /// may be in any order; an empty list leaves every slot at
    /// [`u64::MAX`].
    ///
    /// # Panics
    ///
    /// Panics if `nearest.len() != num_sites()` or a replica index is out of
    /// range.
    pub fn nearest_costs_into(&self, replicas: &[usize], nearest: &mut [u64]) {
        assert_eq!(nearest.len(), self.num_sites());
        nearest.fill(u64::MAX);
        for &j in replicas {
            kernels::min_scan(nearest, self.costs().row(j));
        }
    }

    /// Eq. 4 per-object NTC for an explicit replica set, using `nearest` as
    /// scratch — the zero-allocation kernel behind [`Self::object_cost`]
    /// and the chromosome/subset evaluators in `drp-algo`.
    ///
    /// `replicas` must be sorted ascending and contain the primary;
    /// `nearest` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range, `nearest.len() != num_sites()`, or
    /// `replicas` is unsorted (debug builds).
    pub fn object_cost_from_replicas(
        &self,
        object: ObjectId,
        replicas: &[usize],
        nearest: &mut [u64],
    ) -> u64 {
        debug_assert!(replicas.windows(2).all(|w| w[0] < w[1]));
        let o = self.object_size(object);
        let sp = self.primary(object).index();
        let sp_row = self.costs().row(sp);
        let r_row = self.object_reads(object);
        let w_row = self.object_writes(object);

        // Update broadcast: every replicator receives every write —
        // write_volume(k) = Σ_x w_k(x) · o_k per unit of distance to SP.
        // Replicators also don't ship their own writes to the primary, so
        // collect their w·C(j, SP) terms to subtract from the full scan.
        self.nearest_costs_into(replicas, nearest);
        let mut broadcast = 0u64;
        let mut replica_writes = 0u64;
        for &j in replicas {
            broadcast += sp_row[j];
            replica_writes += w_row[j] * sp_row[j];
        }

        // Reads from the nearest replica plus writes to SP, streamed
        // branchlessly over every site: replicators contribute zero read
        // traffic (their nearest distance is 0) and their write terms were
        // collected above, so no per-site membership test is needed.
        let traffic = kernels::traffic_scan(r_row, w_row, nearest, sp_row);
        self.write_volume(object) * broadcast + o * (traffic - replica_writes)
    }

    /// Per-object NTC `V_k` (Eq. 4 restricted to one object): the reads of
    /// non-replicators from their nearest replica, their writes shipped to
    /// the primary, and the update broadcast received by every replicator.
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of range or the scheme shape mismatches.
    pub fn object_cost(&self, scheme: &ReplicationScheme, object: ObjectId) -> u64 {
        let mut nearest = vec![u64::MAX; self.num_sites()];
        self.object_cost_from_replicas(
            object,
            scheme.replicator_indices(object.index()),
            &mut nearest,
        )
    }

    /// The total NTC `D` of Eq. 4 under `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the scheme shape mismatches the problem.
    pub fn total_cost(&self, scheme: &ReplicationScheme) -> u64 {
        let mut nearest = vec![u64::MAX; self.num_sites()];
        self.objects()
            .map(|k| {
                self.object_cost_from_replicas(
                    k,
                    scheme.replicator_indices(k.index()),
                    &mut nearest,
                )
            })
            .sum()
    }

    /// Percentage of NTC saved relative to the primary-only allocation —
    /// the solution-quality metric of the paper's evaluation. Negative when
    /// the scheme is *worse* than doing nothing.
    pub fn savings_percent(&self, scheme: &ReplicationScheme) -> f64 {
        let dp = self.d_prime();
        if dp == 0 {
            return 0.0;
        }
        let d = self.total_cost(scheme);
        100.0 * (dp as f64 - d as f64) / dp as f64
    }

    /// Exact change in `D` (new − old) from adding a replica of `object` at
    /// `site`, in O(M · |R_k|). Negative values mean the replica helps.
    ///
    /// Unlike the greedy "local" benefit of Eq. 5 this is the *global*
    /// delta: it includes the read-traffic reduction of every other site
    /// that would re-route to the new replica.
    ///
    /// # Panics
    ///
    /// Panics if `site` already replicates `object` or ids are out of range.
    pub fn delta_add_replica(
        &self,
        scheme: &ReplicationScheme,
        site: SiteId,
        object: ObjectId,
    ) -> i64 {
        let mut nearest = vec![u64::MAX; self.num_sites()];
        self.delta_add_replica_with(scheme, site, object, &mut nearest)
    }

    /// [`delta_add_replica`](Self::delta_add_replica) with a caller-owned
    /// scratch buffer (`nearest` is overwritten) — the zero-allocation
    /// variant for callers probing many candidate sites in a loop.
    ///
    /// # Panics
    ///
    /// Panics if `site` already replicates `object`, ids are out of range,
    /// or `nearest.len() != num_sites()`.
    pub fn delta_add_replica_with(
        &self,
        scheme: &ReplicationScheme,
        site: SiteId,
        object: ObjectId,
        nearest: &mut [u64],
    ) -> i64 {
        assert!(
            !scheme.holds(site, object),
            "delta_add_replica requires a non-replicator site"
        );
        let i = site.index();
        let o = self.object_size(object);
        let sp = self.primary(object).index();
        let c_isp = self.costs().cost(i, sp);
        let w_tot = self.total_writes(object);
        self.nearest_costs_into(scheme.replicator_indices(object.index()), nearest);
        let i_row = self.costs().row(i);
        let r_row = self.object_reads(object);
        let w_i = self.object_writes(object)[i];

        // Site i stops reading remotely and shipping writes, starts
        // receiving the update broadcast.
        let old_i = o * (r_row[i] * nearest[i] + w_i * c_isp);
        let new_i = w_tot * o * c_isp;
        let mut delta = new_i as i64 - old_i as i64;

        // Other non-replicators may re-route reads through the new replica.
        for j in 0..self.num_sites() {
            if j == i || scheme.holds(SiteId::new(j), object) {
                continue;
            }
            let c_ji = i_row[j];
            if c_ji < nearest[j] {
                delta -= (r_row[j] * o * (nearest[j] - c_ji)) as i64;
            }
        }
        delta
    }

    /// Exact change in `D` (new − old) from removing the replica of
    /// `object` at `site`, in O(M · |R_k|).
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a replicator, is the primary, or ids are out
    /// of range.
    pub fn delta_remove_replica(
        &self,
        scheme: &ReplicationScheme,
        site: SiteId,
        object: ObjectId,
    ) -> i64 {
        assert!(
            scheme.holds(site, object),
            "delta_remove_replica requires a replicator site"
        );
        assert!(
            self.primary(object) != site,
            "the primary copy cannot be removed"
        );
        let i = site.index();
        let k = object.index();
        let o = self.object_size(object);
        let sp = self.primary(object).index();
        let c_isp = self.costs().cost(i, sp);
        let w_tot = self.total_writes(object);

        // Nearest costs with and without site i's replica, built in a
        // single pass: every replicator except i feeds both arrays, i
        // itself only feeds `nearest_with`.
        let m = self.num_sites();
        let mut nearest_without = vec![u64::MAX; m];
        let mut nearest_with = vec![u64::MAX; m];
        for &j in scheme.replicator_indices(k) {
            let row = self.costs().row(j);
            kernels::min_scan(&mut nearest_with, row);
            if j != i {
                kernels::min_scan(&mut nearest_without, row);
            }
        }

        // Site i resumes remote reads and write shipping, stops receiving
        // the broadcast.
        let r_row = self.object_reads(object);
        let w_i = self.object_writes(object)[i];
        let old_i = w_tot * o * c_isp;
        let new_i = o * (r_row[i] * nearest_without[i] + w_i * c_isp);
        let mut delta = new_i as i64 - old_i as i64;

        // Other non-replicators whose nearest replica was site i re-route.
        for j in 0..m {
            if j == i || scheme.holds(SiteId::new(j), object) {
                continue;
            }
            if nearest_without[j] > nearest_with[j] {
                delta += (r_row[j] * o * (nearest_without[j] - nearest_with[j])) as i64;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    /// 3 sites on a line (C(0,1)=1, C(1,2)=1, C(0,2)=2), 2 objects.
    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 2])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn primary_only_cost_equals_d_prime() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        assert_eq!(p.total_cost(&s), p.d_prime());
        assert_eq!(p.savings_percent(&s), 0.0);
        for k in p.objects() {
            assert_eq!(p.object_cost(&s, k), p.v_prime(k));
        }
    }

    #[test]
    fn object_cost_matches_hand_computation_with_replica() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        // Object 0: o=10, SP=0, replicas {0, 2}, total writes = 3.
        // Broadcast: 3·10·C(0,0) + 3·10·C(2,0) = 0 + 60.
        // Site 1 (non-replicator): reads 4·10·min(C(1,0), C(1,2))=4·10·1=40,
        //                          writes 2·10·C(1,0)=20.
        assert_eq!(p.object_cost(&s, ObjectId::new(0)), 60 + 40 + 20);
        // Object 1 unchanged: V_prime = site0 3r·5·2=30, site1 0·...=0.
        assert_eq!(
            p.object_cost(&s, ObjectId::new(1)),
            p.v_prime(ObjectId::new(1))
        );
        assert_eq!(p.total_cost(&s), 120 + 30);
    }

    #[test]
    fn nearest_costs_reflect_replicas() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        let mut nearest = vec![u64::MAX; p.num_sites()];
        p.nearest_costs_into(s.replicator_indices(0), &mut nearest);
        assert_eq!(nearest, vec![0, 1, 2]);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        p.nearest_costs_into(s.replicator_indices(0), &mut nearest);
        assert_eq!(nearest, vec![0, 1, 0]);
    }

    #[test]
    fn delta_add_with_scratch_matches_allocating_variant() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        let mut nearest = vec![0u64; p.num_sites()];
        for k in p.objects() {
            for i in p.sites() {
                if s.holds(i, k) {
                    continue;
                }
                assert_eq!(
                    p.delta_add_replica_with(&s, i, k, &mut nearest),
                    p.delta_add_replica(&s, i, k),
                    "({i}, {k})"
                );
            }
        }
    }

    #[test]
    fn delta_add_matches_full_recomputation() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        for k in p.objects() {
            for i in p.sites() {
                if s.holds(i, k) {
                    continue;
                }
                let predicted = p.delta_add_replica(&s, i, k);
                let mut t = s.clone();
                t.add_replica(&p, i, k).unwrap();
                let actual = p.total_cost(&t) as i64 - p.total_cost(&s) as i64;
                assert_eq!(predicted, actual, "add ({i}, {k})");
            }
        }
    }

    #[test]
    fn delta_remove_matches_full_recomputation() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        s.add_replica(&p, SiteId::new(1), ObjectId::new(0)).unwrap();
        s.add_replica(&p, SiteId::new(0), ObjectId::new(1)).unwrap();
        for k in p.objects() {
            for i in p.sites() {
                if !s.holds(i, k) || p.primary(k) == i {
                    continue;
                }
                let predicted = p.delta_remove_replica(&s, i, k);
                let mut t = s.clone();
                t.remove_replica(&p, i, k).unwrap();
                let actual = p.total_cost(&t) as i64 - p.total_cost(&s) as i64;
                assert_eq!(predicted, actual, "remove ({i}, {k})");
            }
        }
    }

    #[test]
    fn savings_track_cost_reduction() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        let d = p.total_cost(&s);
        let expected = 100.0 * (p.d_prime() as f64 - d as f64) / p.d_prime() as f64;
        assert!((p.savings_percent(&s) - expected).abs() < 1e-12);
        assert!(p.savings_percent(&s) > 0.0);
    }

    #[test]
    fn full_replication_can_hurt_under_writes() {
        // One heavily-written object: replicating everywhere must raise D.
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![50, 50, 50])
            .object(10, SiteId::new(0))
            .reads(vec![0, 1, 0])
            .writes(vec![5, 5, 5])
            .build()
            .unwrap();
        let full = ReplicationScheme::from_fn(&p, |_, _| true).unwrap();
        assert!(p.total_cost(&full) > p.d_prime());
        assert!(p.savings_percent(&full) < 0.0);
    }
}
